"""Ablation — blocking key strength vs linkage recall (DESIGN.md Sec. 5).

Aggressive blocking (name prefix) slashes the candidate space but loses
true matches whose names were reordered or typo'd; token blocking keeps
recall at a larger candidate cost; adding year keys recovers more.  The
pair-completeness ceiling propagates directly into end-to-end recall.
"""

from __future__ import annotations

import pytest

from repro.datagen.sources import default_source_pair, true_match
from repro.evalx.tables import ResultTable
from repro.integrate.blocking import (
    BlockingStrategy,
    blocking_quality,
    candidate_pairs,
    name_prefix_key,
    name_token_keys,
    year_keys,
)
from repro.integrate.schema_alignment import canonicalize_record, oracle_alignment

STRATEGIES = {
    "prefix3": BlockingStrategy(key_functions=(name_prefix_key,)),
    "name_tokens": BlockingStrategy(key_functions=(name_token_keys,)),
    "tokens+years": BlockingStrategy(key_functions=(name_token_keys, year_keys)),
}


def _run(world):
    curated, second = default_source_pair(world, seed=11)
    left_records = curated.by_class("Movie")
    right_records = second.by_class("Movie")
    left_alignment = oracle_alignment(curated)
    right_alignment = oracle_alignment(second)
    left = [canonicalize_record(record, left_alignment) for record in left_records]
    right = [canonicalize_record(record, right_alignment) for record in right_records]
    true_pairs = {
        (i, j)
        for i, left_record in enumerate(left_records)
        for j, right_record in enumerate(right_records)
        if true_match(left_record, right_record)
    }
    table = ResultTable(
        title="Ablation - blocking strategy: completeness vs reduction",
        columns=["strategy", "n_candidates", "pair_completeness", "reduction_ratio"],
    )
    stats = {}
    for name, strategy in STRATEGIES.items():
        pairs = candidate_pairs(left, right, strategy)
        quality = blocking_quality(pairs, true_pairs, len(left), len(right))
        stats[name] = {"n": len(pairs), **quality}
        table.add_row(
            name, len(pairs), quality["pair_completeness"], quality["reduction_ratio"]
        )
    table.show()
    return stats


@pytest.mark.benchmark(group="ablation")
def test_ablation_blocking(benchmark, bench_world):
    stats = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)
    # Prefix blocking is the cheapest and the least complete.
    assert stats["prefix3"]["n"] <= stats["name_tokens"]["n"]
    assert stats["prefix3"]["pair_completeness"] <= stats["name_tokens"]["pair_completeness"]
    # Adding year keys can only help completeness.
    assert (
        stats["tokens+years"]["pair_completeness"]
        >= stats["name_tokens"]["pair_completeness"]
    )
    # Every strategy still prunes most of the quadratic space.
    assert all(s["reduction_ratio"] > 0.7 for s in stats.values())
