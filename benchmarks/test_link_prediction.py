"""T-LINKPRED — Link prediction for knowledge fusion (paper Sec. 2.4/5).

Paper claims: PRA (NELL) and embedding link prediction (KV) predict the
correctness of candidate triples; per Sec. 5, link prediction is good
enough "to detect incorrect information" but not to reliably *add*
inferred knowledge — i.e. useful AUC, imperfect top-1 precision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evalx.tables import ResultTable
from repro.fuse.linkpred import TransEModel
from repro.fuse.pra import PathRankingModel
from repro.ml.metrics import roc_auc

RELATION = "directed_by"


def _pairs(world, seed=5):
    positives = [
        (triple.subject, str(triple.object))
        for triple in world.truth.query(predicate=RELATION)
    ]
    rng = np.random.default_rng(seed)
    objects = sorted({obj for _s, obj in positives})
    existing = set(positives)
    negatives = []
    for subject, _obj in positives:
        for _ in range(2):
            candidate = objects[int(rng.integers(0, len(objects)))]
            if (subject, candidate) not in existing:
                negatives.append((subject, candidate))
    return positives, negatives


def _run(world):
    positives, negatives = _pairs(world)
    sample_pos, sample_neg = positives[:60], negatives[:60]
    labels = [1] * len(sample_pos) + [0] * len(sample_neg)

    pra = PathRankingModel(RELATION, max_path_length=3, seed=1).fit(world.truth)
    pra_scores = pra.score_pairs(sample_pos + sample_neg)
    pra_auc = roc_auc(labels, pra_scores)

    transe = TransEModel(dim=24, n_epochs=80, seed=2).fit(world.truth)
    transe_scores = [
        transe.score(subject, RELATION, obj) for subject, obj in sample_pos + sample_neg
    ]
    transe_auc = roc_auc(labels, transe_scores)

    # Top-1 "inference" precision: predict the best object per subject and
    # check it — the add-inferred-knowledge use the paper says is not ready.
    hits = 0
    trials = 0
    for subject, true_object in positives[:40]:
        ranked = transe.rank_objects(subject, RELATION, top_k=1)
        if not ranked:
            continue
        trials += 1
        if ranked[0][0] == true_object:
            hits += 1
    top1 = hits / trials if trials else 0.0

    table = ResultTable(
        title="Sec. 2.4 - link prediction as extraction-correctness signal",
        columns=["model", "auc_true_vs_corrupted", "top1_inference_precision"],
        note="paper: useful to detect errors, not reliable enough to add inferred facts",
    )
    table.add_row("PRA", pra_auc, float("nan"))
    table.add_row("TransE", transe_auc, top1)
    table.show()
    return pra_auc, transe_auc, top1


@pytest.mark.benchmark(group="linkpred")
def test_link_prediction(benchmark, bench_world):
    pra_auc, transe_auc, top1 = benchmark.pedantic(
        lambda: _run(bench_world), rounds=1, iterations=1
    )
    # Shape 1: both models meaningfully separate true from corrupted.
    assert pra_auc > 0.65
    assert transe_auc > 0.75
    # Shape 2: top-1 inference is far from the 90% production bar — the
    # Sec. 5 "not-yet successful" observation.
    assert top1 < 0.9
