"""T-AUTOKNOW — Self-driving knowledge collection at scale (paper Sec. 3.5).

Paper claim: "Amazon AutoKnow system automatically collected 1B knowledge
triples over 11K distinct product types, and considerably extended the
ontology and improved Catalog quality."  Shape reproduced: the pipeline
multiplies the catalog's knowledge, covers (nearly) every type with zero
per-type manual work, extends the taxonomy from behavior, and what it adds
is production quality.
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.products.autoknow import AutoKnow


def _run(domain, behavior):
    autoknow = AutoKnow(n_epochs=5, seed=7)
    report = autoknow.run(domain, behavior=behavior)
    # The Octet from-scratch setting: no curated taxonomy; behavior mining
    # must discover the type hierarchy.
    bootstrap = AutoKnow(n_epochs=3, seed=7, curated_taxonomy=False)
    bootstrap_report = bootstrap.run(domain, behavior=behavior)

    table = ResultTable(
        title="Sec. 3.5 - AutoKnow-style collection outcome",
        columns=["metric", "value"],
        note="paper: 1B triples over 11K types; ontology extended; catalog improved",
    )
    table.add_row("catalog_triples", report.n_catalog_triples)
    table.add_row("extracted_triples", report.n_extracted_triples)
    table.add_row("dropped_by_cleaning", report.n_cleaned_triples)
    table.add_row("final_triples", report.n_final_triples)
    table.add_row("growth_factor", report.growth_factor)
    table.add_row("types_covered", report.n_types_covered)
    table.add_row("taxonomy_edges_added(curated)", report.n_taxonomy_edges_added)
    table.add_row(
        "taxonomy_edges_discovered(bootstrap)", bootstrap_report.n_taxonomy_edges_added
    )
    table.add_row("catalog_accuracy", report.catalog_accuracy)
    table.add_row("raw_extraction_accuracy", report.extraction_accuracy)
    table.add_row("added_knowledge_accuracy", report.final_accuracy)
    table.show()
    return autoknow, report, bootstrap_report


@pytest.mark.benchmark(group="autoknow")
def test_autoknow_scale(benchmark, bench_product_domain, bench_behavior):
    autoknow, report, bootstrap_report = benchmark.pedantic(
        lambda: _run(bench_product_domain, bench_behavior), rounds=1, iterations=1
    )
    # Shape 1: knowledge multiplies over the catalog baseline.
    assert report.growth_factor > 1.2
    # Shape 2: coverage spans (nearly) all types with one model.
    assert report.n_types_covered >= len(bench_product_domain.types()) - 2
    # Shape 3: cleaning keeps added knowledge at production quality.
    assert report.final_accuracy > 0.85
    # Shape 4: in the from-scratch regime, behavior mining builds real
    # taxonomy structure ("considerably extended the ontology").
    assert bootstrap_report.n_taxonomy_edges_added > 3
    # Shape 5: the output KG is well-formed and queryable.
    stats = autoknow.kg_.stats()
    assert stats["n_topics"] == len(bench_product_domain.products)
    assert stats["n_value_triples"] == report.n_final_triples
