"""T-SERVE: per-route serving latency over a published KG snapshot.

The serving claim (Sec. 1: KGs "serve heavy traffic from millions of
users"; Sec. 5's readiness test) comes down to the request path being a
handful of index lookups: these benchmarks time each of the four routes
through the full serving spine — admission, read-through cache,
scatter/gather planner over sharded replicas — plus the cache-hit path
and the atomic snapshot publish itself.
"""

from __future__ import annotations

import pytest

from repro.serve.admission import AdmissionController
from repro.serve.server import InProcessClient
from repro.serve.service import build_fixture_service


@pytest.fixture(scope="module")
def serve_client():
    """A 2-shard WORLD service with a bucket too big to ever shed."""
    admission = AdmissionController(rate=1_000_000.0, max_concurrent=64)
    service = build_fixture_service(
        "WORLD", n_shards=2, scale="quick", admission=admission
    )
    return InProcessClient(service)


@pytest.fixture(scope="module")
def vocab(serve_client):
    _code, stats = serve_client.stats()
    sample = [e for e in stats["entity_sample"] if e["predicates"]]
    assert sample, "fixture sample must contain entities with predicates"
    return sample


@pytest.mark.benchmark(group="serve-latency")
def test_serve_lookup_latency(benchmark, serve_client, vocab):
    entity = vocab[0]
    code, body = benchmark(
        lambda: serve_client.lookup(entity["entity_id"], entity["predicates"][0])
    )
    assert code == 200 and body["status"] == "ok"


@pytest.mark.benchmark(group="serve-latency")
def test_serve_query_latency(benchmark, serve_client, vocab):
    predicate = vocab[0]["predicates"][0]
    code, body = benchmark(lambda: serve_client.query([["?s", predicate, "?o"]]))
    assert code == 200 and body["payload"]["n_bindings"] >= 1


@pytest.mark.benchmark(group="serve-latency")
def test_serve_paths_latency(benchmark, serve_client, vocab):
    start, goal = vocab[0]["entity_id"], vocab[1]["entity_id"]
    code, body = benchmark(lambda: serve_client.paths(start, goal, max_length=3))
    assert code == 200 and body["payload"]["resolved"]


@pytest.mark.benchmark(group="serve-latency")
def test_serve_ask_latency(benchmark, serve_client, vocab):
    entity = vocab[0]
    code, body = benchmark(
        lambda: serve_client.ask(entity["name"], entity["predicates"][0])
    )
    assert code == 200 and body["payload"]["answer"]


@pytest.mark.benchmark(group="serve-latency")
def test_serve_cached_lookup_latency(benchmark, serve_client, vocab):
    """The read-through hit path: same request, warmed cache."""
    entity = vocab[2]
    serve_client.lookup(entity["entity_id"], entity["predicates"][0])  # warm
    code, body = benchmark(
        lambda: serve_client.lookup(entity["entity_id"], entity["predicates"][0])
    )
    assert code == 200 and body["cached"]


@pytest.mark.benchmark(group="serve-latency")
def test_serve_publish_swap(benchmark, serve_client):
    """Atomic snapshot publish (copy + shard + swap) on the live service."""
    service = serve_client.service
    snapshot = service.store.current()
    graph = snapshot.graph

    published = benchmark(lambda: service.publish(graph))
    assert published.version > snapshot.version
    assert service.store.current_version() == published.version
