"""FIG5 — Manual vs automated extraction pipelines (paper Figure 5).

Paper claim: the Fig. 5(a) production pipeline reaches high quality through
manual labeling, manual tuning, and hand-written post-processing; the
Fig. 5(b) automated pipeline (distant supervision + AutoML + ML cleaning)
keeps comparable quality while cutting the manual effort dramatically
("from a couple of months to a couple of weeks").
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.products.pipelines import AutomatedPipeline, ProductionPipeline

TASKS = (
    ("Coffee", ("flavor", "roast", "caffeine", "size")),
    ("Shampoo", ("scent", "hair_type", "size")),
    ("Snacks", ("flavor", "dietary", "size")),
)


def _run(domain):
    table = ResultTable(
        title="Figure 5 - production (5a) vs automated (5b) pipelines",
        columns=["type", "pipeline", "f1", "precision", "recall", "manual_hours", "published"],
        note="paper: comparable quality, manual time cut from months to weeks",
    )
    results = []
    for product_type, attributes in TASKS:
        production = ProductionPipeline(attributes=attributes, seed=2).run(
            domain, product_type
        )
        automated = AutomatedPipeline(attributes=attributes, seed=2).run(
            domain, product_type
        )
        results.append((production, automated))
        for result in (production, automated):
            table.add_row(
                product_type,
                result.pipeline,
                result.f1,
                result.precision,
                result.recall,
                round(result.manual_hours, 2),
                result.published,
            )
    table.show()
    return results


@pytest.mark.benchmark(group="fig5")
def test_fig5_pipeline_cost(benchmark, bench_product_domain):
    results = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    for production, automated in results:
        # Shape 1: the production pipeline reaches the quality bar.
        assert production.f1 > 0.85
        # Shape 2: automation keeps quality within striking distance.
        assert automated.f1 > production.f1 - 0.2
        # Shape 3: manual hours drop by a large factor (months -> weeks).
        assert automated.manual_hours * 4 < production.manual_hours
