"""FIG4 — The two construction architectures run end-to-end (paper Fig. 4).

Fig. 4 is an architecture diagram, not a measurement; the reproducible
artifact is that both architectures *execute* as composable pipelines and
that each stage contributes knowledge: transformation seeds the KG,
integration links and enriches, fusion curates, extraction adds long-tail
triples (4a); AutoKnow multiplies catalog knowledge (4b).
"""

from __future__ import annotations

import pytest

from repro.evalx.architectures import (
    build_entity_based_kg,
    build_text_rich_kg,
    evaluate_entity_kg_accuracy,
)
from repro.evalx.tables import ResultTable


def _run(world, domain, behavior):
    entity_context = build_entity_based_kg(
        world, label_budget=400, n_sites=3, pages_per_site=25, seed=1
    )
    text_context = build_text_rich_kg(domain, behavior=behavior, n_epochs=4, seed=1)

    table = ResultTable(
        title="Figure 4(a) - entity-based construction, stage by stage",
        columns=["stage", "metric", "value"],
    )
    pipeline = entity_context.artifacts["pipeline"]
    for report in pipeline.reports:
        for metric, value in sorted(report.metrics.items()):
            table.add_row(report.stage_name, metric, value)
    for metric in (
        "transform.triples",
        "integrate.triples_added",
        "fuse.conflicts_resolved",
        "extract.triples_added",
    ):
        if metric in entity_context.metrics:
            table.add_row("(context)", metric, entity_context.metrics[metric])
    table.add_row("(final)", "kg_accuracy", evaluate_entity_kg_accuracy(entity_context))
    table.show()

    report = text_context.artifacts["report"]
    table_b = ResultTable(
        title="Figure 4(b) - text-rich construction (AutoKnow-style)",
        columns=["metric", "value"],
    )
    table_b.add_row("catalog_triples", report.n_catalog_triples)
    table_b.add_row("final_triples", report.n_final_triples)
    table_b.add_row("growth_factor", report.growth_factor)
    table_b.add_row("types_covered", report.n_types_covered)
    table_b.add_row("taxonomy_edges_added", report.n_taxonomy_edges_added)
    table_b.add_row("final_accuracy", report.final_accuracy)
    table_b.show()
    return entity_context, text_context


@pytest.mark.benchmark(group="fig4")
def test_fig4_architectures(benchmark, bench_world, bench_product_domain, bench_behavior):
    entity_context, text_context = benchmark.pedantic(
        lambda: _run(bench_world, bench_product_domain, bench_behavior),
        rounds=1,
        iterations=1,
    )

    # Shape (4a): every stage contributes; final accuracy stays high.
    assert entity_context.metrics["transform.triples"] > 0
    assert entity_context.metrics["integrate.triples_added"] > 0
    assert entity_context.metrics["extract.triples_added"] > 0
    assert evaluate_entity_kg_accuracy(entity_context) > 0.85

    # Shape (4b): catalog knowledge grows and stays production quality.
    report = text_context.artifacts["report"]
    assert report.growth_factor > 1.1
    assert report.final_accuracy > 0.8
