"""Ablation — active-learning selection strategy (DESIGN.md Sec. 5).

Compares uncertainty, margin, and random selection on the Fig. 2 linkage
task at small budgets: the informative-selection strategies should reach
the quality target with fewer labels than random.
"""

from __future__ import annotations

import pytest

from repro.datagen.sources import default_source_pair
from repro.evalx.tables import ResultTable
from repro.integrate.active_linkage import label_budget_curve, labels_to_reach
from repro.integrate.linkage import EntityLinker, build_linkage_task
from repro.integrate.schema_alignment import oracle_alignment
from repro.ml.active import margin_sampling, random_sampling, uncertainty_sampling

BUDGETS = (25, 50, 100, 200)
STRATEGIES = {
    "uncertainty": uncertainty_sampling,
    "margin": margin_sampling,
    "random": random_sampling,
}


def _run(world):
    curated, second = default_source_pair(world, seed=11)
    task = build_linkage_task(
        curated, second, "Movie", oracle_alignment(curated), oracle_alignment(second)
    )
    table = ResultTable(
        title="Ablation - active-learning strategy on the Fig. 2 task (mean of 3 seeds)",
        columns=["strategy", "budget", "mean_f1"],
    )
    curves = {}
    for name, strategy in STRATEGIES.items():
        per_budget = {budget: [] for budget in BUDGETS}
        final_points = None
        for seed in (5, 6, 7):
            points = label_budget_curve(
                task,
                BUDGETS,
                strategy=strategy,
                linker_factory=lambda: EntityLinker(n_estimators=15, seed=5),
                seed=seed,
            )
            final_points = points
            for point in points:
                per_budget[point.budget].append(point.f1)
        curves[name] = {
            budget: sum(values) / len(values) for budget, values in per_budget.items()
        }
        curves[f"{name}_last"] = final_points
        for budget in BUDGETS:
            table.add_row(name, budget, curves[name][budget])
    table.show()
    return curves


@pytest.mark.benchmark(group="ablation")
def test_ablation_active_strategies(benchmark, bench_world):
    curves = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)
    small_budgets = [budget for budget in BUDGETS if budget <= 100]
    mean_small = {
        name: sum(curves[name][budget] for budget in small_budgets) / len(small_budgets)
        for name in STRATEGIES
    }
    # Informative strategies dominate random in the scarce-label regime.
    assert mean_small["uncertainty"] > mean_small["random"]
    assert mean_small["margin"] > mean_small["random"]
    # At the largest budget the informed strategies are near-perfect, while
    # random still wastes labels on easy negatives (the matches are rare).
    assert curves["uncertainty"][BUDGETS[-1]] > 0.9
    assert curves["margin"][BUDGETS[-1]] > 0.9
    assert curves["random"][BUDGETS[-1]] > 0.6
