"""T-ADATAG — One attribute-conditioned model for many attributes
(paper Sec. 3.3).

Paper claim: AdaTag "can train one model for 32 major attributes whereas
still improving quality over training one model per attribute", because
similar attributes (flavor/scent) share vocabulary through the shared
parameters.  The effect shows when per-attribute training data is scarce.
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.products.adatag import AdaTagModel
from repro.products.opentag import OpenTagModel, train_test_split

ATTRIBUTES = ("flavor", "scent", "roast", "color", "dietary", "caffeine")
TRAIN_BUDGET = 60  # scarce-data regime


def _run(domain):
    train, test = train_test_split(domain.products, test_fraction=0.35, seed=5)
    train = train[:TRAIN_BUDGET]

    adatag = AdaTagModel(attributes=ATTRIBUTES, n_epochs=7, seed=3).fit(train)
    adatag_f1 = adatag.micro_f1(test)

    per_attribute_f1 = {}
    for attribute in ATTRIBUTES:
        single = OpenTagModel(attributes=(attribute,), n_epochs=7, seed=3).fit(train)
        per_attribute_f1[attribute] = single.micro_f1(test)
    baseline_f1 = sum(per_attribute_f1.values()) / len(per_attribute_f1)

    table = ResultTable(
        title="Sec. 3.3 - AdaTag (1 model, attribute-conditioned) vs 1-model-per-attribute",
        columns=["regime", "n_models", "micro_f1"],
        note=f"train budget {TRAIN_BUDGET} products; paper: one model for 32 attrs wins",
    )
    table.add_row("per_attribute_models", len(ATTRIBUTES), baseline_f1)
    table.add_row("adatag_single_model", 1, adatag_f1)
    detail = ResultTable(
        title="per-attribute baseline detail",
        columns=["attribute", "f1"],
    )
    for attribute, f1 in sorted(per_attribute_f1.items()):
        detail.add_row(attribute, f1)
    table.show()
    detail.show()
    return adatag_f1, baseline_f1


@pytest.mark.benchmark(group="adatag")
def test_adatag_multiattribute(benchmark, bench_product_domain):
    adatag_f1, baseline_f1 = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    # Shape: one conditioned model matches or beats N separate models under
    # a scarce label budget.
    assert adatag_f1 >= baseline_f1 - 0.01
    assert adatag_f1 > 0.5
