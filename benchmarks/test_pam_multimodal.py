"""T-PAM — Multi-modal product extraction (paper Sec. 3.4).

Paper claim: PAM "can improve over text extraction by 11% on F-measure",
because images "supplement information not existing in product profiles",
and its type-adapted generative decoder extracts "values not observed in
training data" (here: values with no text mention at all).
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.products.opentag import train_test_split
from repro.products.pam import PAMExtractor


def _run(domain):
    attributes = tuple(domain.attributes())
    train, test = train_test_split(domain.products, test_fraction=0.3, seed=6)
    model = PAMExtractor(attributes=attributes, n_epochs=6, seed=3).fit(train)

    text_f1 = model.micro_f1(test, multimodal=False)
    multimodal_f1 = model.micro_f1(test, multimodal=True)
    unseen_recall = model.unseen_value_recall(test)
    relative_gain = (multimodal_f1 - text_f1) / text_f1 if text_f1 else 0.0

    table = ResultTable(
        title="Sec. 3.4 - PAM multi-modal vs text-only extraction",
        columns=["regime", "micro_f1", "unseen_value_recall"],
        note="paper: +11% F over text-only; generative decoding recovers unseen values",
    )
    table.add_row("text_only", text_f1, 0.0)
    table.add_row("multimodal", multimodal_f1, unseen_recall)
    print(f"relative F gain: {relative_gain:+.1%}")
    table.show()
    return text_f1, multimodal_f1, unseen_recall, relative_gain


@pytest.mark.benchmark(group="pam")
def test_pam_multimodal(benchmark, bench_product_domain):
    text_f1, multimodal_f1, unseen_recall, relative_gain = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    # Shape 1: the image channel strictly improves over text-only.
    assert multimodal_f1 > text_f1
    # Shape 2: the gain is material (paper: ~11% relative).
    assert relative_gain > 0.03
    # Shape 3: values never mentioned in text are recovered.
    assert unseen_recall > 0.15
