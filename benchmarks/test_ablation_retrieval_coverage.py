"""Ablation — KG coverage in retrieval-augmented QA (DESIGN.md Sec. 5).

The knowledge-enhanced LM of Sec. 4 is only as good as the triples it can
retrieve.  The sweep serves QA from KGs of decreasing coverage (full ->
head-only) with LM fallback: accuracy must degrade gracefully toward the
pure-LM floor, quantifying how much of the dual system's value comes from
torso/tail triples — the knowledge the paper says "may best reside as
triples".
"""

from __future__ import annotations

import pytest

from repro.core.graph import KnowledgeGraph
from repro.datagen.text import generate_text_corpus
from repro.evalx.tables import ResultTable
from repro.neural.evaluate import evaluate_qa
from repro.neural.qa import LMQA, RetrievalAugmentedQA, build_question_set
from repro.neural.slm import SimulatedLM


def _partial_kg(world, bands) -> KnowledgeGraph:
    """A KG restricted to entities of the given popularity bands."""
    graph = KnowledgeGraph(ontology=world.truth.ontology, name=f"kg_{'_'.join(bands)}")
    keep = set()
    for band in bands:
        keep.update(world.popularity.items_in_band(band))
    for entity in world.truth.entities():
        if entity.entity_id in keep:
            graph.add_entity(
                entity.entity_id, entity.name, entity.entity_class, aliases=entity.aliases
            )
    for triple in world.truth.triples():
        if triple.subject in keep:
            if isinstance(triple.object, str) and world.truth.has_entity(triple.object):
                if triple.object not in keep:
                    continue
            graph.add_triple(triple)
    return graph


def _run(world):
    corpus = generate_text_corpus(
        world, n_sentences=8000, noise_rate=0.15, popularity_weighted=True, seed=25
    )
    model = SimulatedLM(seed=26).fit(corpus)
    questions = build_question_set(world, per_band=50, seed=27)

    regimes = {
        "kg_full": ("head", "torso", "tail"),
        "kg_head_torso": ("head", "torso"),
        "kg_head_only": ("head",),
    }
    table = ResultTable(
        title="Ablation - retrieval coverage in knowledge-enhanced QA",
        columns=["regime", "accuracy", "miss_rate"],
    )
    results = {}
    for regime, bands in regimes.items():
        graph = _partial_kg(world, bands)
        report = evaluate_qa(RetrievalAugmentedQA(graph, model), questions)
        results[regime] = report
        table.add_row(regime, report.accuracy, report.miss_rate)
    lm_report = evaluate_qa(LMQA(model), questions)
    results["lm_only"] = lm_report
    table.add_row("lm_only(floor)", lm_report.accuracy, lm_report.miss_rate)
    table.show()
    return results


@pytest.mark.benchmark(group="ablation")
def test_ablation_retrieval_coverage(benchmark, bench_world):
    results = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)
    # Accuracy decays monotonically with coverage...
    assert (
        results["kg_full"].accuracy
        >= results["kg_head_torso"].accuracy
        >= results["kg_head_only"].accuracy
    )
    # ...but never below the pure-LM floor (retrieval only adds).
    assert results["kg_head_only"].accuracy >= results["lm_only"].accuracy - 0.02
    # Torso+tail triples carry substantial value over head-only retrieval.
    assert results["kg_full"].accuracy > results["kg_head_only"].accuracy + 0.15
