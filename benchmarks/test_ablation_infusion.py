"""Ablation — knowledge-infusion dose vs head accuracy (DESIGN.md Sec. 5).

"How to infuse head knowledge into LLMs ... through model training, or
through model fine tuning" (Sec. 4).  For the simulated LM, infusion
strength is the number of repeated fact mentions; the dose-response curve
shows head accuracy rising with repetitions while hallucination falls —
and the marginal gain flattening, the usual fine-tuning saturation.
"""

from __future__ import annotations

import pytest

from repro.datagen.text import generate_text_corpus
from repro.evalx.tables import ResultTable
from repro.neural.evaluate import evaluate_qa
from repro.neural.infusion import infuse_head_knowledge
from repro.neural.qa import LMQA, build_question_set
from repro.neural.slm import SimulatedLM

REPETITIONS = (0, 2, 6, 14)


def _run(world):
    questions = [
        question
        for question in build_question_set(world, per_band=70, seed=41)
        if question.band == "head"
    ]
    table = ResultTable(
        title="Ablation - infusion repetitions vs head accuracy",
        columns=["repetitions", "head_accuracy", "head_hallucination"],
    )
    series = []
    for repetitions in REPETITIONS:
        corpus = generate_text_corpus(
            world, n_sentences=6000, noise_rate=0.15, popularity_weighted=True, seed=42
        )
        model = SimulatedLM(seed=43).fit(corpus)
        if repetitions:
            infuse_head_knowledge(model, world, repetitions=repetitions, seed=44)
        report = evaluate_qa(LMQA(model), questions)
        series.append((repetitions, report.accuracy, report.hallucination_rate))
        table.add_row(repetitions, report.accuracy, report.hallucination_rate)
    table.show()
    return series


@pytest.mark.benchmark(group="ablation")
def test_ablation_infusion(benchmark, bench_world):
    series = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)
    accuracies = [accuracy for _r, accuracy, _h in series]
    # Dose-response: more repetitions, better head accuracy.
    assert accuracies[-1] > accuracies[0] + 0.15
    assert accuracies[2] >= accuracies[1] - 0.05  # no regression mid-curve
    # Saturation: the last doubling buys less than the first one.
    first_gain = accuracies[1] - accuracies[0]
    last_gain = accuracies[-1] - accuracies[-2]
    assert last_gain <= first_gain + 0.05