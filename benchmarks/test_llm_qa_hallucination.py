"""T-LLMQA — LLM factual QA behavior by popularity band (paper Sec. 4).

Paper claims (from the cited study [42], reproduced in shape against the
simulated LM):

* for DBpedia-answerable questions, ChatGPT hallucinates ~20% and cannot
  answer ~50%;
* accuracy drops from ~50% on head entities to ~15% on tail entities
  (bottom 33% popularity);
* "surprisingly", hallucination stays high (~21%) even for head entities.
"""

from __future__ import annotations

import pytest

from repro.datagen.text import generate_text_corpus
from repro.evalx.tables import ResultTable
from repro.neural.evaluate import evaluate_by_band
from repro.neural.qa import LMQA, build_question_set
from repro.neural.slm import SimulatedLM


def _run(world):
    corpus = generate_text_corpus(
        world, n_sentences=12000, noise_rate=0.15, popularity_weighted=True, seed=5
    )
    model = SimulatedLM(seed=9).fit(corpus)
    questions = build_question_set(world, per_band=80, seed=2)
    reports = evaluate_by_band(LMQA(model), questions)

    table = ResultTable(
        title="Sec. 4 - simulated-LM QA by popularity band",
        columns=["band", "n", "accuracy", "hallucination_rate", "miss_rate"],
        note="paper: ~20% hallucination, ~50% missing; head ~50% acc vs tail ~15%; head halluc ~21%",
    )
    for band in ("head", "torso", "tail", "all"):
        report = reports[band]
        table.add_row(
            band, report.n_questions, report.accuracy, report.hallucination_rate, report.miss_rate
        )
    table.show()
    return reports


@pytest.mark.benchmark(group="llmqa")
def test_llm_qa_hallucination(benchmark, bench_world):
    reports = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)

    # Shape 1: accuracy decays monotonically head -> torso -> tail, with a
    # large head/tail gap (paper: ~50% vs ~15%).
    assert reports["head"].accuracy > reports["torso"].accuracy >= reports["tail"].accuracy - 0.02
    assert reports["head"].accuracy > 0.4
    assert reports["tail"].accuracy < 0.3

    # Shape 2: a large fraction of questions go unanswered (paper ~50%).
    assert 0.25 < reports["all"].miss_rate < 0.65

    # Shape 3: hallucination is material overall (paper ~20%)...
    assert 0.1 < reports["all"].hallucination_rate < 0.35
    # ...and does NOT vanish for head entities (paper's 21% surprise).
    assert reports["head"].hallucination_rate > 0.08
