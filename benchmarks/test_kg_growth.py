"""T-GROWTH — KG growth across construction stages (paper Sec. 2.5).

Paper claim: major KGs "have grown over an order of magnitude over time"
by layering techniques: transformation seeds the KG from one curated
source; integration repeats the success across sources (torso entities);
web extraction "supplement[s] long-tail knowledge".  The bench tracks
cumulative triples and — the paper's sharper point — *tail-entity
coverage* after each stage.
"""

from __future__ import annotations

import pytest

from repro.evalx.architectures import build_entity_based_kg
from repro.evalx.tables import ResultTable


def _tail_coverage(context):
    """Fraction of tail-band world entities with >=1 triple in the KG."""
    world = context.require("world")
    world_of = context.require("world_of")
    graph = context.require("kg")
    covered_world_ids = set()
    for entity_id, world_id in world_of.items():
        if graph.has_entity(entity_id) and graph.query(subject=entity_id):
            covered_world_ids.add(world_id)
    tail = world.popularity.items_in_band("tail")
    if not tail:
        return 0.0
    return sum(1 for world_id in tail if world_id in covered_world_ids) / len(tail)


def _run(world):
    context = build_entity_based_kg(
        world, label_budget=400, n_sites=4, pages_per_site=30, seed=2
    )
    metrics = context.metrics
    transform_triples = metrics["transform.triples"]
    after_integration = transform_triples + metrics["integrate.triples_added"]
    after_fusion = metrics["fuse.triples"]
    final = metrics["extract.final_triples"]

    table = ResultTable(
        title="Sec. 2.5 - KG growth across construction stages",
        columns=["stage", "cumulative_triples", "delta"],
        note="paper: transformation -> integration -> extraction; tail knowledge arrives last",
    )
    table.add_row("transform (curated source)", transform_triples, transform_triples)
    table.add_row(
        "integrate (second source)", after_integration, metrics["integrate.triples_added"]
    )
    table.add_row("fuse (conflict resolution)", after_fusion, after_fusion - after_integration)
    coverage = _tail_coverage(context)
    table.add_row("extract (semi-structured web)", final, metrics["extract.triples_added"])
    table.add_row("(tail-entity coverage)", coverage, 0)
    table.show()
    return metrics, coverage


@pytest.mark.benchmark(group="growth")
def test_kg_growth(benchmark, bench_world):
    metrics, tail_coverage = benchmark.pedantic(
        lambda: _run(bench_world), rounds=1, iterations=1
    )
    # Shape 1: integration adds materially over transformation.
    assert metrics["integrate.triples_added"] > 0.2 * metrics["transform.triples"]
    # Shape 2: web extraction keeps adding beyond structured sources.
    assert metrics["extract.triples_added"] > 0
    # Shape 3: the KG ends much larger than the single-source seed.
    assert metrics["extract.final_triples"] > 1.2 * metrics["transform.triples"]
    # Shape 4: tail entities are represented (long-tail coverage).
    assert tail_coverage > 0.5
