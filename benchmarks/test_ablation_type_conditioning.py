"""Ablation — what exactly makes TXtract win (DESIGN.md Sec. 5).

Decomposes the TXtract gain: no type context (pooled OpenTag), gold type
context, and predicted type context (the multi-task head standing in when
the catalog type is missing).  The conditioning signal, not the model
capacity, should carry the improvement.
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.products.opentag import OpenTagModel, train_test_split
from repro.products.txtract import TXtractModel


def _run(domain):
    attributes = tuple(domain.attributes())
    train, test = train_test_split(domain.products, test_fraction=0.3, seed=7)

    pooled = OpenTagModel(attributes=attributes, n_epochs=5, seed=4).fit(train)
    gold_type = TXtractModel(attributes=attributes, n_epochs=5, seed=4).fit(train)
    predicted_type = TXtractModel(
        attributes=attributes, n_epochs=5, seed=4, use_predicted_type=True
    ).fit(train)

    rows = {
        "no_type_context": pooled.micro_f1(test),
        "gold_type_context": gold_type.micro_f1(test),
        "predicted_type_context": predicted_type.micro_f1(test),
    }
    table = ResultTable(
        title="Ablation - type conditioning in TXtract",
        columns=["variant", "micro_f1"],
    )
    for variant, f1 in rows.items():
        table.add_row(variant, f1)
    table.show()
    return rows


@pytest.mark.benchmark(group="ablation")
def test_ablation_type_conditioning(benchmark, bench_product_domain):
    rows = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    # Gold type context beats no context (the headline TXtract effect).
    assert rows["gold_type_context"] > rows["no_type_context"]
    # The multi-task predicted type retains most of the gain.
    gain = rows["gold_type_context"] - rows["no_type_context"]
    retained = rows["predicted_type_context"] - rows["no_type_context"]
    assert retained > 0.3 * gain
