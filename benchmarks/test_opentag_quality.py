"""T-OPENTAG — Raw NER quality vs pipelined quality (paper Sec. 3.1/3.2).

Paper claims: NER-based extraction lands at 85-95% ("still mediocre");
pre/post-processing (here: normalization + consistency cleaning) lifts it
to production quality, "often with accuracy above 95%".
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.ml.metrics import BinaryConfusion
from repro.products.cleaning import KnowledgeCleaner
from repro.products.opentag import OpenTagModel, mentioned_attributes, train_test_split

TASKS = (
    ("Coffee", ("flavor", "roast", "caffeine", "size")),
    ("Ice Cream", ("flavor", "dietary", "size")),
    ("Headphones", ("color", "connectivity", "battery")),
)


def _score(model, cleaner, test, product_type, use_cleaning):
    confusion = BinaryConfusion()
    for product in test:
        predicted = model.extract(product)
        if use_cleaning:
            predicted = cleaner.clean(predicted, product_type)
        mentioned = mentioned_attributes(product)
        for attribute in model.attributes:
            truth = product.true_values.get(attribute)
            has_truth = attribute in mentioned and truth is not None
            prediction = predicted.get(attribute)
            if prediction is not None and has_truth and prediction.lower() == truth.lower():
                confusion += BinaryConfusion(true_positive=1)
            elif prediction is not None:
                confusion += BinaryConfusion(false_positive=1)
            elif has_truth:
                confusion += BinaryConfusion(false_negative=1)
    return confusion


def _run(domain):
    table = ResultTable(
        title="Sec. 3.1/3.2 - OpenTag raw vs pipelined quality",
        columns=["type", "regime", "precision", "recall", "f1"],
        note="paper: raw NER 85-95%; with pipeline post-processing >95%",
    )
    cleaner = KnowledgeCleaner.from_rules(domain)
    results = []
    for product_type, attributes in TASKS:
        products = domain.by_type(product_type)
        train, test = train_test_split(products, test_fraction=0.3, seed=3)
        model = OpenTagModel(attributes=attributes, n_epochs=8, seed=3).fit(
            train, supervision="gold"
        )
        raw = _score(model, cleaner, test, product_type, use_cleaning=False)
        piped = _score(model, cleaner, test, product_type, use_cleaning=True)
        results.append((product_type, raw, piped))
        table.add_row(product_type, "raw NER", raw.precision, raw.recall, raw.f1)
        table.add_row(product_type, "with pipeline", piped.precision, piped.recall, piped.f1)
    table.show()
    return results


@pytest.mark.benchmark(group="opentag")
def test_opentag_quality(benchmark, bench_product_domain):
    results = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    raw_f1s = [raw.f1 for _t, raw, _p in results]
    piped_f1s = [piped.f1 for _t, _raw, piped in results]
    # Shape 1: raw NER is useful everywhere, and at least one ambiguous
    # type sits in the paper's "still mediocre" sub-95% band.
    assert all(f1 > 0.75 for f1 in raw_f1s)
    assert min(raw_f1s) < 0.95
    # Shape 2: the pipeline lifts quality on average and never hurts much.
    assert sum(piped_f1s) / len(piped_f1s) >= sum(raw_f1s) / len(raw_f1s)
    assert all(piped >= raw - 0.05 for raw, piped in zip(raw_f1s, piped_f1s))
    # Shape 3: pipelined extraction reaches the production band.
    assert max(piped_f1s) > 0.9
