"""T-OBS: the observability layer's cost and its signals under serving load.

The tentpole claim: request-scoped tracing, rolling SLO windows, and the
access-log/metrics surfaces together cost <5% p95 latency on the serving
path (head sampling keeps the per-request work to a flag check plus a
handful of counter bumps).  Measuring that honestly needs two *fresh*
services — cold caches on both sides — driven by identical
single-worker closed loops in paired rounds (multi-worker loops measure
GIL contention and thread-wake jitter, not the per-request cost), which
is what :func:`repro.evalx.loadgen.measure_obs_overhead` does.

The hard <5% gate lives in the loadgen CLI (``repro loadgen
--obs-compare``) where run durations are long enough to be stable; this
benchmark keeps a loose bound so the suite never flakes on a noisy
machine, while still failing on order-of-magnitude regressions (e.g.
accidentally tracing every request).
"""

from __future__ import annotations

from repro.evalx.loadgen import measure_obs_overhead
from repro.obs import profiling
from repro.serve.admission import AdmissionController
from repro.serve.service import build_fixture_service


def _fresh_service():
    admission = AdmissionController(rate=1_000_000.0, max_concurrent=64)
    return build_fixture_service(
        "WORLD", n_shards=2, scale="quick", admission=admission
    )


def test_obs_overhead_stays_bounded():
    comparison = measure_obs_overhead(
        _fresh_service, duration_s=1.5, max_p95_overhead=0.05
    )
    off, on = comparison["off"], comparison["on"]
    assert off.n_requests > 0 and on.n_requests > 0
    assert off.n_server_errors == 0 and on.n_server_errors == 0
    assert off.obs == "off" and on.obs == "on"
    # Loose bound (the CLI gate enforces 5% over longer runs): obs-on must
    # not multiply latency, which is what an unsampled full-trace bug does.
    assert comparison["p95_overhead"] < 0.50, (
        f"observability overhead {comparison['p95_overhead']:.1%} p95 "
        f"({comparison['p95_off_ms']}ms -> {comparison['p95_on_ms']}ms)"
    )


def test_obs_overhead_restores_enabled_state():
    previous = profiling.enabled()
    measure_obs_overhead(
        _fresh_service, duration_s=0.5, rounds=1, transport="inprocess"
    )
    assert profiling.enabled() == previous
