"""T-DUAL — Dual neural KG serving strategies (paper Sec. 4, "the future").

Paper vision reproduced as a measurement:

* a KG-backed strategy fixes the LM's torso/tail blindness;
* knowledge infusion teaches the LM head knowledge (model fine-tuning);
* *recent* knowledge (born after the LM's training cutoff) is only
  servable from triples — the GPT-4 freshness-lag observation;
* the dual router (familiarity-gated LM + triple verification + KG
  fallback) dominates both pure strategies.
"""

from __future__ import annotations

import pytest

from repro.core.triple import Triple
from repro.datagen import names as name_vocab
from repro.datagen.text import generate_text_corpus
from repro.evalx.tables import ResultTable
from repro.neural.evaluate import evaluate_qa
from repro.neural.infusion import infuse_head_knowledge
from repro.neural.qa import (
    DualRouterQA,
    KGQA,
    LMQA,
    Question,
    RetrievalAugmentedQA,
    build_question_set,
)
from repro.neural.slm import SimulatedLM

import numpy as np


def _add_recent_knowledge(world, n_new_movies=25, seed=77):
    """Facts born after the LM's training cutoff: new movies in the KG.

    Returns the questions that only post-cutoff knowledge can answer.
    """
    rng = np.random.default_rng(seed)
    graph = world.truth
    people = [entity.entity_id for entity in graph.entities("Person")]
    questions = []
    for index in range(n_new_movies):
        entity_id = f"MNEW{index:04d}"
        title = f"{name_vocab.movie_title(rng)} Reborn {index}"
        graph.add_entity(entity_id, title, "Movie")
        director = people[int(rng.integers(0, len(people)))]
        year = 2024
        graph.add_triple(Triple(entity_id, "directed_by", director))
        graph.add_triple(Triple(entity_id, "release_year", year))
        questions.append(
            Question(
                subject_id=entity_id,
                subject_name=title,
                predicate="directed_by",
                gold=(graph.entity(director).name.lower(),),
                band="recent",
            )
        )
    return questions


def _run(shared_world):
    # Work on a private copy: this experiment mutates the world (time
    # passes and new facts are born), which must not leak into other
    # benchmarks sharing the session fixture.
    from repro.datagen.world import World

    world = World(
        truth=shared_world.truth.copy(),
        popularity=shared_world.popularity,
        config=shared_world.config,
    )
    # Train the LM on the pre-cutoff corpus...
    corpus = generate_text_corpus(
        world, n_sentences=10000, noise_rate=0.15, popularity_weighted=True, seed=15
    )
    model = SimulatedLM(seed=16).fit(corpus)
    questions = build_question_set(world, per_band=60, seed=17)
    # ...then the world moves on: recent facts enter the KG only.
    recent_questions = _add_recent_knowledge(world)

    strategies = {
        "lm_only": LMQA(model),
        "kg_only": KGQA(world.truth),
        "retrieval_augmented": RetrievalAugmentedQA(world.truth, model),
        "dual_router": DualRouterQA(world.truth, model),
    }
    table = ResultTable(
        title="Sec. 4 - serving strategies over triples + parametric knowledge",
        columns=["strategy", "overall_acc", "recent_acc", "halluc_rate"],
        note="paper: torso/tail + recent knowledge must live as triples; blend wins",
    )
    results = {}
    for strategy_name, system in strategies.items():
        overall = evaluate_qa(system, questions)
        recent = evaluate_qa(system, recent_questions)
        results[strategy_name] = (overall, recent)
        table.add_row(
            strategy_name, overall.accuracy, recent.accuracy, overall.hallucination_rate
        )

    # Infusion: teach the LM head knowledge, re-measure the LM-only row.
    infuse_head_knowledge(model, world, repetitions=8, seed=18)
    infused = evaluate_qa(LMQA(model), [q for q in questions if q.band == "head"])
    table.add_row("lm_after_head_infusion(head-only)", infused.accuracy, 0.0, infused.hallucination_rate)

    # Taxonomy knowledge: "what LLMs are good at capturing" — type
    # statements recur systematically, so parametric recall is reliable
    # even though individual tail facts are not.
    from repro.datagen.products import TAXONOMY_SPEC
    from repro.datagen.text import generate_taxonomy_corpus

    taxonomy_pairs = [
        (leaf.lower(), product_type.lower())
        for _dept, types in TAXONOMY_SPEC.items()
        for product_type, leaves in types.items()
        for leaf in leaves
    ]
    model.fit(generate_taxonomy_corpus(taxonomy_pairs, repetitions=15, seed=19))
    taxonomy_correct = sum(
        1
        for child, parent in taxonomy_pairs
        if model.answer(child, "hypernym").text == parent
    )
    taxonomy_accuracy = taxonomy_correct / len(taxonomy_pairs)
    table.add_row("lm_taxonomy_qa", taxonomy_accuracy, 0.0, 0.0)
    table.show()
    results["infused_head"] = infused
    results["taxonomy_accuracy"] = taxonomy_accuracy
    return results


@pytest.mark.benchmark(group="dual")
def test_dual_neural_kg(benchmark, bench_world):
    results = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)
    lm_overall, lm_recent = results["lm_only"]
    kg_overall, kg_recent = results["kg_only"]
    ra_overall, _ = results["retrieval_augmented"]
    dual_overall, dual_recent = results["dual_router"]

    # Shape 1: the LM cannot answer recent (post-cutoff) questions;
    # triple-backed strategies can.
    assert lm_recent.accuracy < 0.1
    assert kg_recent.accuracy > 0.9
    assert dual_recent.accuracy > 0.9

    # Shape 2: blending beats the pure LM by a wide margin.
    assert ra_overall.accuracy > lm_overall.accuracy + 0.2
    assert dual_overall.accuracy > lm_overall.accuracy + 0.2

    # Shape 3: the dual router is at least as good as pure KG serving
    # (it can only add correct LM answers on familiar knowledge).
    assert dual_overall.accuracy >= kg_overall.accuracy - 0.02

    # Shape 4: hallucination collapses once triples verify the LM.
    assert dual_overall.hallucination_rate < lm_overall.hallucination_rate

    # Shape 5: infusion lifts head accuracy (the fine-tuning direction).
    assert results["infused_head"].accuracy > 0.6

    # Shape 6: the LM is reliable on (frequently restated) taxonomy
    # knowledge — "tail taxonomy may best reside at the LLM side".
    assert results["taxonomy_accuracy"] > 0.8
    assert results["taxonomy_accuracy"] > lm_overall.accuracy + 0.3
