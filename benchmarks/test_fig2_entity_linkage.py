"""FIG2 — Entity linkage quality vs label budget (paper Figure 2).

Paper claim: random-forest linkage of movies and people between a
Freebase-like and an IMDb-like source reaches ~99% precision/recall with a
large label budget, and active learning reaches the same quality with
orders of magnitude fewer labels.

This bench sweeps the label budget for passive (random) and active
(uncertainty) labeling on both entity classes and prints the two curves of
Figure 2.
"""

from __future__ import annotations

import pytest

from repro.datagen.sources import default_source_pair
from repro.evalx.tables import ResultTable
from repro.integrate.active_linkage import label_budget_curve, labels_to_reach
from repro.integrate.linkage import EntityLinker, build_linkage_task
from repro.integrate.schema_alignment import oracle_alignment
from repro.ml.active import random_sampling, uncertainty_sampling

BUDGETS = (25, 50, 100, 200, 400, 800)
TARGET_F1 = 0.9


def _tasks(world):
    curated, second = default_source_pair(world, seed=11)
    curated_alignment = oracle_alignment(curated)
    second_alignment = oracle_alignment(second)
    return {
        entity_class: build_linkage_task(
            curated, second, entity_class, curated_alignment, second_alignment
        )
        for entity_class in ("Movie", "Person")
    }


def _run(world):
    tasks = _tasks(world)
    table = ResultTable(
        title="Figure 2 - linkage quality vs labels (RF, Freebase-like vs IMDb-like)",
        columns=["class", "strategy", "budget", "precision", "recall", "f1"],
        note="paper: >99% P/R with enough labels; active learning needs ~100x fewer",
    )
    curves = {}
    for entity_class, task in tasks.items():
        for strategy_name, strategy in (
            ("random", random_sampling),
            ("active", uncertainty_sampling),
        ):
            points = label_budget_curve(
                task,
                BUDGETS,
                strategy=strategy,
                linker_factory=lambda: EntityLinker(n_estimators=15, seed=3),
                seed=3,
            )
            curves[(entity_class, strategy_name)] = points
            for point in points:
                table.add_row(
                    entity_class,
                    strategy_name,
                    point.budget,
                    point.precision,
                    point.recall,
                    point.f1,
                )
    table.show()
    return tasks, curves


@pytest.mark.benchmark(group="fig2")
def test_fig2_entity_linkage(benchmark, bench_world):
    tasks, curves = benchmark.pedantic(
        lambda: _run(bench_world), rounds=1, iterations=1
    )

    # Shape 1: with the full budget, RF linkage is near-perfect on movies.
    final_movie = curves[("Movie", "active")][-1]
    assert final_movie.precision > 0.95
    assert final_movie.recall > 0.9

    # Shape 2: people (homonyms) also reach production quality.
    final_person = curves[("Person", "active")][-1]
    assert final_person.f1 > 0.85

    # Shape 3: active learning reaches the target with fewer labels than
    # passive labeling on at least one class, and never needs more.
    strictly_better = False
    for entity_class in ("Movie", "Person"):
        active_needed = labels_to_reach(curves[(entity_class, "active")], TARGET_F1)
        passive_needed = labels_to_reach(curves[(entity_class, "random")], TARGET_F1)
        if passive_needed is None:
            strictly_better = strictly_better or active_needed is not None
            continue
        assert active_needed is not None
        assert active_needed <= passive_needed
        if active_needed < passive_needed:
            strictly_better = True
    assert strictly_better
