"""Shared workloads for the benchmark suite.

Benchmarks are sized to run the full paper-reproduction sweep in minutes on
a laptop; every fixture is deterministic.  Each benchmark prints the table
or series corresponding to its paper figure and asserts the claim's
*shape* (who wins, by roughly what factor) rather than absolute numbers.
"""

from __future__ import annotations

import pytest

from repro.datagen.behavior import generate_behavior
from repro.datagen.products import ProductDomainConfig, build_product_domain
from repro.datagen.world import WorldConfig, build_world


@pytest.fixture(scope="session")
def bench_world():
    """The movie/music world used by entity-based experiments."""
    return build_world(WorldConfig(n_people=300, n_movies=200, n_songs=100, seed=7))


@pytest.fixture(scope="session")
def bench_product_domain():
    """The product domain used by text-rich experiments.

    Sized so each of the ~11 product types has enough catalog rows for
    distant supervision to work with (the regime the paper's automated
    pipeline assumes).
    """
    return build_product_domain(ProductDomainConfig(n_products=520, seed=21))


@pytest.fixture(scope="session")
def bench_behavior(bench_product_domain):
    """Behavior log over the benchmark product domain."""
    return generate_behavior(
        bench_product_domain,
        n_search_sessions=1500,
        n_coview_sessions=600,
        n_copurchase_sessions=400,
        seed=31,
    )
