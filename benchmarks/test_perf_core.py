"""Performance micro-benchmarks for the core substrate.

Unlike the figure benchmarks (one measured run that prints a paper table),
these use pytest-benchmark the conventional way — many timed rounds — to
track the hot paths a KG substrate lives or dies by: triple insertion,
indexed pattern queries, name lookup, bipartite reverse lookup, sequence
tagging, and similarity scoring.
"""

from __future__ import annotations

import pytest

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.textrich import AttributeValue, TextRichKG
from repro.core.triple import Triple
from repro.ml.similarity import feature_vector
from repro.ml.tagger import SequenceTagger


def _filled_graph(n_entities=400, n_triples_per=4):
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology)
    for index in range(n_entities):
        graph.add_entity(f"e{index}", f"Entity {index % 97}", "Thing")
    for index in range(n_entities):
        for offset in range(n_triples_per):
            graph.add(f"e{index}", f"p{offset}", f"e{(index + offset + 1) % n_entities}")
    return graph


@pytest.fixture(scope="module")
def filled_graph():
    return _filled_graph()


@pytest.fixture(scope="module")
def filled_textrich():
    kg = TextRichKG()
    for index in range(400):
        topic = f"t{index}"
        kg.add_topic(topic, f"Title {index}", "Thing")
        kg.add_value(topic, AttributeValue(attribute="flavor", value=f"v{index % 23}"))
        kg.add_value(topic, AttributeValue(attribute="size", value=f"s{index % 7}"))
    return kg


@pytest.fixture(scope="module")
def trained_tagger():
    sentences = [["rich", f"val{i % 19}", "flavor", "in", "every", "bite"] for i in range(120)]
    tags = [["O", "B-flavor", "O", "O", "O", "O"] for _ in range(120)]
    return SequenceTagger(n_epochs=3).fit(sentences, tags)


@pytest.mark.benchmark(group="perf-core")
def test_perf_triple_insertion(benchmark):
    def build():
        return _filled_graph(n_entities=150, n_triples_per=3)

    graph = benchmark(build)
    assert len(graph) == 450


@pytest.mark.benchmark(group="perf-core")
def test_perf_spo_query(benchmark, filled_graph):
    result = benchmark(lambda: filled_graph.query(subject="e10", predicate="p1"))
    assert len(result) == 1


@pytest.mark.benchmark(group="perf-core")
def test_perf_pos_query(benchmark, filled_graph):
    result = benchmark(lambda: filled_graph.query(predicate="p2", obj="e5"))
    assert result


@pytest.mark.benchmark(group="perf-core")
def test_perf_name_lookup(benchmark, filled_graph):
    result = benchmark(lambda: filled_graph.find_by_name("entity 42"))
    assert result


@pytest.mark.benchmark(group="perf-core")
def test_perf_bipartite_reverse_lookup(benchmark, filled_textrich):
    result = benchmark(lambda: filled_textrich.topics_with_value("flavor", "v7"))
    assert result


@pytest.mark.benchmark(group="perf-core")
def test_perf_tagger_decode(benchmark, trained_tagger):
    tokens = ["rich", "val7", "flavor", "in", "every", "bite"]
    tags = benchmark(lambda: trained_tagger.predict(tokens))
    assert tags[1] == "B-flavor"


@pytest.mark.benchmark(group="perf-core")
def test_perf_similarity_features(benchmark):
    left = {"name": "The Crimson Harbor", "release_year": 1987, "genre": "drama"}
    right = {"name": "Crimson Harbor, The", "release_year": 1988, "genre": "drama"}
    features = benchmark(
        lambda: feature_vector(left, right, ["name", "release_year", "genre"])
    )
    assert len(features) == 4
