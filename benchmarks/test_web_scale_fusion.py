"""T-WEB — Web-scale extraction and fusion (paper Sec. 2.4).

Paper claims reproduced in shape:

* Knowledge Vault pulled from four web content types; **semi-structured
  websites dominated the high-confidence extractions** (94M of the 100M
  triples with >90% confidence);
* the text channel is the noisiest; annotations/tables sit in between;
* graphical-model fusion yields calibrated confidences: the >=0.9 slice is
  actually >=90% correct;
* Knowledge-Based Trust separates source quality from extractor quality.
"""

from __future__ import annotations

import pytest

from repro.datagen.text import generate_text_corpus
from repro.datagen.web import generate_web_corpus
from repro.datagen.webextras import generate_annotated_pages, generate_web_tables
from repro.evalx.tables import ResultTable
from repro.extract.annotations import AnnotationExtractor
from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
from repro.extract.textie import TextPatternExtractor
from repro.extract.webtables import WebTableExtractor
from repro.fuse.graphical import ExtractionObservation, GraphicalFusion

ATTRIBUTES = (
    "directed_by",
    "release_year",
    "genre",
    "runtime",
    "birth_year",
    "birth_place",
    "performed_by",
)


def _world_truth_pairs(world):
    """(subject_name_lower, attribute) -> set of true value strings."""
    truth = {}
    for entity in world.truth.entities():
        for attribute in ATTRIBUTES:
            values = set()
            for value in world.truth.objects(entity.entity_id, attribute):
                if isinstance(value, str) and world.truth.has_entity(value):
                    values.add(world.truth.entity(value).name.lower())
                else:
                    values.add(str(value).lower())
            if values:
                key = (entity.name.lower(), attribute)
                truth.setdefault(key, set()).update(values)
    return truth


def _collect_observations(world):
    observations = []

    # Channel 1: text patterns.
    corpus = generate_text_corpus(world, n_sentences=2500, noise_rate=0.3, seed=61)
    entity_names = [entity.name for entity in world.truth.entities()]
    seeds = set()
    for mention in corpus:
        if mention.predicate is not None and len(seeds) < 250:
            seeds.add((mention.subject_text, mention.predicate, mention.object_text))
    text_extractor = TextPatternExtractor(min_confidence=0.5).fit(
        [mention.sentence for mention in corpus], seeds, entity_names
    )
    for attributed in text_extractor.extract(
        [mention.sentence for mention in corpus], entity_names
    ):
        observations.append(
            ExtractionObservation(
                subject=attributed.triple.subject.lower(),
                attribute=attributed.triple.predicate,
                value=str(attributed.triple.object).lower(),
                source="web_text",
                extractor="text_pattern",
            )
        )

    # Channel 2: semi-structured websites (Ceres).  The crawl is the
    # biggest channel by far, as on the real web.
    sites = generate_web_corpus(world, n_sites=6, pages_per_site=45, seed=62)
    seed_knowledge = SeedKnowledge.from_graph(world.truth, attributes=ATTRIBUTES)
    for site in sites:
        extractor = CeresExtractor(site_name=site.name).fit(
            [page.root for page in site.pages[:12]], DistantSupervisor(seed_knowledge)
        )
        for page in site.pages[12:]:
            for attributed in extractor.extract_triples(page.root):
                observations.append(
                    ExtractionObservation(
                        subject=attributed.triple.subject.lower(),
                        attribute=attributed.triple.predicate,
                        value=str(attributed.triple.object).lower(),
                        source=site.name,
                        extractor="ceres",
                    )
                )

    # Channel 3: web tables.
    tables = generate_web_tables(world, n_tables=4, rows_per_table=12, seed=63)
    table_extractor = WebTableExtractor()
    for table in tables:
        for attributed in table_extractor.extract(table, seed_knowledge):
            observations.append(
                ExtractionObservation(
                    subject=attributed.triple.subject.lower(),
                    attribute=attributed.triple.predicate,
                    value=str(attributed.triple.object).lower(),
                    source=attributed.provenance.source,
                    extractor="web_table",
                )
            )

    # Channel 4: schema.org annotations.
    annotated = generate_annotated_pages(world, n_pages=50, wrong_prop_rate=0.08, seed=64)
    annotation_extractor = AnnotationExtractor()
    for page in annotated:
        for attributed in annotation_extractor.extract(page.root):
            observations.append(
                ExtractionObservation(
                    subject=attributed.triple.subject.lower(),
                    attribute=attributed.triple.predicate,
                    value=str(attributed.triple.object).lower(),
                    source="annotated.example.com",
                    extractor="schema_org",
                )
            )
    return observations


_CHANNEL_OF_EXTRACTOR = {
    "text_pattern": "text",
    "ceres": "semi_structured",
    "web_table": "web_tables",
    "schema_org": "annotations",
}


def _run(world):
    truth = _world_truth_pairs(world)
    observations = _collect_observations(world)
    fusion = GraphicalFusion(n_iterations=8)
    beliefs = fusion.fuse(observations)
    belief_of = {
        (belief.subject, belief.attribute, belief.value): belief.probability
        for belief in beliefs
    }

    def is_correct(subject, attribute, value) -> bool:
        return value in truth.get((subject, attribute), set())

    table = ResultTable(
        title="Sec. 2.4 - web-scale extraction by channel, fused confidences",
        columns=[
            "channel",
            "n_extracted",
            "raw_accuracy",
            "n_high_conf",
            "high_conf_accuracy",
        ],
        note="paper: semi-structured data dominated KV's high-confidence triples (94M/100M)",
    )
    stats = {}
    for extractor_name, channel in _CHANNEL_OF_EXTRACTOR.items():
        channel_obs = [obs for obs in observations if obs.extractor == extractor_name]
        distinct = {(obs.subject, obs.attribute, obs.value) for obs in channel_obs}
        n_correct = sum(1 for key in distinct if is_correct(*key))
        high = {key for key in distinct if belief_of.get(key, 0.0) >= 0.9}
        high_correct = sum(1 for key in high if is_correct(*key))
        stats[channel] = {
            "n": len(distinct),
            "raw_accuracy": n_correct / len(distinct) if distinct else 0.0,
            "n_high": len(high),
            "high_accuracy": high_correct / len(high) if high else 1.0,
        }
        table.add_row(
            channel,
            len(distinct),
            stats[channel]["raw_accuracy"],
            len(high),
            stats[channel]["high_accuracy"],
        )
    table.show()

    # Overall calibration of the fused >=0.9 slice.
    high_all = {key for key, probability in belief_of.items() if probability >= 0.9}
    overall_high_accuracy = (
        sum(1 for key in high_all if is_correct(*key)) / len(high_all) if high_all else 0.0
    )
    summary = ResultTable(
        title="Sec. 2.4 - fused high-confidence slice (the KV 90% bar)",
        columns=["n_triples_at_0.9", "accuracy"],
    )
    summary.add_row(len(high_all), overall_high_accuracy)
    summary.show()
    return stats, overall_high_accuracy


@pytest.mark.benchmark(group="web-scale")
def test_web_scale_fusion(benchmark, bench_world):
    stats, overall_high_accuracy = benchmark.pedantic(
        lambda: _run(bench_world), rounds=1, iterations=1
    )

    # Shape 1: semi-structured dominates the high-confidence slice.
    semi_high = stats["semi_structured"]["n_high"]
    for channel in ("text", "web_tables", "annotations"):
        assert semi_high >= stats[channel]["n_high"]

    # Shape 2: the text channel is the least accurate.
    text_accuracy = stats["text"]["raw_accuracy"]
    assert text_accuracy <= stats["semi_structured"]["raw_accuracy"]
    assert text_accuracy <= stats["annotations"]["raw_accuracy"]

    # Shape 3: the fused >=90% slice is actually >=90% correct (KV's bar).
    assert overall_high_accuracy >= 0.9
