"""FIG3 — Extraction quality from semi-structured websites (paper Fig. 3).

Paper claim: wrapper induction achieves the highest accuracy (>95%) but
requires annotations on every website; distantly supervised ClosedIE
(Ceres) exceeds 90% with no per-site annotation; OpenIE increases the
volume of extracted knowledge but at much lower accuracy; zero-shot
extraction works on unseen domains but "remains in exploratory stages".
"""

from __future__ import annotations

import pytest

from repro.datagen.web import generate_web_corpus
from repro.evalx.tables import ResultTable
from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
from repro.extract.openie import OpenIEExtractor
from repro.extract.wrapper import WrapperInducer, annotate_by_truth
from repro.extract.zeroshot import ZeroShotExtractor

ATTRIBUTES = (
    "directed_by",
    "release_year",
    "genre",
    "runtime",
    "birth_year",
    "birth_place",
    "performed_by",
)
N_ANNOTATED_PER_SITE = 4


def _run(world):
    sites = generate_web_corpus(world, n_sites=6, pages_per_site=30, seed=100)
    seed_knowledge = SeedKnowledge.from_graph(world.truth, attributes=ATTRIBUTES)
    rows = {}

    # --- wrapper induction: per-site annotations ------------------------
    correct = total = extracted_count = 0
    for site in sites:
        annotated, held_out = site.split(N_ANNOTATED_PER_SITE)
        wrapper = WrapperInducer(site_name=site.name).induce(
            [(page.root, annotate_by_truth(page.root, page.closed_truth)) for page in annotated]
        )
        for page in held_out:
            extracted = wrapper.extract(page.root)
            for attribute, value in extracted.items():
                total += 1
                extracted_count += 1
                if page.closed_truth.get(attribute) == value:
                    correct += 1
    rows["wrapper_induction"] = {
        "accuracy": correct / total,
        "n_extractions": extracted_count,
        "annotated_sites": len(sites),
    }

    # --- ClosedIE (Ceres-style distant supervision) ----------------------
    correct = total = extracted_count = 0
    for site in sites:
        train, test = site.split(20)
        extractor = CeresExtractor(site_name=site.name).fit(
            [page.root for page in train], DistantSupervisor(seed_knowledge)
        )
        for page in test:
            for attribute, (value, _conf) in extractor.extract(page.root).items():
                total += 1
                extracted_count += 1
                if page.closed_truth.get(attribute, "").lower() == value.lower():
                    correct += 1
    rows["closedie_ceres"] = {
        "accuracy": correct / total,
        "n_extractions": extracted_count,
        "annotated_sites": 0,
    }

    # --- OpenIE (OpenCeres-style) ----------------------------------------
    open_extractor = OpenIEExtractor()
    correct = total = 0
    for site in sites:
        for page in site.pages:
            truth_values = {value.lower() for value in page.closed_truth.values()}
            open_pairs = {
                (label.lower(), value.lower()) for label, value in page.open_truth.items()
            }
            for pair in open_extractor.extract(page.root):
                total += 1
                key = (pair.attribute.lower(), pair.value.lower())
                if key in open_pairs or pair.value.lower() in truth_values:
                    correct += 1
    rows["openie_openceres"] = {
        "accuracy": correct / total,
        "n_extractions": total,
        "annotated_sites": 0,
    }

    # --- zero-shot GNN (ZeroShotCeres-style) ------------------------------
    train_sites, test_sites = sites[:4], sites[4:]
    training_pages = []
    for site in train_sites:
        for page in site.pages:
            values = set(page.closed_truth.values()) | set(page.open_truth.values())
            training_pages.append((page.root, values, page.topic_name))
    zero_shot = ZeroShotExtractor(n_iterations=200, seed=2).fit(training_pages)
    correct = total = 0
    from repro.datagen.web import LABEL_STYLES

    for site in test_sites:
        style = site.config.label_style
        for page in site.pages:
            # Strict pair-level truth: the on-page label AND the value.
            truth_pairs = set()
            for attribute, value in page.closed_truth.items():
                labels = LABEL_STYLES[attribute]
                truth_pairs.add((labels[style % len(labels)].lower(), value.lower()))
            for label, value in page.open_truth.items():
                truth_pairs.add((label.lower(), value.lower()))
            for pair in zero_shot.extract(page.root):
                total += 1
                if (pair.attribute.lower(), pair.value.lower()) in truth_pairs:
                    correct += 1
    rows["zeroshot_gnn"] = {
        "accuracy": correct / total if total else 0.0,
        "n_extractions": total,
        "annotated_sites": 0,
    }

    table = ResultTable(
        title="Figure 3 - extraction from semi-structured websites",
        columns=["method", "accuracy", "n_extractions", "annotated_sites"],
        note="paper: wrappers >95% but per-site annotation; ClosedIE >90%; OpenIE noisy",
    )
    for method, stats in rows.items():
        table.add_row(method, stats["accuracy"], stats["n_extractions"], stats["annotated_sites"])
    table.show()
    return rows


@pytest.mark.benchmark(group="fig3")
def test_fig3_semistructured_extraction(benchmark, bench_world):
    rows = benchmark.pedantic(lambda: _run(bench_world), rounds=1, iterations=1)

    # Shape 1: wrapper induction is the most accurate but needs per-site
    # annotations (annotated_sites == all sites).
    assert rows["wrapper_induction"]["accuracy"] > 0.9
    assert rows["wrapper_induction"]["annotated_sites"] == 6

    # Shape 2: ClosedIE reaches the production band with zero annotation.
    assert rows["closedie_ceres"]["accuracy"] > 0.9
    assert rows["closedie_ceres"]["annotated_sites"] == 0

    # Shape 3: OpenIE extracts more than ClosedIE but at lower accuracy.
    assert rows["openie_openceres"]["n_extractions"] > rows["closedie_ceres"]["n_extractions"]
    assert rows["openie_openceres"]["accuracy"] < rows["closedie_ceres"]["accuracy"] - 0.1

    # Shape 4: zero-shot transfers to unseen sites/domains but stays below
    # the in-site ClosedIE quality (exploratory stage).
    assert rows["zeroshot_gnn"]["n_extractions"] > 0
    assert 0.3 < rows["zeroshot_gnn"]["accuracy"] <= rows["closedie_ceres"]["accuracy"]
