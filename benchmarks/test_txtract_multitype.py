"""T-TXTRACT — One type-aware model for all types (paper Sec. 3.3).

Paper claim: "TXtract shows that it can train one model for 4K product
types, while increasing extraction F-measure by 10% compared to OpenTag as
a baseline."  The reproduction compares (a) one pooled OpenTag with no type
context, (b) one-model-per-type OpenTag (the unscalable regime), and
(c) TXtract — one model with type conditioning.
"""

from __future__ import annotations

import pytest

from repro.evalx.tables import ResultTable
from repro.ml.metrics import BinaryConfusion
from repro.products.opentag import OpenTagModel, train_test_split
from repro.products.txtract import TXtractModel


def _per_type_baseline(domain, train, test, attributes):
    """Train one OpenTag per product type; evaluate jointly."""
    total = BinaryConfusion()
    by_type_train = {}
    for product in train:
        by_type_train.setdefault(product.product_type, []).append(product)
    by_type_test = {}
    for product in test:
        by_type_test.setdefault(product.product_type, []).append(product)
    n_models = 0
    for product_type, type_test in by_type_test.items():
        type_train = by_type_train.get(product_type, [])
        if len(type_train) < 4:
            continue
        model = OpenTagModel(attributes=attributes, n_epochs=6, seed=3).fit(type_train)
        n_models += 1
        for confusion in model.evaluate(type_test).values():
            total += confusion
    return total, n_models


def _run(domain):
    attributes = tuple(domain.attributes())
    train, test = train_test_split(domain.products, test_fraction=0.3, seed=4)

    pooled = OpenTagModel(attributes=attributes, n_epochs=6, seed=3).fit(train)
    pooled_f1 = pooled.micro_f1(test)

    per_type_confusion, n_models = _per_type_baseline(domain, train, test, attributes)
    per_type_f1 = per_type_confusion.f1

    txtract = TXtractModel(attributes=attributes, n_epochs=6, seed=3).fit(train)
    txtract_f1 = txtract.micro_f1(test)

    # The scarce-data regime: few examples per type, where sharing one
    # model across types while staying type-aware matters most (the 4K-type
    # production setting is scarce for almost every type).
    scarce_train = train[:90]
    pooled_scarce = OpenTagModel(attributes=attributes, n_epochs=6, seed=3).fit(scarce_train)
    txtract_scarce = TXtractModel(attributes=attributes, n_epochs=6, seed=3).fit(scarce_train)
    pooled_scarce_f1 = pooled_scarce.micro_f1(test)
    txtract_scarce_f1 = txtract_scarce.micro_f1(test)

    table = ResultTable(
        title="Sec. 3.3 - TXtract vs OpenTag across all product types",
        columns=["model", "n_models", "micro_f1", "relative_gain_vs_pooled"],
        note="paper: one TXtract model for 4K types, +10% F over OpenTag",
    )
    table.add_row("opentag_pooled", 1, pooled_f1, 0.0)
    table.add_row(
        "opentag_per_type", n_models, per_type_f1, (per_type_f1 - pooled_f1) / pooled_f1
    )
    table.add_row("txtract", 1, txtract_f1, (txtract_f1 - pooled_f1) / pooled_f1)
    table.add_row("opentag_pooled(90-train)", 1, pooled_scarce_f1, 0.0)
    table.add_row(
        "txtract(90-train)",
        1,
        txtract_scarce_f1,
        (txtract_scarce_f1 - pooled_scarce_f1) / pooled_scarce_f1,
    )
    table.show()
    return {
        "pooled": pooled_f1,
        "per_type": per_type_f1,
        "txtract": txtract_f1,
        "n_models": n_models,
        "pooled_scarce": pooled_scarce_f1,
        "txtract_scarce": txtract_scarce_f1,
    }


@pytest.mark.benchmark(group="txtract")
def test_txtract_multitype(benchmark, bench_product_domain):
    results = benchmark.pedantic(
        lambda: _run(bench_product_domain), rounds=1, iterations=1
    )
    # Shape 1: a single type-aware model beats the single pooled model.
    assert results["txtract"] > results["pooled"]
    # Shape 2: it does so with ONE model where the per-type regime needs
    # one per type — the scalability claim.
    assert results["n_models"] > 5
    # Shape 3: type awareness recovers (at least most of) the per-type
    # quality without per-type training.
    assert results["txtract"] >= results["per_type"] - 0.05
    # Shape 4: in the scarce-data regime the gap widens (the production
    # setting behind the paper's +10%).
    assert results["txtract_scarce"] > results["pooled_scarce"]
