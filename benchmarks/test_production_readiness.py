"""T-SUCCESS — The Sec. 5 production-readiness matrix, measured.

Paper claim: industry success requires a technique to be *ready*
(production quality, 90-99% for knowledge correctness) and *essential*
(significant productivity scale-up).  Successes: knowledge-based QA,
entity linkage, ClosedIE, knowledge cleaning.  Not-yet: automatic schema
alignment, knowledge fusion (limited need), link prediction, OpenIE.

This bench *measures* the quality of each implemented technique on shared
workloads, assigns the leverage each technique offers (documented
constants), and checks that the resulting matrix reproduces the paper's
split.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lifecycle import CycleStage, TechniqueProfile, TechniqueRegistry
from repro.datagen.sources import default_source_pair
from repro.datagen.text import generate_text_corpus
from repro.datagen.web import generate_site, WebsiteConfig
from repro.evalx.tables import ResultTable
from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
from repro.extract.openie import OpenIEExtractor
from repro.fuse.linkpred import TransEModel
from repro.integrate.fusion import AccuFusion, claims_from_sources
from repro.integrate.linkage import EntityLinker, build_linkage_task
from repro.integrate.schema_alignment import (
    SchemaMatcher,
    alignment_as_map,
    oracle_alignment,
)
from repro.neural.qa import KGQA, build_question_set
from repro.neural.evaluate import evaluate_qa
from repro.products.autoknow import AutoKnow

#: Productivity leverage per technique (multiplicative reduction in manual
#: work), from the paper's qualitative discussion: linkage/ClosedIE/QA and
#: cleaning unlock web/catalog scale (>>10x); fusion's need "is still
#: limited" among a few authoritative sources; manual schema alignment of
#: a few sources is cheap, so automating it saves little.
LEVERAGE = {
    "knowledge_based_qa": 1000.0,
    "entity_linkage": 1000.0,
    "closedie_extraction": 1000.0,
    "knowledge_cleaning": 100.0,
    "automatic_schema_alignment": 3.0,
    "knowledge_fusion": 3.0,
    "link_prediction": 100.0,
    "value_imputation": 100.0,
    "openie": 1000.0,
}


def _measure_entity_linkage(world) -> float:
    curated, second = default_source_pair(world, seed=11)
    task = build_linkage_task(
        curated, second, "Movie", oracle_alignment(curated), oracle_alignment(second)
    )
    linker = EntityLinker(n_estimators=15, seed=1).fit(task.features, task.labels)
    return task.evaluate(list(linker.predict(task.features, pairs=task.pairs))).f1


def _measure_closedie(world) -> float:
    site = generate_site(
        world, WebsiteConfig(name="m.example.com", domain="Movie", n_pages=40, seed=71)
    )
    seed_knowledge = SeedKnowledge.from_graph(
        world.truth, attributes=("directed_by", "release_year", "genre", "runtime")
    )
    train, test = site.split(25)
    extractor = CeresExtractor(site_name=site.name).fit(
        [page.root for page in train], DistantSupervisor(seed_knowledge)
    )
    correct = total = 0
    for page in test:
        for attribute, (value, _conf) in extractor.extract(page.root).items():
            total += 1
            if page.closed_truth.get(attribute, "").lower() == value.lower():
                correct += 1
    return correct / total if total else 0.0


def _measure_openie(world) -> float:
    site = generate_site(
        world, WebsiteConfig(name="o.example.com", domain="Movie", n_pages=25, seed=72)
    )
    extractor = OpenIEExtractor()
    correct = total = 0
    for page in site.pages:
        truth_values = {value.lower() for value in page.closed_truth.values()}
        open_pairs = {
            (label.lower(), value.lower()) for label, value in page.open_truth.items()
        }
        for pair in extractor.extract(page.root):
            total += 1
            if (pair.attribute.lower(), pair.value.lower()) in open_pairs or pair.value.lower() in truth_values:
                correct += 1
    return correct / total if total else 0.0


def _measure_schema_alignment(world) -> float:
    _curated, second = default_source_pair(world, seed=11)
    oracle = oracle_alignment(second)
    reference_values = {}
    for entity in world.truth.entities():
        record = world.record_for(entity.entity_id)
        for attribute, value in record.items():
            if attribute in ("id", "class", "stars"):
                continue
            reference_values.setdefault(attribute, []).append(
                value[0] if isinstance(value, list) else value
            )
    canonical = [attr for attr in reference_values if attr != "name"] + ["name"]
    proposed = alignment_as_map(
        SchemaMatcher().align(second, canonical, reference_values=reference_values)
    )
    fields = [field for field in second.field_names() if field not in ("first_name", "last_name")]
    correct = sum(1 for field in fields if proposed.get(field) == oracle.get(field))
    return correct / len(fields) if fields else 0.0


def _measure_fusion(world) -> float:
    from repro.datagen.sources import conflicting_sources

    sources = conflicting_sources(world, n_sources=5, seed=73)
    claims = claims_from_sources(sources, attributes=("release_year", "genre"))
    results = AccuFusion().fuse(claims)
    correct = total = 0
    for result in results:
        truth = world.truth.objects(result.subject, result.attribute)
        if not truth:
            continue
        total += 1
        if str(result.value).lower() in {str(v).lower() for v in truth}:
            correct += 1
    return correct / total if total else 0.0


def _measure_link_prediction(world) -> float:
    """Top-1 inference precision — the add-knowledge use case."""
    model = TransEModel(dim=20, n_epochs=60, seed=3).fit(world.truth)
    positives = [
        (triple.subject, str(triple.object))
        for triple in world.truth.query(predicate="directed_by")
    ][:40]
    hits = trials = 0
    for subject, true_object in positives:
        ranked = model.rank_objects(subject, "directed_by", top_k=1)
        if ranked:
            trials += 1
            hits += ranked[0][0] == true_object
    return hits / trials if trials else 0.0


def _measure_kbqa(world) -> float:
    questions = build_question_set(world, per_band=40, seed=74)
    return evaluate_qa(KGQA(world.truth), questions).accuracy


def _measure_cleaning(domain, behavior) -> float:
    autoknow = AutoKnow(n_epochs=3, seed=5)
    report = autoknow.run(domain, behavior=behavior)
    return report.final_accuracy


def _measure_imputation(domain) -> float:
    from repro.products.imputation import ValueImputer

    imputer = ValueImputer(min_confidence=0.8).fit(domain)
    return imputer.evaluate(domain)["accuracy"]


def _run(world, domain, behavior):
    registry = TechniqueRegistry()
    measured = {
        "entity_linkage": (_measure_entity_linkage(world), CycleStage.REPEATABILITY),
        "closedie_extraction": (_measure_closedie(world), CycleStage.SCALABILITY),
        "openie": (_measure_openie(world), CycleStage.FEASIBILITY),
        "automatic_schema_alignment": (
            _measure_schema_alignment(world),
            CycleStage.FEASIBILITY,
        ),
        "knowledge_fusion": (_measure_fusion(world), CycleStage.QUALITY),
        "link_prediction": (_measure_link_prediction(world), CycleStage.FEASIBILITY),
        "value_imputation": (_measure_imputation(domain), CycleStage.FEASIBILITY),
        "knowledge_based_qa": (_measure_kbqa(world), CycleStage.UBIQUITY),
        "knowledge_cleaning": (_measure_cleaning(domain, behavior), CycleStage.SCALABILITY),
    }
    for name, (quality, stage) in measured.items():
        registry.register(
            TechniqueProfile(name=name, stage=stage, quality=quality, leverage=LEVERAGE[name])
        )
    table = ResultTable(
        title="Sec. 5 - production-readiness matrix (measured)",
        columns=["technique", "stage", "quality", "leverage", "ready", "essential", "production_ready"],
        note="ready: quality >= 0.90; essential: leverage >= 10x",
    )
    for row in registry.matrix():
        table.add_row(
            row["technique"],
            row["stage"],
            row["quality"],
            row["leverage"],
            row["ready"],
            row["essential"],
            row["production_ready"],
        )
    table.show()
    return registry


@pytest.mark.benchmark(group="success")
def test_production_readiness(benchmark, bench_world, bench_product_domain, bench_behavior):
    registry = benchmark.pedantic(
        lambda: _run(bench_world, bench_product_domain, bench_behavior),
        rounds=1,
        iterations=1,
    )
    successes = set(registry.successes())
    not_yet = set(registry.not_yet())

    # The paper's Sec. 5 split, reproduced from measurements.
    assert {
        "entity_linkage",
        "closedie_extraction",
        "knowledge_cleaning",
        "knowledge_based_qa",
    } <= successes
    assert {
        "openie",
        "link_prediction",
        "value_imputation",
        "knowledge_fusion",
        "automatic_schema_alignment",
    } <= not_yet
