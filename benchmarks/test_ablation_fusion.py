"""Ablation — fusion model choice (DESIGN.md Sec. 5).

Majority vote vs Bayesian accuracy-weighted fusion (ACCU-style) vs the
two-layer graphical model, on sources of graded reliability.  Accuracy
weighting beats counting when source quality varies; the graphical model
additionally calibrates confidence (its >=0.9 slice is >=90% correct).
"""

from __future__ import annotations

import pytest

from repro.datagen.sources import conflicting_sources
from repro.evalx.tables import ResultTable
from repro.fuse.graphical import ExtractionObservation, GraphicalFusion
from repro.integrate.fusion import AccuFusion, claims_from_sources, majority_vote

ATTRIBUTES = ("release_year", "genre", "runtime")


def _truth_check(world, subject, attribute, value) -> bool:
    truth = world.truth.objects(subject, attribute)
    return any(str(candidate).lower() == str(value).lower() for candidate in truth)


def _run(world):
    sources = conflicting_sources(
        world, n_sources=5, base_accuracy=(0.97, 0.93, 0.85, 0.7, 0.55), seed=81
    )
    claims = claims_from_sources(sources, attributes=ATTRIBUTES)

    def accuracy_of(results) -> float:
        judged = [
            _truth_check(world, r.subject, r.attribute, r.value)
            for r in results
            if world.truth.objects(r.subject, r.attribute)
        ]
        return sum(judged) / len(judged) if judged else 0.0

    vote_results = majority_vote(claims)
    accu = AccuFusion(n_iterations=10)
    accu_results = accu.fuse(claims)

    observations = [
        ExtractionObservation(
            subject=claim.subject,
            attribute=claim.attribute,
            value=claim.value,
            source=claim.source,
            extractor="ingest",
        )
        for claim in claims
    ]
    graphical = GraphicalFusion(n_iterations=8)
    beliefs = graphical.fuse(observations)
    best_per_item = {}
    for belief in beliefs:
        key = (belief.subject, belief.attribute)
        if key not in best_per_item or belief.probability > best_per_item[key].probability:
            best_per_item[key] = belief
    graphical_accuracy = accuracy_of(list(best_per_item.values()))
    high = [belief for belief in beliefs if belief.probability >= 0.9]
    high_accuracy = (
        sum(
            1
            for belief in high
            if _truth_check(world, belief.subject, belief.attribute, belief.value)
        )
        / len(high)
        if high
        else 0.0
    )

    table = ResultTable(
        title="Ablation - fusion model on graded-reliability sources",
        columns=["model", "accuracy", "calibrated_high_conf_acc"],
    )
    vote_accuracy = accuracy_of(vote_results)
    accu_accuracy = accuracy_of(accu_results)
    table.add_row("majority_vote", vote_accuracy, float("nan"))
    table.add_row("accu_bayesian", accu_accuracy, float("nan"))
    table.add_row("graphical_em", graphical_accuracy, high_accuracy)
    table.show()
    return vote_accuracy, accu_accuracy, graphical_accuracy, high_accuracy


@pytest.mark.benchmark(group="ablation")
def test_ablation_fusion(benchmark, bench_world):
    vote_accuracy, accu_accuracy, graphical_accuracy, high_accuracy = benchmark.pedantic(
        lambda: _run(bench_world), rounds=1, iterations=1
    )
    # Accuracy weighting >= counting votes.
    assert accu_accuracy >= vote_accuracy - 0.01
    # The graphical model is competitive on decisions...
    assert graphical_accuracy >= vote_accuracy - 0.03
    # ...and its confidence is calibrated at the 0.9 bar.
    assert high_accuracy >= 0.9
