"""Setup shim for environments without the ``wheel`` package.

The sandbox has no network and no ``wheel`` distribution, so PEP 517
editable installs (which require ``bdist_wheel``) fail; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
