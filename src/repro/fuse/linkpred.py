"""Translational-embedding link prediction (TransE-style).

Knowledge Vault used "deep learning based link prediction" to score the
plausibility of extracted triples against the existing KG (Sec. 2.4).  The
classic translational model — score(s, r, o) = -||e_s + w_r - e_o|| —
captures the same idea at laptop scale: triples consistent with the graph's
regularities score high, corrupted ones score low.  Sec. 5 notes link
prediction "has not achieved the quality to reliably add inferred knowledge
into KGs" but is useful "to detect incorrect information" — which is how
the benchmarks here use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph


@dataclass
class TransEModel:
    """Margin-based TransE trained with SGD and negative sampling."""

    dim: int = 24
    margin: float = 1.0
    learning_rate: float = 0.05
    n_epochs: int = 120
    seed: int = 0
    entity_index_: Dict[str, int] = field(default_factory=dict, init=False)
    relation_index_: Dict[str, int] = field(default_factory=dict, init=False)
    entity_vectors_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    relation_vectors_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(self, graph: KnowledgeGraph, relations: Optional[Sequence[str]] = None) -> "TransEModel":
        """Train on the graph's entity-to-entity edges.

        ``relations`` restricts training to a subset; literal-valued triples
        are ignored (embeddings are for graph structure).
        """
        triples: List[Tuple[str, str, str]] = []
        for triple in graph.triples():
            if relations is not None and triple.predicate not in relations:
                continue
            if isinstance(triple.object, str) and graph.has_entity(triple.object):
                triples.append((triple.subject, triple.predicate, triple.object))
        if not triples:
            raise ValueError("graph has no entity-to-entity edges to embed")
        entities = sorted({t[0] for t in triples} | {t[2] for t in triples})
        relations_seen = sorted({t[1] for t in triples})
        self.entity_index_ = {entity: index for index, entity in enumerate(entities)}
        self.relation_index_ = {relation: index for index, relation in enumerate(relations_seen)}
        rng = np.random.default_rng(self.seed)
        bound = 6.0 / np.sqrt(self.dim)
        self.entity_vectors_ = rng.uniform(-bound, bound, size=(len(entities), self.dim))
        self.relation_vectors_ = rng.uniform(-bound, bound, size=(len(relations_seen), self.dim))
        self._normalize_entities()
        indexed = [
            (self.entity_index_[s], self.relation_index_[r], self.entity_index_[o])
            for s, r, o in triples
        ]
        existing = set(indexed)
        n_entities = len(entities)
        for _ in range(self.n_epochs):
            order = rng.permutation(len(indexed))
            for position in order:
                subject, relation, obj = indexed[position]
                # Corrupt head or tail uniformly.
                corrupt_subject = rng.random() < 0.5
                for _attempt in range(10):
                    replacement = int(rng.integers(0, n_entities))
                    negative = (
                        (replacement, relation, obj)
                        if corrupt_subject
                        else (subject, relation, replacement)
                    )
                    if negative not in existing:
                        break
                else:
                    continue
                self._sgd_step((subject, relation, obj), negative)
            self._normalize_entities()
        return self

    def _normalize_entities(self) -> None:
        norms = np.linalg.norm(self.entity_vectors_, axis=1, keepdims=True)
        self.entity_vectors_ /= np.maximum(norms, 1e-12)

    def _sgd_step(
        self, positive: Tuple[int, int, int], negative: Tuple[int, int, int]
    ) -> None:
        def residual(triple: Tuple[int, int, int]) -> np.ndarray:
            subject, relation, obj = triple
            return (
                self.entity_vectors_[subject]
                + self.relation_vectors_[relation]
                - self.entity_vectors_[obj]
            )

        positive_residual = residual(positive)
        negative_residual = residual(negative)
        positive_distance = np.linalg.norm(positive_residual)
        negative_distance = np.linalg.norm(negative_residual)
        loss = self.margin + positive_distance - negative_distance
        if loss <= 0:
            return
        # Gradients of the L2 distances.
        grad_positive = positive_residual / max(positive_distance, 1e-12)
        grad_negative = negative_residual / max(negative_distance, 1e-12)
        lr = self.learning_rate
        ps, pr, po = positive
        ns, nr, no = negative
        self.entity_vectors_[ps] -= lr * grad_positive
        self.relation_vectors_[pr] -= lr * grad_positive
        self.entity_vectors_[po] += lr * grad_positive
        self.entity_vectors_[ns] += lr * grad_negative
        self.relation_vectors_[nr] += lr * grad_negative
        self.entity_vectors_[no] -= lr * grad_negative

    def score(self, subject: str, relation: str, obj: str) -> float:
        """Plausibility score (higher = more plausible); unseen ids score low."""
        if self.entity_vectors_ is None:
            raise RuntimeError("model is not fitted")
        subject_index = self.entity_index_.get(subject)
        relation_index = self.relation_index_.get(relation)
        object_index = self.entity_index_.get(obj)
        if subject_index is None or relation_index is None or object_index is None:
            return -10.0
        residual = (
            self.entity_vectors_[subject_index]
            + self.relation_vectors_[relation_index]
            - self.entity_vectors_[object_index]
        )
        return float(-np.linalg.norm(residual))

    def rank_objects(self, subject: str, relation: str, top_k: int = 10) -> List[Tuple[str, float]]:
        """Best-scoring objects for (subject, relation, ?)."""
        if self.entity_vectors_ is None:
            raise RuntimeError("model is not fitted")
        subject_index = self.entity_index_.get(subject)
        relation_index = self.relation_index_.get(relation)
        if subject_index is None or relation_index is None:
            return []
        target = self.entity_vectors_[subject_index] + self.relation_vectors_[relation_index]
        distances = np.linalg.norm(self.entity_vectors_ - target, axis=1)
        order = np.argsort(distances)[:top_k]
        entities = sorted(self.entity_index_, key=lambda e: self.entity_index_[e])
        return [(entities[int(index)], float(-distances[int(index)])) for index in order]
