"""Path Ranking Algorithm (PRA) — NELL's knowledge-fusion workhorse.

PRA predicts whether a relation holds between two entities from the
*relation paths* connecting them: e.g. a candidate ``directed_by`` edge is
supported by the path ``stars -> stars^-1 -> directed_by`` (co-actors'
movies share directors far more often than random pairs).  Path signatures
become binary features of a logistic model trained on known edges vs
corrupted negatives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.query import PathQuery
from repro.ml.logistic import LogisticRegression

PathSignature = Tuple[Tuple[str, int], ...]


@dataclass
class PathRankingModel:
    """Logistic regression over relation-path features for one relation."""

    relation: str
    max_path_length: int = 3
    max_paths_per_pair: int = 60
    n_negatives_per_positive: int = 2
    seed: int = 0
    paths_: List[PathSignature] = field(default_factory=list, init=False)
    _model: Optional[LogisticRegression] = field(default=None, init=False, repr=False)

    def fit(self, graph: KnowledgeGraph) -> "PathRankingModel":
        """Train from the graph's existing edges of the target relation."""
        positives = [
            (triple.subject, str(triple.object))
            for triple in graph.query(predicate=self.relation)
            if isinstance(triple.object, str) and graph.has_entity(triple.object)
        ]
        if not positives:
            raise ValueError(f"graph has no {self.relation!r} edges to learn from")
        rng = np.random.default_rng(self.seed)
        negatives = self._corrupt(graph, positives, rng)
        query = PathQuery(graph, max_length=self.max_path_length)
        raw_features: List[Dict[PathSignature, int]] = []
        labels: List[int] = []
        for subject, obj in positives:
            raw_features.append(self._pair_paths(query, subject, obj))
            labels.append(1)
        for subject, obj in negatives:
            raw_features.append(self._pair_paths(query, subject, obj))
            labels.append(0)
        vocabulary: Dict[PathSignature, int] = {}
        for paths in raw_features:
            for signature in paths:
                if signature not in vocabulary:
                    vocabulary[signature] = len(vocabulary)
        self.paths_ = sorted(vocabulary, key=lambda s: vocabulary[s])
        matrix = np.zeros((len(raw_features), max(len(vocabulary), 1)))
        for row, paths in enumerate(raw_features):
            for signature in paths:
                matrix[row, vocabulary[signature]] = 1.0
        self._vocabulary = vocabulary
        self._model = LogisticRegression(learning_rate=0.8, n_iterations=300, seed=self.seed)
        self._model.fit(matrix, labels)
        self._graph = graph
        return self

    def score(self, subject: str, obj: str) -> float:
        """Probability that (subject, relation, obj) holds."""
        if self._model is None:
            raise RuntimeError("model is not fitted")
        query = PathQuery(self._graph, max_length=self.max_path_length)
        paths = self._pair_paths(query, subject, obj)
        row = np.zeros((1, max(len(self._vocabulary), 1)))
        for signature in paths:
            index = self._vocabulary.get(signature)
            if index is not None:
                row[0, index] = 1.0
        return float(self._model.predict_proba(row)[0, 1])

    def score_pairs(self, pairs: Sequence[Tuple[str, str]]) -> List[float]:
        """Scores for many candidate pairs."""
        return [self.score(subject, obj) for subject, obj in pairs]

    # ------------------------------------------------------------------

    def _pair_paths(
        self, query: PathQuery, subject: str, obj: str
    ) -> Dict[PathSignature, int]:
        """Path signatures between the pair, with the direct edge excluded.

        Excluding the single-hop target relation prevents the model from
        trivially memorizing the edge it is asked to predict.
        """
        signatures: Dict[PathSignature, int] = {}
        for signature in query.relation_paths(subject, obj, max_paths=self.max_paths_per_pair):
            if signature == ((self.relation, 1),):
                continue
            signatures[signature] = signatures.get(signature, 0) + 1
        return signatures

    def _corrupt(
        self,
        graph: KnowledgeGraph,
        positives: Sequence[Tuple[str, str]],
        rng: np.random.Generator,
    ) -> List[Tuple[str, str]]:
        """Negative pairs by corrupting the object side of true edges."""
        objects = sorted({obj for _subject, obj in positives})
        existing = set(positives)
        negatives: List[Tuple[str, str]] = []
        for subject, _obj in positives:
            produced = 0
            attempts = 0
            while produced < self.n_negatives_per_positive and attempts < 20:
                attempts += 1
                candidate = objects[int(rng.integers(0, len(objects)))]
                if (subject, candidate) in existing:
                    continue
                negatives.append((subject, candidate))
                produced += 1
        return negatives
