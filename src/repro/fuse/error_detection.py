"""Embedding-based error detection for knowledge cleaning.

Sec. 5 on link prediction: "another use of it, to detect incorrect
information, has been incorporated into knowledge cleaning techniques"
(the PGE direction [12]).

A subtlety makes the naive version useless: an embedding trained on the
full graph *memorizes* the wrong edges along with the right ones, so they
score as plausible as anything else.  The detector therefore uses a
cross-validation ensemble: the relation's edges are split into folds, one
model is trained per fold with that fold's edges *removed*, and every edge
is scored by the model that never saw it.  An edge that the rest of the
graph's regularities cannot predict ranks low among candidate objects and
gets flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.triple import Triple
from repro.fuse.linkpred import TransEModel


@dataclass(frozen=True)
class SuspectEdge:
    """One flagged triple with its implausibility evidence."""

    triple: Triple
    percentile: float   # rank percentile of the edge among alternatives (low = suspect)


@dataclass
class EmbeddingErrorDetector:
    """Flag implausible entity-to-entity edges of one relation."""

    relation: str
    dim: int = 20
    n_epochs: int = 50
    n_folds: int = 3
    suspicion_percentile: float = 0.2
    seed: int = 0
    _models: List[TransEModel] = field(default_factory=list, init=False, repr=False)
    _fold_of: Dict[Triple, int] = field(default_factory=dict, init=False, repr=False)
    _candidate_objects: List[str] = field(default_factory=list, init=False, repr=False)

    def fit(self, graph: KnowledgeGraph) -> "EmbeddingErrorDetector":
        """Train the held-out ensemble on the (possibly noisy) graph.

        No clean training set exists in practice; the method relies on
        errors being a minority, so each fold model learns the graph's
        true regularities from the *other* folds' edges.
        """
        edges = [
            triple
            for triple in graph.query(predicate=self.relation)
            if isinstance(triple.object, str) and graph.has_entity(triple.object)
        ]
        if not edges:
            raise ValueError(f"graph has no {self.relation!r} entity edges")
        rng = np.random.default_rng(self.seed)
        # Implausibility is judged against the relation's own object
        # population (who else directs?), not against every node — the
        # discrimination that matters is between candidate directors.
        self._candidate_objects = sorted({str(triple.object) for triple in edges})
        order = rng.permutation(len(edges))
        self._fold_of = {
            edges[int(index)]: int(position % self.n_folds)
            for position, index in enumerate(order)
        }
        self._models = []
        for fold in range(self.n_folds):
            pruned = graph.copy()
            for edge, edge_fold in self._fold_of.items():
                if edge_fold == fold:
                    pruned.remove_triple(edge)
            model = TransEModel(dim=self.dim, n_epochs=self.n_epochs, seed=self.seed + fold)
            model.fit(pruned)
            self._models.append(model)
        return self

    def _model_for(self, triple: Triple) -> TransEModel:
        fold = self._fold_of.get(triple, 0)
        return self._models[fold]

    def edge_percentile(self, triple: Triple) -> float:
        """The edge's score percentile among all candidate objects, judged
        by the fold model that did not train on it."""
        if not self._models:
            raise RuntimeError("detector is not fitted")
        model = self._model_for(triple)
        subject_index = model.entity_index_.get(triple.subject)
        relation_index = model.relation_index_.get(self.relation)
        object_index = model.entity_index_.get(str(triple.object))
        if subject_index is None or relation_index is None or object_index is None:
            return 0.0
        target = model.entity_vectors_[subject_index] + model.relation_vectors_[relation_index]
        candidate_indexes = [
            model.entity_index_[candidate]
            for candidate in self._candidate_objects
            if candidate in model.entity_index_
        ]
        candidate_distances = np.linalg.norm(
            model.entity_vectors_[candidate_indexes] - target, axis=1
        )
        edge_distance = np.linalg.norm(model.entity_vectors_[object_index] - target)
        # Fraction of candidates the edge's object beats (higher = plausible).
        return float(np.mean(candidate_distances >= edge_distance))

    def scan(self, graph: KnowledgeGraph) -> List[SuspectEdge]:
        """Score every edge of the relation; return the suspects, worst first."""
        if not self._models:
            raise RuntimeError("detector is not fitted")
        suspects: List[SuspectEdge] = []
        for triple in graph.query(predicate=self.relation):
            if not (isinstance(triple.object, str) and graph.has_entity(triple.object)):
                continue
            percentile = self.edge_percentile(triple)
            if percentile < self.suspicion_percentile:
                suspects.append(SuspectEdge(triple=triple, percentile=percentile))
        suspects.sort(key=lambda suspect: suspect.percentile)
        return suspects

    def evaluate(
        self, graph: KnowledgeGraph, injected_errors: Sequence[Triple]
    ) -> Dict[str, float]:
        """Detection quality given the set of known-injected wrong edges."""
        error_set = set(injected_errors)
        suspects = self.scan(graph)
        flagged = {suspect.triple for suspect in suspects}
        true_positives = len(flagged & error_set)
        precision = true_positives / len(flagged) if flagged else 1.0
        recall = true_positives / len(error_set) if error_set else 1.0
        return {
            "precision": precision,
            "recall": recall,
            "n_flagged": float(len(flagged)),
        }


def inject_edge_errors(
    graph: KnowledgeGraph,
    relation: str,
    n_errors: int,
    seed: int = 0,
) -> List[Triple]:
    """Corrupt ``n_errors`` edges of a relation in place; returns the wrong
    triples added (the originals are removed).  Test/benchmark helper."""
    rng = np.random.default_rng(seed)
    edges = [
        triple
        for triple in graph.query(predicate=relation)
        if isinstance(triple.object, str) and graph.has_entity(triple.object)
    ]
    objects = sorted({str(triple.object) for triple in edges})
    chosen = rng.choice(len(edges), size=min(n_errors, len(edges)), replace=False)
    injected: List[Triple] = []
    for index in chosen:
        original = edges[int(index)]
        for _attempt in range(20):
            wrong = objects[int(rng.integers(0, len(objects)))]
            if wrong != original.object:
                break
        else:
            continue
        graph.remove_triple(original)
        corrupted = Triple(original.subject, relation, wrong)
        graph.add_triple(corrupted)
        injected.append(corrupted)
    return injected
