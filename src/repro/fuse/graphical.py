"""Graphical-model knowledge fusion: extraction errors vs source errors.

"The graphical models are also used to distinguish extraction errors and
source errors" (Sec. 2.4, referring to [17]).  The generative story here:

* each data item (subject, attribute) has one true value;
* a *source* states a value for the item; the statement is correct with
  probability ``accuracy(source)``;
* an *extractor* reads the source; its extraction reflects what the source
  actually states with probability ``precision(extractor)``.

Observations are extractions: (item, value, source, extractor).  EM jointly
estimates source accuracies, extractor precisions, and per-value truth
posteriors.  The key disambiguation signal: when several extractors pull
the *same* wrong value from one source, the source is at fault; when one
extractor disagrees with its peers on the same source, the extractor is.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parallel import pmap
from repro.core.triple import Value
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled

Item = Tuple[str, str]  # (subject, attribute)

#: Sentinel for the "truth is some value nobody extracted" hypothesis.
_OTHER = "__other__"


@dataclass(frozen=True)
class ExtractionObservation:
    """One extraction event."""

    subject: str
    attribute: str
    value: Value
    source: str
    extractor: str


@dataclass(frozen=True)
class FusedBelief:
    """Posterior belief for one (item, value)."""

    subject: str
    attribute: str
    value: Value
    probability: float


def _statement_posterior(
    n_distractors: int,
    precision: Dict[str, float],
    accuracy: Dict[str, float],
    payload: Tuple[str, Dict[Value, List[str]], Dict[Value, float]],
) -> Dict[Value, float]:
    """Posterior over what one source states for one item.

    ``payload`` is ``(source, value -> extractors, truth posterior)``.
    Module-level so process-mode :func:`pmap` can pickle it; one call is
    one independent E-step cell.
    """
    source, value_extractors, truth = payload
    scores: Dict[Value, float] = {}
    for value in value_extractors:
        log_score = 0.0
        for value2, extractor_list in value_extractors.items():
            for extractor in extractor_list:
                p = precision[extractor]
                if value2 == value:
                    log_score += np.log(p)
                else:
                    log_score += np.log((1 - p) / n_distractors)
        if truth:
            a = accuracy[source]
            believed = truth.get(value, 0.0)
            log_score += np.log(
                believed * a + (1.0 - believed) * (1.0 - a) / n_distractors
            )
        scores[value] = log_score
    peak = max(scores.values())
    unnormalized = {v: np.exp(s - peak) for v, s in scores.items()}
    total = sum(unnormalized.values())
    return {v: s / total for v, s in unnormalized.items()}


@dataclass
class GraphicalFusion:
    """EM over the source/extractor two-layer noise model."""

    n_distractors: int = 10
    n_iterations: int = 12
    initial_source_accuracy: float = 0.8
    initial_extractor_precision: float = 0.8
    source_accuracy_: Dict[str, float] = field(default_factory=dict, init=False)
    extractor_precision_: Dict[str, float] = field(default_factory=dict, init=False)

    @profiled("fusion.graphical")
    def fuse(self, observations: Sequence[ExtractionObservation]) -> List[FusedBelief]:
        """Run EM; returns the posterior for every observed (item, value)."""
        if not observations:
            return []
        obs_metrics.count("fusion.graphical.observations", len(observations))
        if obs_lineage.lineage_enabled():
            for obs in observations:
                obs_lineage.record_observation(
                    obs.subject,
                    obs.attribute,
                    obs.value,
                    source=obs.source,
                    extractor=obs.extractor,
                    stage="fuse.graphical.observe",
                )
        sources = sorted({obs.source for obs in observations})
        extractors = sorted({obs.extractor for obs in observations})
        accuracy = {source: self.initial_source_accuracy for source in sources}
        precision = {extractor: self.initial_extractor_precision for extractor in extractors}

        # Group observations: item -> source -> value -> [extractors].
        by_item: Dict[Item, Dict[str, Dict[Value, List[str]]]] = defaultdict(
            lambda: defaultdict(lambda: defaultdict(list))
        )
        for obs in observations:
            by_item[(obs.subject, obs.attribute)][obs.source][obs.value].append(obs.extractor)

        truth_posterior: Dict[Item, Dict[Value, float]] = {}
        statement_posterior: Dict[Tuple[Item, str], Dict[Value, float]] = {}
        statement_cells = [
            (item, source)
            for item, per_source in by_item.items()
            for source in per_source
        ]
        for _ in range(self.n_iterations):
            # ---- E-step part 1: what does each source actually state? ----
            # Evidence combines (a) extractor readings weighted by their
            # precision and (b) a prior from the current truth posterior:
            # an accurate source probably states the true value, so a lone
            # garbled reading that contradicts the cross-source consensus
            # is attributed to the extractor, not the source.  This
            # coupling is what lets the model "distinguish extraction
            # errors and source errors" (Sec. 2.4).  Cells are independent
            # given the current parameters, so they fan out through pmap;
            # zip against ``statement_cells`` keeps key order fixed.
            cell_posteriors = pmap(
                partial(_statement_posterior, self.n_distractors, precision, accuracy),
                [
                    (source, by_item[item][source], truth_posterior.get(item, {}))
                    for item, source in statement_cells
                ],
            )
            statement_posterior = dict(zip(statement_cells, cell_posteriors))
            # ---- E-step part 2: truth posterior per item over sources. ----
            # Candidates are the observed values PLUS the hypothesis that
            # the truth is some never-extracted value ("other").  Without
            # it, a lone uncorroborated claim would get posterior 1.0 by
            # normalization — exactly the miscalibration KV's 90% bar is
            # supposed to prevent.
            truth_posterior = {}
            for item, per_source in by_item.items():
                candidates = sorted(
                    {value for values in per_source.values() for value in values}, key=str
                )
                scores = {}
                for candidate in candidates:
                    log_score = 0.0
                    for source in per_source:
                        statement = statement_posterior[(item, source)]
                        # Probability mass of the source stating the candidate.
                        stated = statement.get(candidate, 0.0)
                        a = accuracy[source]
                        log_score += np.log(
                            stated * a + (1.0 - stated) * (1.0 - a) / self.n_distractors
                        )
                    scores[candidate] = log_score
                # The "other" hypothesis: every source's statement is wrong;
                # multiplied by n_distractors ways of being other.
                other_score = float(np.log(self.n_distractors))
                for source in per_source:
                    a = accuracy[source]
                    other_score += np.log((1.0 - a) / self.n_distractors)
                scores[_OTHER] = other_score
                peak = max(scores.values())
                unnormalized = {v: np.exp(s - peak) for v, s in scores.items()}
                total = sum(unnormalized.values())
                truth_posterior[item] = {v: s / total for v, s in unnormalized.items()}
            # ---- M-step: re-estimate source accuracy & extractor precision.
            source_totals: Dict[str, float] = defaultdict(float)
            source_counts: Dict[str, float] = defaultdict(float)
            extractor_totals: Dict[str, float] = defaultdict(float)
            extractor_counts: Dict[str, float] = defaultdict(float)
            for item, per_source in by_item.items():
                truth = truth_posterior[item]
                for source, value_extractors in per_source.items():
                    statement = statement_posterior[(item, source)]
                    # Expected correctness of the source's statement.
                    expected_correct = sum(
                        statement.get(value, 0.0) * truth.get(value, 0.0)
                        for value in statement
                    )
                    source_totals[source] += expected_correct
                    source_counts[source] += 1.0
                    for value, extractor_list in value_extractors.items():
                        faithful = statement.get(value, 0.0)
                        for extractor in extractor_list:
                            extractor_totals[extractor] += faithful
                            extractor_counts[extractor] += 1.0
            for source in sources:
                if source_counts[source]:
                    accuracy[source] = float(
                        np.clip(source_totals[source] / source_counts[source], 0.05, 0.99)
                    )
            for extractor in extractors:
                if extractor_counts[extractor]:
                    precision[extractor] = float(
                        np.clip(extractor_totals[extractor] / extractor_counts[extractor], 0.05, 0.99)
                    )
        self.source_accuracy_ = dict(accuracy)
        self.extractor_precision_ = dict(precision)
        beliefs: List[FusedBelief] = []
        n_accepted = n_rejected = 0
        record_lineage = obs_lineage.lineage_enabled()
        for (subject, attribute), posterior in sorted(truth_posterior.items()):
            observed = {v: p for v, p in posterior.items() if v != _OTHER}
            winner = (
                max(observed.items(), key=lambda kv: (kv[1], str(kv[0])))[0]
                if observed
                else None
            )
            per_source = by_item[(subject, attribute)]
            for value, probability in sorted(observed.items(), key=lambda kv: str(kv[0])):
                beliefs.append(
                    FusedBelief(
                        subject=subject,
                        attribute=attribute,
                        value=value,
                        probability=float(probability),
                    )
                )
                accepted = value == winner
                if accepted:
                    n_accepted += 1
                else:
                    n_rejected += 1
                if record_lineage:
                    item_extractors = {
                        extractor
                        for value_extractors in per_source.values()
                        for extractor_list in value_extractors.values()
                        for extractor in extractor_list
                    }
                    obs_lineage.record_fusion(
                        subject,
                        attribute,
                        value,
                        verdict="accepted" if accepted else "rejected",
                        confidence=float(probability),
                        source_trust={s: accuracy[s] for s in per_source},
                        extractor_trust={e: precision[e] for e in sorted(item_extractors)},
                        stage="fusion.graphical",
                    )
        obs_metrics.count("fusion.graphical.accepted", n_accepted)
        obs_metrics.count("fusion.graphical.rejected", n_rejected)
        return beliefs

    def high_confidence(
        self, beliefs: Sequence[FusedBelief], threshold: float = 0.9
    ) -> List[FusedBelief]:
        """Beliefs above the KV-style confidence bar (default 90%)."""
        return [belief for belief in beliefs if belief.probability >= threshold]
