"""Knowledge-Based Trust: scoring web sources by the truth of their claims.

"The graphical models are also used to distinguish extraction errors and
source errors, leading to web source trustworthiness evaluation, as in
Knowledge-Based Trust." (Sec. 2.4, referring to [18])

KBT's insight over naive source scoring: a source must not be blamed for
*extractor* mistakes.  So trust is the graphical model's source-accuracy
posterior, not the raw fraction of correct extractions attributed to the
source.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.fuse.graphical import ExtractionObservation, GraphicalFusion
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class SourceTrust:
    """One source's trust estimates."""

    source: str
    kbt_score: float
    naive_score: float
    n_extractions: int


@dataclass
class KnowledgeBasedTrust:
    """Compute KBT scores from extraction observations."""

    fusion: GraphicalFusion = field(default_factory=GraphicalFusion)

    def evaluate_sources(
        self, observations: Sequence[ExtractionObservation]
    ) -> List[SourceTrust]:
        """Trust per source: KBT (extraction-error-corrected) vs naive.

        The naive score is the average truth posterior of the source's raw
        extractions — it punishes sources crawled by bad extractors; the
        KBT score is the model's source-accuracy estimate, which does not.
        """
        beliefs = self.fusion.fuse(observations)
        belief_index: Dict[tuple, float] = {
            (belief.subject, belief.attribute, belief.value): belief.probability
            for belief in beliefs
        }
        per_source_total: Dict[str, float] = {}
        per_source_count: Dict[str, int] = {}
        for obs in observations:
            key = (obs.subject, obs.attribute, obs.value)
            probability = belief_index.get(key, 0.0)
            per_source_total[obs.source] = per_source_total.get(obs.source, 0.0) + probability
            per_source_count[obs.source] = per_source_count.get(obs.source, 0) + 1
        results = []
        for source in sorted(per_source_count):
            results.append(
                SourceTrust(
                    source=source,
                    kbt_score=self.fusion.source_accuracy_.get(source, 0.0),
                    naive_score=per_source_total[source] / per_source_count[source],
                    n_extractions=per_source_count[source],
                )
            )
        obs_metrics.count("kbt.sources_evaluated", len(results))
        for trust in results:
            # Trust scores land as gauges so quality snapshots and the
            # Prometheus export carry the source-trust distribution.
            obs_metrics.gauge(f"kbt.trust.{trust.source}", trust.kbt_score)
        return sorted(results, key=lambda trust: -trust.kbt_score)

    def rank_sources(self, observations: Sequence[ExtractionObservation]) -> List[str]:
        """Sources ordered by decreasing KBT score."""
        return [trust.source for trust in self.evaluate_sources(observations)]
