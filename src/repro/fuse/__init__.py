"""Web-scale knowledge fusion (Sec. 2.4).

"Various knowledge fusion techniques are proposed to predict correctness of
the extractions, such as PRA in NELL, deep learning based link prediction
in KV, and graphical models in KV. The graphical models are also used to
distinguish extraction errors and source errors, leading to web source
trustworthiness evaluation, as in Knowledge-Based Trust."

* :mod:`repro.fuse.pra` — Path Ranking Algorithm link prediction;
* :mod:`repro.fuse.linkpred` — translational-embedding (TransE-style) link
  prediction;
* :mod:`repro.fuse.graphical` — EM graphical model separating extraction
  errors from source errors;
* :mod:`repro.fuse.kbt` — Knowledge-Based Trust source scoring on top of
  the graphical model.
"""

from repro.fuse.pra import PathRankingModel
from repro.fuse.linkpred import TransEModel
from repro.fuse.graphical import ExtractionObservation, GraphicalFusion
from repro.fuse.kbt import KnowledgeBasedTrust, SourceTrust
from repro.fuse.error_detection import EmbeddingErrorDetector, inject_edge_errors

__all__ = [
    "PathRankingModel",
    "TransEModel",
    "ExtractionObservation",
    "GraphicalFusion",
    "KnowledgeBasedTrust",
    "SourceTrust",
    "EmbeddingErrorDetector",
    "inject_edge_errors",
]
