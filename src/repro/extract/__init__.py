"""Knowledge extraction from the (synthetic) web — Sec. 2.3 and 2.4.

Implements the three progressively-more-scalable technique families for
semi-structured websites plus the remaining web content types of Knowledge
Vault:

* :mod:`repro.extract.dom` — a minimal HTML/DOM substrate with XPath-like
  addressing (websites are "populated from underlying databases using some
  templates", and every extractor below keys on that regularity);
* :mod:`repro.extract.wrapper` — wrapper induction (per-site annotations →
  XPath rules, Kushmerick-style);
* :mod:`repro.extract.distant` — distantly supervised ClosedIE
  (Ceres-style: seed KG + page structure → per-site training data → model);
* :mod:`repro.extract.openie` — OpenIE over semi-structured pages
  (OpenCeres-style: extract (attribute, value) pairs for unknown
  attributes);
* :mod:`repro.extract.zeroshot` — GNN-based zero-shot extraction
  (ZeroShotCeres-style: one model across sites and domains);
* :mod:`repro.extract.textie` — text-pattern relation extraction
  (NELL/Knowledge Vault text channel);
* :mod:`repro.extract.webtables` — web-table extraction;
* :mod:`repro.extract.annotations` — schema.org-annotation harvesting.
"""

from repro.extract.dom import DomNode, element, parse_html, render_html, text_node
from repro.extract.wrapper import InducedWrapper, WrapperInducer
from repro.extract.distant import CeresExtractor, DistantSupervisor
from repro.extract.openie import OpenIEExtractor
from repro.extract.zeroshot import ZeroShotExtractor
from repro.extract.textie import TextPatternExtractor
from repro.extract.webtables import WebTableExtractor
from repro.extract.annotations import AnnotationExtractor

__all__ = [
    "DomNode",
    "element",
    "parse_html",
    "render_html",
    "text_node",
    "InducedWrapper",
    "WrapperInducer",
    "CeresExtractor",
    "DistantSupervisor",
    "OpenIEExtractor",
    "ZeroShotExtractor",
    "TextPatternExtractor",
    "WebTableExtractor",
    "AnnotationExtractor",
]
