"""Distantly supervised ClosedIE from semi-structured pages (Ceres-style).

"Distantly supervised extraction compares knowledge in existing KGs and
data on the semi-structured websites, and generates training data according
to the overlaps. ... This class of methods trains a model per website, but
the whole process is automatic and thus can scale up to a large number of
websites." (Sec. 2.3)

Pipeline here, mirroring Ceres [32]:

1. **Topic identification** — match the page's heading against seed-KG
   entity names;
2. **Distant annotation** — text nodes equal to a seed fact's value become
   positives for that attribute, everything else negatives (noisy on
   purpose: coincidental matches produce label noise, as in the original);
3. **Per-site model** — multinomial logistic regression over structural +
   local-context features of each text node;
4. **Extraction** — classify nodes of unseen pages, emit the best node per
   attribute above a confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.parallel import pmap
from repro.core.triple import AttributedTriple, Provenance, Triple
from repro.extract.dom import DomNode, preceding_text
from repro.ml.logistic import LogisticRegression
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled

NONE_LABEL = "none"


@dataclass
class SeedKnowledge:
    """Seed facts keyed by topic surface name (the 'existing KG' side)."""

    facts: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @staticmethod
    def from_graph(graph: KnowledgeGraph, attributes: Sequence[str]) -> "SeedKnowledge":
        """Project a KG into name-keyed string facts for page matching."""
        seed = SeedKnowledge()
        for entity in graph.entities():
            record: Dict[str, str] = {}
            for attribute in attributes:
                objects = graph.objects(entity.entity_id, attribute)
                if not objects:
                    continue
                value = objects[0]
                if isinstance(value, str) and graph.has_entity(value):
                    value = graph.entity(value).name
                record[attribute] = str(value)
            if record:
                seed.facts[entity.name.lower()] = record
        return seed

    def lookup(self, topic_name: str) -> Optional[Dict[str, str]]:
        """Facts for a topic name (case-insensitive exact match)."""
        return self.facts.get(topic_name.lower())


def page_topic(page_root: DomNode) -> Optional[str]:
    """The page's topic string: first h1 text (falling back to <title>)."""
    for tag in ("h1", "title"):
        headings = page_root.find_by_tag(tag)
        if headings:
            text = headings[0].text_content()
            if text:
                # Site titles often suffix the site name: "Topic - site".
                return text.split(" - ")[0].strip()
    return None


def node_feature_strings(node: DomNode) -> List[str]:
    """Context features of a candidate value node.

    Deliberately label-text centric: the strongest signal on templated
    pages is the preceding key cell ("Director:"), exactly the commonality
    Ceres exploits.
    """
    features: List[str] = []
    parent = node.parent
    features.append(f"parent={parent.tag if parent is not None else 'none'}")
    grandparent = parent.parent if parent is not None else None
    features.append(f"grand={grandparent.tag if grandparent is not None else 'none'}")
    # Tag path without positional indexes: the template signature.
    steps = []
    walker = node if not node.is_text else parent
    while walker is not None:
        steps.append(walker.tag or "#text")
        walker = walker.parent
    features.append("tagpath=" + "/".join(reversed(steps)))
    features.append(f"depth={min(node.depth(), 10)}")
    previous = preceding_text(node)
    if previous is not None:
        features.append(f"prev={previous.lower().rstrip(':').strip()}")
    text = node.text if node.is_text else node.text_content()
    features.append(f"numeric={any(char.isdigit() for char in text)}")
    features.append(f"nwords={min(len(text.split()), 6)}")
    return features


@dataclass
class DistantSupervisor:
    """Generates (features, label) training data by KG/page overlap."""

    seed: SeedKnowledge

    def annotate_page(
        self, page_root: DomNode
    ) -> Optional[List[Tuple[DomNode, str]]]:
        """Label every text node of one page, or None if the topic is unknown.

        Only pages whose topic matches the seed KG contribute training data
        (the overlap requirement of distant supervision).
        """
        topic = page_topic(page_root)
        if topic is None:
            return None
        facts = self.seed.lookup(topic)
        if facts is None:
            return None
        value_to_attribute = {value.lower(): attribute for attribute, value in facts.items()}
        labeled: List[Tuple[DomNode, str]] = []
        for node in page_root.text_nodes():
            label = value_to_attribute.get(node.text.lower(), NONE_LABEL)
            if node.text.lower() == topic.lower():
                label = NONE_LABEL  # topic string is not an attribute value
            labeled.append((node, label))
        return labeled

    def training_data(
        self, pages: Sequence[DomNode]
    ) -> Tuple[List[List[str]], List[str], int]:
        """Features and labels over all matchable pages.

        Returns ``(feature_lists, labels, n_annotated_pages)``.
        """
        # Pages are labeled independently, so distant annotation fans out
        # through pmap; pmap preserves page order, keeping the training
        # rows (and hence the fitted model) identical in every mode.
        annotated_pages = pmap(self.annotate_page, pages)
        feature_lists: List[List[str]] = []
        labels: List[str] = []
        n_annotated = 0
        for annotated in annotated_pages:
            if annotated is None:
                continue
            n_annotated += 1
            for node, label in annotated:
                feature_lists.append(node_feature_strings(node))
                labels.append(label)
        return feature_lists, labels, n_annotated


class _FeatureVocabulary:
    """String features -> dense indicator vectors."""

    def __init__(self):
        self._index: Dict[str, int] = {}

    def fit(self, feature_lists: Sequence[Sequence[str]]) -> None:
        for features in feature_lists:
            for feature in features:
                if feature not in self._index:
                    self._index[feature] = len(self._index)

    def transform(self, feature_lists: Sequence[Sequence[str]]) -> np.ndarray:
        matrix = np.zeros((len(feature_lists), max(len(self._index), 1)))
        for row, features in enumerate(feature_lists):
            for feature in features:
                column = self._index.get(feature)
                if column is not None:
                    matrix[row, column] = 1.0
        return matrix

    def __len__(self) -> int:
        return len(self._index)


@dataclass
class CeresExtractor:
    """A per-site ClosedIE extractor trained by distant supervision."""

    site_name: str
    confidence_threshold: float = 0.5
    seed: int = 0
    _vocabulary: _FeatureVocabulary = field(default_factory=_FeatureVocabulary, init=False, repr=False)
    _model: Optional[LogisticRegression] = field(default=None, init=False, repr=False)
    _labels: List[str] = field(default_factory=list, init=False)
    n_training_pages_: int = field(default=0, init=False)

    @profiled("extract.distant.fit")
    def fit(self, pages: Sequence[DomNode], supervisor: DistantSupervisor) -> "CeresExtractor":
        """Train the per-site model from distant labels."""
        feature_lists, labels, n_annotated = supervisor.training_data(pages)
        obs_metrics.count("extract.distant.pages_annotated", n_annotated)
        obs_metrics.count("extract.distant.training_nodes", len(labels))
        if n_annotated == 0:
            raise ValueError(
                f"no page of {self.site_name!r} overlaps the seed KG; "
                "distant supervision is impossible"
            )
        self.n_training_pages_ = n_annotated
        self._labels = sorted(set(labels) | {NONE_LABEL})
        label_index = {label: index for index, label in enumerate(self._labels)}
        self._vocabulary = _FeatureVocabulary()
        self._vocabulary.fit(feature_lists)
        matrix = self._vocabulary.transform(feature_lists)
        targets = np.array([label_index[label] for label in labels])
        self._model = LogisticRegression(
            learning_rate=0.8, n_iterations=250, l2=1e-4, seed=self.seed
        )
        self._model.fit(matrix, targets)
        return self

    @profiled("extract.distant.extract")
    def extract(self, page_root: DomNode) -> Dict[str, Tuple[str, float]]:
        """Extract attribute -> (value_text, confidence) from one page."""
        if self._model is None:
            raise RuntimeError("extractor is not fitted")
        nodes = list(page_root.text_nodes())
        if not nodes:
            return {}
        feature_lists = pmap(node_feature_strings, nodes)
        probabilities = self._model.predict_proba(self._vocabulary.transform(feature_lists))
        best: Dict[str, Tuple[str, float]] = {}
        for node, row in zip(nodes, probabilities):
            for label_position, label in enumerate(self._labels):
                if label == NONE_LABEL:
                    continue
                confidence = float(row[label_position])
                if confidence < self.confidence_threshold:
                    continue
                current = best.get(label)
                if current is None or confidence > current[1]:
                    best[label] = (node.text, confidence)
        return best

    def extract_triples(self, page_root: DomNode) -> List[AttributedTriple]:
        """Extraction as provenance-carrying triples for downstream fusion."""
        topic = page_topic(page_root)
        if topic is None:
            return []
        triples = []
        extracted = self.extract(page_root)
        obs_metrics.count("extract.distant.values", len(extracted))
        for attribute, (value, confidence) in sorted(extracted.items()):
            triples.append(
                AttributedTriple(
                    Triple(topic, attribute, value),
                    Provenance(source=self.site_name, extractor="ceres", confidence=confidence),
                )
            )
        return triples
