"""HTML-annotation (schema.org microdata) harvesting — a KV channel.

The easiest of the four Knowledge Vault content types (Sec. 2.4): site
owners label values explicitly with ``itemprop`` attributes, so extraction
is a vocabulary mapping.  Quality is bounded by annotation mistakes on the
pages themselves, which is why even this channel feeds into fusion rather
than straight into the KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.triple import AttributedTriple, Provenance, Triple
from repro.extract.dom import DomNode

#: Default microdata-vocabulary -> canonical-attribute mapping.
DEFAULT_PROP_MAP: Dict[str, str] = {
    "director": "directed_by",
    "datePublished": "release_year",
    "genre": "genre",
    "birthDate": "birth_year",
    "birthPlace": "birth_place",
    "duration": "runtime",
}


@dataclass
class AnnotationExtractor:
    """Reads itemprop-annotated values off a page."""

    prop_map: Dict[str, str] = field(default_factory=lambda: dict(DEFAULT_PROP_MAP))
    confidence: float = 0.9

    def extract(self, page_root: DomNode, source: str = "html_annotations") -> List[AttributedTriple]:
        """Emit one triple per mapped itemprop value on the page."""
        topic: Optional[str] = None
        pairs: List[Dict[str, str]] = []
        for node in page_root.elements():
            prop = node.attributes.get("itemprop")
            if prop is None:
                continue
            text = node.text_content()
            if not text:
                continue
            if prop == "name" and topic is None:
                topic = text
                continue
            attribute = self.prop_map.get(prop)
            if attribute is not None:
                pairs.append({"attribute": attribute, "value": text})
        if topic is None:
            return []
        triples = []
        for pair in pairs:
            triples.append(
                AttributedTriple(
                    Triple(topic, pair["attribute"], pair["value"]),
                    Provenance(
                        source=source, extractor="schema_org", confidence=self.confidence
                    ),
                )
            )
        return triples
