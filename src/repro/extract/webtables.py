"""Web-table extraction (WebTables lineage) — a Knowledge Vault channel.

Web tables are "a special form of semi-structured data" (Sec. 2.4,
footnote).  The extractor aligns table columns to KG attributes by *value
overlap with seed knowledge* (distant schema alignment): a column whose
cells frequently equal the seed KG's values for some attribute, for the
entities named in the table's subject column, is mapped to that attribute.
Rows about entities the seed KG does not know then contribute new triples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.triple import AttributedTriple, Provenance, Triple
from repro.datagen.webextras import WebTable
from repro.extract.distant import SeedKnowledge


@dataclass
class ColumnAlignment:
    """A column mapped to a canonical attribute with its evidence."""

    column_index: int
    attribute: str
    overlap: float


@dataclass
class WebTableExtractor:
    """Seed-KG-driven table interpretation."""

    min_overlap: float = 0.5
    subject_column: int = 0

    def align_columns(self, table: WebTable, seed: SeedKnowledge) -> List[ColumnAlignment]:
        """Map non-subject columns to attributes by seed-value overlap."""
        alignments: List[ColumnAlignment] = []
        n_columns = len(table.header)
        for column in range(n_columns):
            if column == self.subject_column:
                continue
            matches: Dict[str, int] = {}
            comparable = 0
            for row in table.rows:
                subject_text = row[self.subject_column]
                facts = seed.lookup(subject_text)
                if facts is None:
                    continue
                comparable += 1
                cell = row[column].lower()
                for attribute, value in facts.items():
                    if value.lower() == cell:
                        matches[attribute] = matches.get(attribute, 0) + 1
            if comparable == 0 or not matches:
                continue
            attribute, count = max(matches.items(), key=lambda item: item[1])
            overlap = count / comparable
            if overlap >= self.min_overlap:
                alignments.append(
                    ColumnAlignment(column_index=column, attribute=attribute, overlap=overlap)
                )
        return alignments

    def extract(
        self, table: WebTable, seed: SeedKnowledge, source: str = "web_tables"
    ) -> List[AttributedTriple]:
        """Emit triples for every row through the aligned columns."""
        alignments = self.align_columns(table, seed)
        triples: List[AttributedTriple] = []
        for row in table.rows:
            subject_text = row[self.subject_column]
            if not subject_text:
                continue
            for alignment in alignments:
                value = row[alignment.column_index]
                if not value:
                    continue
                triples.append(
                    AttributedTriple(
                        Triple(subject_text, alignment.attribute, value),
                        Provenance(
                            source=f"{source}:{table.table_id}",
                            extractor="web_table",
                            confidence=alignment.overlap,
                        ),
                    )
                )
        return triples
