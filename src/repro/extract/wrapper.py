"""Wrapper induction (Kushmerick 1997 lineage) — Sec. 2.3.

"Wrapper induction takes manual annotations on a few semi-structured
webpages from the same website and induces the extraction patterns
expressed in XPaths that can apply to the whole website. ... wrapper
induction can normally obtain high extraction quality (over 95%), but it
still requires annotations on every website so is not *truly* web-scale."

The inducer takes per-page annotations mapping attributes to DOM nodes and
generalizes them into per-attribute absolute paths, keeping every observed
path ranked by support (template drift produces minority paths).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.triple import AttributedTriple, Provenance, Triple
from repro.extract.dom import DomNode, preceding_text, resolve_path
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled


def _normalize_label(text: Optional[str]) -> Optional[str]:
    if text is None:
        return None
    return text.strip().rstrip(":").strip().lower()


@dataclass
class InducedWrapper:
    """Per-attribute ranked XPath rules for one website.

    Each attribute carries ranked absolute paths plus the expected *left
    landmark* (the label text preceding the value, e.g. ``"Director"``) —
    the HLRT-style delimiter that makes rules robust to row shifts when a
    page omits optional fields.
    """

    site_name: str
    rules: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    landmarks: Dict[str, str] = field(default_factory=dict)

    @profiled("extract.wrapper.extract")
    def extract(self, page_root: DomNode) -> Dict[str, str]:
        """Apply the rules to a page; returns attribute -> value text.

        Rules are tried in support order; a resolved node is accepted only
        when its preceding label matches the learned landmark (when one was
        learned).  Missing fields simply produce no output.
        """
        values: Dict[str, str] = {}
        for attribute, ranked_paths in self.rules.items():
            expected_landmark = self.landmarks.get(attribute)
            for path, _support in ranked_paths:
                node = resolve_path(page_root, path)
                if node is None:
                    continue
                text = node.text_content() if not node.is_text else node.text
                if not text:
                    continue
                if expected_landmark is not None:
                    observed = _normalize_label(preceding_text(node))
                    if observed != expected_landmark:
                        continue
                values[attribute] = text
                break
            else:
                # No path verified (the page omitted optional fields and
                # rows shifted): fall back to locating the landmark itself,
                # HLRT-style, and taking the text that follows it.
                if expected_landmark is not None:
                    landmark_value = self._value_after_landmark(
                        page_root, expected_landmark
                    )
                    if landmark_value:
                        values[attribute] = landmark_value
        obs_metrics.count("extract.wrapper.values", len(values))
        return values

    def extract_triples(self, page_root: DomNode, topic: str) -> List[AttributedTriple]:
        """Extraction as provenance-carrying triples (mirrors Ceres).

        ``topic`` is the page's subject; every triple carries the site as
        source and ``"wrapper"`` as extractor identity, which is what the
        lineage ledger records when the triples land in a graph.
        """
        return [
            AttributedTriple(
                Triple(topic, attribute, value),
                Provenance(source=self.site_name, extractor="wrapper"),
            )
            for attribute, value in sorted(self.extract(page_root).items())
        ]

    @staticmethod
    def _value_after_landmark(page_root: DomNode, landmark: str) -> Optional[str]:
        previous: Optional[str] = None
        for node in page_root.text_nodes():
            if previous is not None and _normalize_label(previous) == landmark:
                return node.text
            previous = node.text
        return None

    def attributes(self) -> List[str]:
        """Attributes this wrapper can extract."""
        return sorted(self.rules)


@dataclass
class WrapperInducer:
    """Induce an :class:`InducedWrapper` from annotated pages.

    ``min_support`` drops accidental paths seen on fewer pages than the
    threshold (with one annotated page everything has support 1, matching
    the classic single-example induction setting).
    """

    site_name: str
    min_support: int = 1

    @profiled("extract.wrapper.induce")
    def induce(
        self, annotated_pages: Sequence[Tuple[DomNode, Dict[str, DomNode]]]
    ) -> InducedWrapper:
        """Generalize annotations into ranked per-attribute paths.

        Each item of ``annotated_pages`` is ``(page_root, annotations)``
        where annotations map attribute name -> the DOM node holding the
        value on that page.
        """
        if not annotated_pages:
            raise ValueError("wrapper induction needs at least one annotated page")
        path_counts: Dict[str, Counter] = defaultdict(Counter)
        landmark_counts: Dict[str, Counter] = defaultdict(Counter)
        for page_root, annotations in annotated_pages:
            for attribute, node in annotations.items():
                if node.root() is not page_root:
                    raise ValueError(
                        f"annotation node for {attribute!r} is not in the given page"
                    )
                path_counts[attribute][node.absolute_path()] += 1
                landmark = _normalize_label(preceding_text(node))
                if landmark:
                    landmark_counts[attribute][landmark] += 1
        wrapper = InducedWrapper(site_name=self.site_name)
        for attribute, counts in path_counts.items():
            ranked = [
                (path, support)
                for path, support in counts.most_common()
                if support >= self.min_support
            ]
            if ranked:
                wrapper.rules[attribute] = ranked
                if landmark_counts[attribute]:
                    wrapper.landmarks[attribute] = landmark_counts[attribute].most_common(1)[0][0]
        return wrapper


def annotate_by_truth(
    page_root: DomNode, truth: Dict[str, str]
) -> Dict[str, DomNode]:
    """Simulate a human annotator: locate each true value's text node.

    For every (attribute, value) in ``truth``, finds the first text node
    whose content equals the value.  This stands in for the "manual
    annotations on a few semi-structured webpages" the technique needs; the
    cost of this call is what the manual-work ledger meters.
    """
    annotations: Dict[str, DomNode] = {}
    text_nodes = list(page_root.text_nodes())
    for attribute, value in truth.items():
        for node in text_nodes:
            if node.text == value:
                annotations[attribute] = node
                break
    return annotations
