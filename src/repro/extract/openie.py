"""OpenIE over semi-structured pages (OpenCeres-style) — Sec. 2.3.

"OpenCeres further extends this method to annotate (attribute, value)
pairs, allowing extracting knowledge for unknown attributes (thus OpenIE)."

The extractor detects *repeated key-value layout units* without any seed
vocabulary: runs of sibling elements rendering two text pieces each (table
rows, dt/dd runs, key/value span rows).  Everything that looks like a pair
is emitted — including navigation widgets and social-sharing chrome — which
is precisely why "the quality has not been satisfactory for production"
(Sec. 5): the volume goes up, the accuracy goes down, and Fig. 3 shows the
gap.

When seed pairs from a ClosedIE pass are supplied, layout units that
co-occur with seed-confirmed pairs get boosted confidence (the OpenCeres
trick of anchoring open extraction on closed annotations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.extract.dom import DomNode
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class OpenPair:
    """An open (attribute_text, value_text) extraction with confidence."""

    attribute: str
    value: str
    confidence: float


def _two_text_unit(node: DomNode) -> Optional[Tuple[str, str]]:
    """If the element renders exactly two text pieces, return them."""
    texts = [text.text for text in node.text_nodes()]
    if len(texts) != 2:
        return None
    key = texts[0].strip().rstrip(":").strip()
    value = texts[1].strip()
    if not key or not value:
        return None
    return key, value


def _dl_pairs(parent: DomNode) -> List[Tuple[str, str]]:
    """Pair consecutive dt/dd children of a definition list."""
    pairs: List[Tuple[str, str]] = []
    pending_key: Optional[str] = None
    for child in parent.children:
        if child.tag == "dt":
            pending_key = child.text_content().rstrip(":").strip()
        elif child.tag == "dd" and pending_key:
            value = child.text_content()
            if value:
                pairs.append((pending_key, value))
            pending_key = None
    return pairs


@dataclass
class OpenIEExtractor:
    """Seedless key-value pair extraction from layout regularity."""

    min_repetition: int = 2
    base_confidence: float = 0.6
    seed_boost: float = 0.3

    def extract(
        self,
        page_root: DomNode,
        seed_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    ) -> List[OpenPair]:
        """Extract open pairs from one page.

        ``seed_pairs`` (attribute, value) from a ClosedIE pass raise the
        confidence of units sharing a container with a confirmed pair.
        """
        seeds: Set[Tuple[str, str]] = {
            (key.lower(), value.lower()) for key, value in (seed_pairs or [])
        }
        results: List[OpenPair] = []
        for parent in page_root.elements():
            units: List[Tuple[str, str]] = []
            if parent.tag == "dl":
                units = _dl_pairs(parent)
            else:
                child_units = []
                for child in parent.children:
                    if child.is_text:
                        continue
                    unit = _two_text_unit(child)
                    if unit is not None:
                        child_units.append(unit)
                # Repetition of sibling units is the template signature.
                if len(child_units) >= self.min_repetition:
                    units = child_units
            if len(units) < self.min_repetition:
                continue
            container_has_seed = any(
                (key.lower(), value.lower()) in seeds for key, value in units
            )
            repetition_bonus = min(len(units), 6) / 30.0
            for key, value in units:
                confidence = self.base_confidence + repetition_bonus
                if container_has_seed:
                    confidence += self.seed_boost
                results.append(
                    OpenPair(attribute=key, value=value, confidence=min(confidence, 0.99))
                )
        deduplicated = _deduplicate(results)
        obs_metrics.count("extract.openie.pairs", len(deduplicated))
        return deduplicated


def _deduplicate(pairs: List[OpenPair]) -> List[OpenPair]:
    best: Dict[Tuple[str, str], OpenPair] = {}
    for pair in pairs:
        key = (pair.attribute.lower(), pair.value.lower())
        current = best.get(key)
        if current is None or pair.confidence > current.confidence:
            best[key] = pair
    return sorted(best.values(), key=lambda pair: (-pair.confidence, pair.attribute, pair.value))
