"""A minimal DOM with XPath-like addressing.

Semi-structured websites "display information in key-value pairs at
relatively consistent locations across the pages" (Sec. 2.3); every
extractor in this subpackage operates on the tree structure modeled here.
The module provides:

* :class:`DomNode` — an element/text tree with parents, attributes, and
  preorder traversal;
* absolute paths of the form ``/html[1]/body[1]/div[2]/span[1]`` (the
  wrapper-induction rule language) with :meth:`DomNode.absolute_path` and
  :func:`resolve_path`;
* a forgiving HTML parser built on :mod:`html.parser`;
* structural feature extraction for the GNN-based zero-shot extractor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html.parser import HTMLParser
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple


class DomNode:
    """One node of the DOM: an element (with tag) or a text node."""

    def __init__(
        self,
        tag: Optional[str] = None,
        attributes: Optional[Dict[str, str]] = None,
        text: str = "",
    ):
        if tag is None and not text:
            raise ValueError("a DomNode is either an element (tag) or a text node (text)")
        self.tag = tag
        self.attributes: Dict[str, str] = dict(attributes or {})
        self.text = text
        self.children: List["DomNode"] = []
        self.parent: Optional["DomNode"] = None

    # ------------------------------------------------------------------
    # construction

    @property
    def is_text(self) -> bool:
        """True for text nodes."""
        return self.tag is None

    def append(self, child: "DomNode") -> "DomNode":
        """Attach a child; returns the child for chaining."""
        if self.is_text:
            raise ValueError("text nodes cannot have children")
        child.parent = self
        self.children.append(child)
        return child

    # ------------------------------------------------------------------
    # traversal

    def iter(self) -> Iterator["DomNode"]:
        """Preorder traversal including self."""
        yield self
        for child in self.children:
            yield from child.iter()

    def elements(self) -> Iterator["DomNode"]:
        """Preorder traversal over element nodes only."""
        for node in self.iter():
            if not node.is_text:
                yield node

    def text_nodes(self) -> Iterator["DomNode"]:
        """Preorder traversal over text nodes only."""
        for node in self.iter():
            if node.is_text:
                yield node

    def text_content(self) -> str:
        """Concatenated text of the subtree, whitespace-normalized."""
        pieces = [node.text for node in self.iter() if node.is_text]
        return " ".join(" ".join(pieces).split())

    def find_all(self, predicate: Callable[["DomNode"], bool]) -> List["DomNode"]:
        """All subtree nodes satisfying a predicate."""
        return [node for node in self.iter() if predicate(node)]

    def find_by_tag(self, tag: str) -> List["DomNode"]:
        """All subtree elements with the given tag."""
        return self.find_all(lambda node: node.tag == tag)

    def find_by_class(self, class_name: str) -> List["DomNode"]:
        """All subtree elements whose ``class`` attribute contains the name."""
        return self.find_all(
            lambda node: not node.is_text
            and class_name in node.attributes.get("class", "").split()
        )

    # ------------------------------------------------------------------
    # position / addressing

    def depth(self) -> int:
        """Distance to the root (root depth = 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def root(self) -> "DomNode":
        """The tree root."""
        node = self
        while node.parent is not None:
            node = node.parent
        return node

    def sibling_index(self) -> int:
        """1-based index among same-tag siblings (XPath convention)."""
        if self.parent is None:
            return 1
        index = 0
        for sibling in self.parent.children:
            if sibling.tag == self.tag:
                index += 1
            if sibling is self:
                return index
        raise RuntimeError("node not found among its parent's children")

    def absolute_path(self) -> str:
        """XPath-like absolute address, e.g. ``/html[1]/body[1]/div[2]``.

        Text nodes address as ``.../text()[k]``.
        """
        steps: List[str] = []
        node = self
        while node.parent is not None:
            if node.is_text:
                position = 0
                for sibling in node.parent.children:
                    if sibling.is_text:
                        position += 1
                    if sibling is node:
                        break
                steps.append(f"text()[{position}]")
            else:
                steps.append(f"{node.tag}[{node.sibling_index()}]")
            node = node.parent
        steps.append(f"{node.tag}[1]")
        return "/" + "/".join(reversed(steps))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_text:
            return f"DomNode(text={self.text!r})"
        return f"DomNode(<{self.tag}> children={len(self.children)})"


def element(tag: str, attributes: Optional[Dict[str, str]] = None) -> DomNode:
    """Shorthand element constructor."""
    return DomNode(tag=tag, attributes=attributes)


def text_node(text: str) -> DomNode:
    """Shorthand text-node constructor."""
    return DomNode(text=text)


def resolve_path(root: DomNode, path: str) -> Optional[DomNode]:
    """Follow an absolute path produced by :meth:`DomNode.absolute_path`.

    Returns ``None`` when the path does not exist in this tree — the normal
    outcome when a wrapper rule meets a page with a missing field.
    """
    if not path.startswith("/"):
        raise ValueError(f"expected an absolute path, got {path!r}")
    steps = [step for step in path.split("/") if step]
    node = root
    first = steps[0]
    tag, index = _parse_step(first)
    if node.tag != tag or index != 1:
        return None
    for step in steps[1:]:
        tag, index = _parse_step(step)
        count = 0
        found = None
        for child in node.children:
            if tag == "text()":
                if child.is_text:
                    count += 1
            elif child.tag == tag:
                count += 1
            else:
                continue
            if count == index:
                found = child
                break
        if found is None:
            return None
        node = found
    return node


def _parse_step(step: str) -> Tuple[str, int]:
    if "[" not in step:
        return step, 1
    tag, _, rest = step.partition("[")
    return tag, int(rest.rstrip("]"))


def preceding_text(node: DomNode) -> Optional[str]:
    """Text of the nearest preceding text node in document order.

    On key-value templates this is the *label* of a value node
    ("Director:" before "Jane Doe") — the left landmark classic wrapper
    induction (HLRT) keys on, and the strongest Ceres feature.
    """
    root = node.root()
    previous = None
    for candidate in root.text_nodes():
        if candidate is node:
            return previous
        previous = candidate.text
    return None


class _Parser(HTMLParser):
    """Forgiving HTML parser building a :class:`DomNode` tree."""

    VOID_TAGS = {"br", "hr", "img", "meta", "link", "input"}

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.root: Optional[DomNode] = None
        self._stack: List[DomNode] = []

    def handle_starttag(self, tag, attrs):
        node = DomNode(tag=tag, attributes={key: (value or "") for key, value in attrs})
        if self._stack:
            self._stack[-1].append(node)
        elif self.root is None:
            self.root = node
        if tag not in self.VOID_TAGS:
            self._stack.append(node)

    def handle_endtag(self, tag):
        # Pop to the matching open tag, tolerating mis-nesting.
        for index in range(len(self._stack) - 1, -1, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                break

    def handle_data(self, data):
        stripped = data.strip()
        if stripped and self._stack:
            self._stack[-1].append(DomNode(text=stripped))


def parse_html(html: str) -> DomNode:
    """Parse an HTML string to a DOM tree (single root expected)."""
    parser = _Parser()
    parser.feed(html)
    if parser.root is None:
        raise ValueError("no element found in HTML input")
    return parser.root


def render_html(node: DomNode, indent: int = 0) -> str:
    """Serialize a DOM tree back to (pretty-printed) HTML."""
    pad = "  " * indent
    if node.is_text:
        return f"{pad}{node.text}"
    attributes = "".join(
        f' {key}="{value}"' for key, value in sorted(node.attributes.items())
    )
    if not node.children:
        return f"{pad}<{node.tag}{attributes}></{node.tag}>"
    inner = "\n".join(render_html(child, indent + 1) for child in node.children)
    return f"{pad}<{node.tag}{attributes}>\n{inner}\n{pad}</{node.tag}>"


# ----------------------------------------------------------------------
# structural features (used by the zero-shot GNN extractor)

#: Coarse tag *roles* rather than tag identities: identities such as td/dd
#: are template-specific and would block transfer to sites that render
#: key-value pairs with other markup (the whole point of zero-shot
#: extraction).  Headings keep an indicator because they are universal.
_HEADING_TAGS = ("h1", "h2", "h3", "title")


def _heading_block(root: DomNode) -> Optional[DomNode]:
    """The element containing the page's main heading (h1), if any."""
    headings = root.find_by_tag("h1")
    if not headings:
        return None
    return headings[0].parent


def _is_descendant(node: DomNode, ancestor: Optional[DomNode]) -> bool:
    if ancestor is None:
        return False
    walker = node
    while walker is not None:
        if walker is ancestor:
            return True
        walker = walker.parent
    return False


def node_features(node: DomNode) -> List[float]:
    """Language-agnostic structural features of one DOM node.

    ZeroShotCeres' key intuition: topic/attribute/value roles are guessable
    from layout alone, "without necessarily understanding the language"
    (Sec. 2.3).  So the features avoid word identity: tag indicators, depth,
    sibling position, text length statistics, digit/uppercase ratios, a
    key-ish punctuation cue (trailing colon), and visual-block proximity to
    the page heading (the stand-in for the original's rendered-layout
    features — main-content values sit in the same block as the title,
    chrome does not).
    """
    text = node.text_content()
    tag = node.tag if not node.is_text else "#text"
    features = [
        1.0 if tag in _HEADING_TAGS else 0.0,
        1.0 if (node.parent is not None and node.parent.tag in _HEADING_TAGS) else 0.0,
        # Sibling fan-out of the parent: repeated units (rows) have many
        # same-tag siblings, chrome and headings have few.
        min(len(node.parent.children), 10) / 10.0 if node.parent is not None else 0.0,
    ]
    features.append(1.0 if node.is_text else 0.0)
    features.append(min(node.depth(), 12) / 12.0)
    features.append(min(node.sibling_index(), 8) / 8.0)
    features.append(min(len(text), 80) / 80.0)
    features.append(min(len(text.split()), 15) / 15.0)
    digits = sum(1 for char in text if char.isdigit())
    features.append(digits / max(len(text), 1))
    uppers = sum(1 for char in text if char.isupper())
    features.append(uppers / max(len(text), 1))
    features.append(1.0 if text.endswith(":") else 0.0)
    features.append(1.0 if len(node.children) == 0 else 0.0)
    features.append(1.0 if _is_descendant(node, _heading_block(node.root())) else 0.0)
    return features


def layout_edges(root: DomNode) -> List[Tuple[int, int]]:
    """Edges of the page layout graph over preorder node indices.

    Parent-child plus adjacent-sibling edges, which is the graph
    ZeroShotCeres-style models message-pass over.
    """
    index_of = {id(node): index for index, node in enumerate(root.iter())}
    edges: List[Tuple[int, int]] = []
    for node in root.iter():
        for position, child in enumerate(node.children):
            edges.append((index_of[id(node)], index_of[id(child)]))
            if position > 0:
                edges.append(
                    (index_of[id(node.children[position - 1])], index_of[id(child)])
                )
    return edges
