"""GNN-based zero-shot extraction (ZeroShotCeres-style) — Sec. 2.3.

"Given a semi-structured webpage, one can fairly easily guess what is the
topic entity, and what are the attribute-value pairs, without domain
knowledge, and even without necessarily understanding the language.
Systems like ZeroshotCeres leverage GNN to explore both the visual clues
and the text semantics, to train one single extraction model for different
websites, including even websites in domains where training data do not
exist."

The reproduction trains one :class:`~repro.ml.gnn.GraphConvNet` over the
*layout graphs* of pages from training websites, with language-agnostic
structural node features, and applies it unchanged to pages of unseen
websites/domains.  Detected value nodes are paired with their nearest
preceding text node to recover the (attribute, value) pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.extract.dom import DomNode, layout_edges, node_features
from repro.ml.gnn import GraphConvNet

OTHER, VALUE, TOPIC = 0, 1, 2


@dataclass(frozen=True)
class ZeroShotPair:
    """A (attribute_label_text, value_text) pair with model confidence."""

    attribute: str
    value: str
    confidence: float


def _page_graph(page_root: DomNode) -> Tuple[List[DomNode], np.ndarray, List[Tuple[int, int]]]:
    nodes = list(page_root.iter())
    features = np.array([node_features(node) for node in nodes])
    edges = layout_edges(page_root)
    return nodes, features, edges


def label_page_nodes(
    page_root: DomNode, value_texts: Set[str], topic_text: Optional[str]
) -> List[int]:
    """Role labels for every node of a training page.

    Gold/distant supervision provides the set of value strings on the page
    and the topic string; everything else is OTHER.
    """
    labels = []
    lowered_values = {value.lower() for value in value_texts}
    lowered_topic = topic_text.lower() if topic_text else None
    for node in page_root.iter():
        if node.is_text and node.text.lower() in lowered_values:
            labels.append(VALUE)
        elif node.is_text and lowered_topic is not None and node.text.lower() == lowered_topic:
            labels.append(TOPIC)
        else:
            labels.append(OTHER)
    return labels


@dataclass
class ZeroShotExtractor:
    """One cross-site extraction model over page layout graphs."""

    hidden_dim: int = 24
    n_iterations: int = 250
    confidence_threshold: float = 0.5
    seed: int = 0
    _model: Optional[GraphConvNet] = field(default=None, init=False, repr=False)

    def fit(
        self,
        training_pages: Sequence[Tuple[DomNode, Set[str], Optional[str]]],
    ) -> "ZeroShotExtractor":
        """Train on ``(page_root, value_texts, topic_text)`` triples.

        Page graphs are stacked into one disjoint union so a single GCN
        weight set is learned for all sites at once.
        """
        if not training_pages:
            raise ValueError("zero-shot training needs at least one page")
        all_features: List[np.ndarray] = []
        all_edges: List[Tuple[int, int]] = []
        all_labels: List[int] = []
        offset = 0
        for page_root, value_texts, topic_text in training_pages:
            _nodes, features, edges = _page_graph(page_root)
            all_features.append(features)
            all_edges.extend((left + offset, right + offset) for left, right in edges)
            all_labels.extend(label_page_nodes(page_root, value_texts, topic_text))
            offset += len(features)
        stacked = np.vstack(all_features)
        labels = np.array(all_labels)
        mask = np.ones(len(labels), dtype=bool)
        self._model = GraphConvNet(
            hidden_dim=self.hidden_dim,
            n_iterations=self.n_iterations,
            seed=self.seed,
        )
        self._model.fit(stacked, all_edges, labels, mask)
        return self

    def extract(self, page_root: DomNode) -> List[ZeroShotPair]:
        """Extract (attribute, value) pairs from an unseen page."""
        if self._model is None:
            raise RuntimeError("extractor is not fitted")
        nodes, features, edges = _page_graph(page_root)
        probabilities = self._model.predict_proba(features, edges)
        text_nodes = [
            (index, node) for index, node in enumerate(nodes) if node.is_text
        ]
        pairs: List[ZeroShotPair] = []
        for position, (index, node) in enumerate(text_nodes):
            confidence = float(probabilities[index, VALUE])
            if confidence < self.confidence_threshold:
                continue
            label = self._preceding_label(text_nodes, position)
            if label is None:
                continue
            pairs.append(
                ZeroShotPair(attribute=label, value=node.text, confidence=confidence)
            )
        return sorted(pairs, key=lambda pair: (-pair.confidence, pair.attribute))

    def detect_topic(self, page_root: DomNode) -> Optional[str]:
        """The text node the model believes is the topic entity."""
        if self._model is None:
            raise RuntimeError("extractor is not fitted")
        nodes, features, edges = _page_graph(page_root)
        probabilities = self._model.predict_proba(features, edges)
        best_index, best_confidence = None, 0.0
        for index, node in enumerate(nodes):
            if not node.is_text:
                continue
            confidence = float(probabilities[index, TOPIC])
            if confidence > best_confidence:
                best_index, best_confidence = index, confidence
        if best_index is None:
            return None
        return nodes[best_index].text

    @staticmethod
    def _preceding_label(
        text_nodes: Sequence[Tuple[int, DomNode]], position: int
    ) -> Optional[str]:
        if position == 0:
            return None
        label = text_nodes[position - 1][1].text.strip().rstrip(":").strip()
        return label or None
