"""Bootstrapped text-pattern relation extraction — the web-text channel.

This is the Snowball / NELL / Knowledge Vault style of distant supervision
over free text (Sec. 2.4): seed facts locate entity-pair mentions, the text
between the entities becomes a pattern, pattern reliability is estimated
from how often it co-occurs with seed facts, and reliable patterns then
extract *new* pairs.  "The training data and thus the extractions are often
noisy" — connective phrases that co-occur with seed pairs by coincidence
become unreliable patterns, which is what the downstream fusion layer has
to clean up.
"""

from __future__ import annotations

import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.triple import AttributedTriple, Provenance, Triple


@dataclass(frozen=True)
class PatternStats:
    """Reliability bookkeeping for one textual pattern."""

    pattern: str
    predicate: str
    positive: int
    total: int

    @property
    def confidence(self) -> float:
        """Laplace-smoothed precision of the pattern for its predicate."""
        return (self.positive + 1.0) / (self.total + 2.0)


def _find_mentions(
    sentence: str, entity_names: Sequence[str]
) -> List[Tuple[str, str, str]]:
    """All ordered (left_entity, middle_text, right_entity) mentions.

    Longest-name-first matching avoids matching "Ann" inside "Annette".
    """
    hits: List[Tuple[int, int, str]] = []
    lowered = sentence.lower()
    taken: List[Tuple[int, int]] = []
    for name in sorted(entity_names, key=len, reverse=True):
        start = 0
        needle = name.lower()
        while True:
            index = lowered.find(needle, start)
            if index < 0:
                break
            end = index + len(needle)
            if not any(s < end and index < e for s, e in taken):
                hits.append((index, end, name))
                taken.append((index, end))
            start = end
    hits.sort()
    mentions = []
    for position in range(len(hits) - 1):
        left_start, left_end, left_name = hits[position]
        right_start, _right_end, right_name = hits[position + 1]
        middle = sentence[left_end:right_start]
        mentions.append((left_name, _normalize_pattern(middle), right_name))
    return mentions


def _normalize_pattern(text: str) -> str:
    collapsed = re.sub(r"\s+", " ", text.strip().lower())
    collapsed = re.sub(r"\d+", "#", collapsed)
    return collapsed


@dataclass
class TextPatternExtractor:
    """Distantly supervised pattern learner over sentences."""

    min_pattern_support: int = 3
    min_confidence: float = 0.6
    patterns_: Dict[str, PatternStats] = field(default_factory=dict, init=False)

    def fit(
        self,
        sentences: Sequence[str],
        seed_facts: Set[Tuple[str, str, str]],
        entity_names: Sequence[str],
    ) -> "TextPatternExtractor":
        """Learn pattern reliabilities from seed-fact co-occurrence.

        ``seed_facts`` contains (subject_text, predicate, object_text)
        with surface-form entity names.
        """
        seeds_by_pair: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        for subject, predicate, obj in seed_facts:
            seeds_by_pair[(subject.lower(), obj.lower())].add(predicate)
        pattern_predicate_counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        pattern_totals: Dict[str, int] = defaultdict(int)
        for sentence in sentences:
            for left, pattern, right in _find_mentions(sentence, entity_names):
                pattern_totals[pattern] += 1
                for predicate in seeds_by_pair.get((left.lower(), right.lower()), ()):
                    pattern_predicate_counts[pattern][predicate] += 1
        self.patterns_ = {}
        for pattern, total in pattern_totals.items():
            if total < self.min_pattern_support:
                continue
            predicate_counts = pattern_predicate_counts.get(pattern)
            if not predicate_counts:
                continue
            predicate, positive = max(predicate_counts.items(), key=lambda item: item[1])
            stats = PatternStats(
                pattern=pattern, predicate=predicate, positive=positive, total=total
            )
            if stats.confidence >= self.min_confidence:
                self.patterns_[pattern] = stats
        return self

    def extract(
        self, sentences: Sequence[str], entity_names: Sequence[str], source: str = "web_text"
    ) -> List[AttributedTriple]:
        """Apply learned patterns to sentences, emitting scored triples."""
        if not self.patterns_:
            raise RuntimeError("extractor has no patterns; call fit first")
        extracted: Dict[Tuple[str, str, str], float] = {}
        for sentence in sentences:
            for left, pattern, right in _find_mentions(sentence, entity_names):
                stats = self.patterns_.get(pattern)
                if stats is None:
                    continue
                key = (left, stats.predicate, right)
                extracted[key] = max(extracted.get(key, 0.0), stats.confidence)
        triples = []
        for (subject, predicate, obj), confidence in sorted(extracted.items()):
            triples.append(
                AttributedTriple(
                    Triple(subject, predicate, obj),
                    Provenance(source=source, extractor="text_pattern", confidence=confidence),
                )
            )
        return triples

    def pattern_table(self) -> List[PatternStats]:
        """Learned patterns sorted by confidence (for inspection/tests)."""
        return sorted(
            self.patterns_.values(), key=lambda stats: (-stats.confidence, stats.pattern)
        )
