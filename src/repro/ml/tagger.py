"""Sequence tagging substrate for OpenTag-style attribute extraction.

OpenTag (Sec. 3.1) casts product attribute-value extraction as named-entity
recognition with BIO tags over product-profile tokens.  The original uses a
BiLSTM-CRF; this reproduction uses an averaged structured perceptron with
Viterbi decoding — the same *model family* (feature-based linear sequence
model with learned transitions), trainable offline on a laptop, which is
what the reproduction needs to exhibit the paper's quality/coverage trends.

The tagger is deliberately generic: TXtract and AdaTag (Sec. 3.3) reuse it
by injecting extra *context features* (product-type buckets, attribute
identity) into every token's feature set.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

OUTSIDE = "O"


@dataclass(frozen=True)
class TaggedToken:
    """A token paired with its BIO tag (e.g. ``("dark", "B-flavor")``)."""

    token: str
    tag: str


class BIO:
    """Helpers to move between tag sequences and attribute-value spans."""

    @staticmethod
    def encode(tokens: Sequence[str], spans: Iterable[Tuple[int, int, str]]) -> List[str]:
        """Encode ``(start, end, label)`` spans (end exclusive) as BIO tags.

        Overlapping spans are resolved first-wins; out-of-range spans raise.
        """
        tags = [OUTSIDE] * len(tokens)
        for start, end, label in spans:
            if start < 0 or end > len(tokens) or start >= end:
                raise ValueError(f"invalid span ({start}, {end}) for {len(tokens)} tokens")
            if any(tags[i] != OUTSIDE for i in range(start, end)):
                continue
            tags[start] = f"B-{label}"
            for position in range(start + 1, end):
                tags[position] = f"I-{label}"
        return tags

    @staticmethod
    def decode(tags: Sequence[str]) -> List[Tuple[int, int, str]]:
        """Decode BIO tags into ``(start, end, label)`` spans (end exclusive).

        Tolerates dangling ``I-`` tags by opening a new span, the common
        convention for noisy decoders.
        """
        spans: List[Tuple[int, int, str]] = []
        start: Optional[int] = None
        label: Optional[str] = None
        for position, tag in enumerate(tags):
            if tag.startswith("B-"):
                if start is not None:
                    spans.append((start, position, label))
                start, label = position, tag[2:]
            elif tag.startswith("I-"):
                current = tag[2:]
                if start is None or current != label:
                    if start is not None:
                        spans.append((start, position, label))
                    start, label = position, current
            else:
                if start is not None:
                    spans.append((start, position, label))
                start, label = None, None
        if start is not None:
            spans.append((start, len(tags), label))
        return spans

    @staticmethod
    def span_values(tokens: Sequence[str], tags: Sequence[str]) -> List[Tuple[str, str]]:
        """Return ``(label, "joined token text")`` for each decoded span."""
        return [
            (label, " ".join(tokens[start:end]))
            for start, end, label in BIO.decode(tags)
        ]


def _word_shape(token: str) -> str:
    shape = []
    for char in token:
        if char.isupper():
            shape.append("X")
        elif char.islower():
            shape.append("x")
        elif char.isdigit():
            shape.append("9")
        else:
            shape.append(char)
    # Collapse runs to keep the feature space small.
    collapsed = []
    for char in shape:
        if not collapsed or collapsed[-1] != char:
            collapsed.append(char)
    return "".join(collapsed)


def default_token_features(tokens: Sequence[str], position: int) -> List[str]:
    """Classic NER feature template: identity, shape, affixes, context."""
    token = tokens[position]
    lowered = token.lower()
    features = [
        f"w={lowered}",
        f"shape={_word_shape(token)}",
        f"suf3={lowered[-3:]}",
        f"pre3={lowered[:3]}",
        f"isdigit={token.isdigit()}",
        f"istitle={token.istitle()}",
    ]
    if position > 0:
        features.append(f"w-1={tokens[position - 1].lower()}")
        features.append(f"w-1,w={tokens[position - 1].lower()}|{lowered}")
    else:
        features.append("BOS")
    if position < len(tokens) - 1:
        features.append(f"w+1={tokens[position + 1].lower()}")
    else:
        features.append("EOS")
    return features


FeatureExtractor = Callable[[Sequence[str], int], List[str]]


@dataclass
class SequenceTagger:
    """Averaged structured perceptron with first-order Viterbi decoding.

    Parameters
    ----------
    feature_extractor:
        Maps ``(tokens, position)`` to a list of string features.  Replace
        to condition the model on product type (TXtract) or attribute
        identity (AdaTag).
    n_epochs:
        Training passes over the data.
    seed:
        Seed for example shuffling.
    """

    feature_extractor: FeatureExtractor = field(default=default_token_features)
    n_epochs: int = 8
    seed: int = 0
    _weights: Dict[Tuple[str, str], float] = field(default_factory=dict, init=False, repr=False)
    _totals: Dict[Tuple[str, str], float] = field(default_factory=dict, init=False, repr=False)
    _timestamps: Dict[Tuple[str, str], int] = field(default_factory=dict, init=False, repr=False)
    _tags: List[str] = field(default_factory=list, init=False)
    _step: int = field(default=0, init=False)

    @property
    def tags(self) -> List[str]:
        """The tag inventory discovered during training."""
        return list(self._tags)

    def fit(
        self,
        sentences: Sequence[Sequence[str]],
        tag_sequences: Sequence[Sequence[str]],
        contexts: Optional[Sequence[Sequence[str]]] = None,
    ) -> "SequenceTagger":
        """Train on parallel token and BIO-tag sequences.

        ``contexts`` optionally supplies sentence-level context features per
        example (e.g. ``["type=Coffee"]``); they are appended to every
        token's features, plus conjoined with the token identity, which is
        how TXtract/AdaTag condition one shared model on task context.
        """
        if len(sentences) != len(tag_sequences):
            raise ValueError("sentences and tag_sequences must be parallel")
        if contexts is not None and len(contexts) != len(sentences):
            raise ValueError("contexts must be parallel to sentences")
        tag_set = {OUTSIDE}
        for tags in tag_sequences:
            tag_set.update(tags)
        self._tags = sorted(tag_set)
        rng = np.random.default_rng(self.seed)
        examples = list(zip(sentences, tag_sequences))
        for _ in range(self.n_epochs):
            order = rng.permutation(len(examples))
            for index in order:
                tokens, gold = examples[index]
                context = tuple(contexts[index]) if contexts is not None else ()
                if len(tokens) != len(gold):
                    raise ValueError("tokens and tags must be parallel")
                if not tokens:
                    continue
                predicted = self._viterbi(tokens, context)
                if list(predicted) != list(gold):
                    self._update(tokens, gold, predicted, context)
                self._step += 1
        self._average()
        return self

    def predict(self, tokens: Sequence[str], context: Sequence[str] = ()) -> List[str]:
        """Viterbi-decode the most probable tag sequence."""
        if not self._tags:
            raise RuntimeError("tagger is not fitted")
        if not tokens:
            return []
        return self._viterbi(tokens, tuple(context))

    def extract(self, tokens: Sequence[str], context: Sequence[str] = ()) -> List[Tuple[str, str]]:
        """Predict tags and decode them into ``(label, value_text)`` pairs."""
        return BIO.span_values(tokens, self.predict(tokens, context))

    # ------------------------------------------------------------------
    # internals

    def _token_features(
        self, tokens: Sequence[str], position: int, context: Tuple[str, ...]
    ) -> List[str]:
        features = self.feature_extractor(tokens, position)
        for context_feature in context:
            features.append(context_feature)
            features.append(f"{context_feature}&w={tokens[position].lower()}")
        return features

    def _score(self, features: List[str], tag: str, previous_tag: str) -> float:
        score = self._weights.get((f"T:{previous_tag}", tag), 0.0)
        for feature in features:
            score += self._weights.get((feature, tag), 0.0)
        return score

    def _viterbi(self, tokens: Sequence[str], context: Tuple[str, ...] = ()) -> List[str]:
        n_tags = len(self._tags)
        n_tokens = len(tokens)
        scores = np.full((n_tokens, n_tags), -np.inf)
        backpointers = np.zeros((n_tokens, n_tags), dtype=int)
        feature_cache = [self._token_features(tokens, i, context) for i in range(n_tokens)]
        for tag_index, tag in enumerate(self._tags):
            scores[0, tag_index] = self._score(feature_cache[0], tag, "<s>")
        for position in range(1, n_tokens):
            features = feature_cache[position]
            emission = np.array(
                [
                    sum(self._weights.get((feature, tag), 0.0) for feature in features)
                    for tag in self._tags
                ]
            )
            for tag_index, tag in enumerate(self._tags):
                transition = np.array(
                    [
                        self._weights.get((f"T:{previous}", tag), 0.0)
                        for previous in self._tags
                    ]
                )
                candidates = scores[position - 1] + transition
                best_previous = int(np.argmax(candidates))
                scores[position, tag_index] = candidates[best_previous] + emission[tag_index]
                backpointers[position, tag_index] = best_previous
        best_final = int(np.argmax(scores[-1]))
        path = [best_final]
        for position in range(n_tokens - 1, 0, -1):
            path.append(int(backpointers[position, path[-1]]))
        path.reverse()
        return [self._tags[tag_index] for tag_index in path]

    def _bump(self, key: Tuple[str, str], delta: float) -> None:
        elapsed = self._step - self._timestamps.get(key, 0)
        self._totals[key] = self._totals.get(key, 0.0) + elapsed * self._weights.get(key, 0.0)
        self._timestamps[key] = self._step
        self._weights[key] = self._weights.get(key, 0.0) + delta

    def _update(
        self,
        tokens: Sequence[str],
        gold: Sequence[str],
        predicted: Sequence[str],
        context: Tuple[str, ...] = (),
    ) -> None:
        previous_gold, previous_predicted = "<s>", "<s>"
        for position, token_features in enumerate(
            self._token_features(tokens, i, context) for i in range(len(tokens))
        ):
            gold_tag, predicted_tag = gold[position], predicted[position]
            if gold_tag != predicted_tag:
                for feature in token_features:
                    self._bump((feature, gold_tag), +1.0)
                    self._bump((feature, predicted_tag), -1.0)
            if (previous_gold, gold_tag) != (previous_predicted, predicted_tag):
                self._bump((f"T:{previous_gold}", gold_tag), +1.0)
                self._bump((f"T:{previous_predicted}", predicted_tag), -1.0)
            previous_gold, previous_predicted = gold_tag, predicted_tag

    def _average(self) -> None:
        """Replace weights with their historical averages (averaged perceptron)."""
        if self._step == 0:
            return
        for key, weight in self._weights.items():
            elapsed = self._step - self._timestamps.get(key, 0)
            total = self._totals.get(key, 0.0) + elapsed * weight
            self._weights[key] = total / self._step
        self._totals = {}
        self._timestamps = defaultdict(int)


def make_context_feature_extractor(
    context_features: Callable[[Sequence[str]], List[str]],
    base: FeatureExtractor = default_token_features,
) -> FeatureExtractor:
    """Wrap a base extractor, appending sentence-level context features.

    This is the hook TXtract (type embedding buckets) and AdaTag (attribute
    identity) use to condition one shared model on task context, which is
    exactly the "one-size-fits-all" trick of Sec. 3.3.
    """

    def extractor(tokens: Sequence[str], position: int) -> List[str]:
        features = base(tokens, position)
        for context in context_features(tokens):
            features.append(context)
            # Conjoin context with the token identity so the model can learn
            # context-specific vocabularies.
            features.append(f"{context}&w={tokens[position].lower()}")
        return features

    return extractor
