"""AutoML-style hyper-parameter search.

Figure 5(b) replaces hand tuning with an "AutoML pipeline ... to reduce model
fine tuning efforts and enable non ML-savvies to tune the models".  This
module provides a deterministic grid search with cross-validation that the
automated product-extraction pipeline plugs in where Fig. 5(a) had a human
fine-tuning step.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class SearchResult:
    """One evaluated configuration with its cross-validated score."""

    params: Dict[str, object]
    score: float


@dataclass
class GridSearch:
    """Exhaustive grid search with k-fold cross-validation.

    Parameters
    ----------
    model_factory:
        Callable taking keyword hyper-parameters and returning an unfitted
        model with ``fit`` / ``predict``.
    grid:
        Mapping from hyper-parameter name to the values to try.
    scorer:
        ``scorer(y_true, y_pred) -> float`` (higher is better); defaults to
        accuracy.
    n_folds:
        Cross-validation folds (capped by sample count).
    """

    model_factory: Callable[..., object]
    grid: Mapping[str, Sequence[object]]
    scorer: Callable[[Sequence, Sequence], float] = None
    n_folds: int = 3
    seed: int = 0
    results_: List[SearchResult] = field(default_factory=list, init=False)

    def _configurations(self) -> Iterable[Dict[str, object]]:
        names = sorted(self.grid)
        for values in itertools.product(*(self.grid[name] for name in names)):
            yield dict(zip(names, values))

    def fit(self, features, labels) -> object:
        """Search the grid, then refit the best configuration on all data."""
        matrix = np.asarray(features, dtype=float)
        targets = np.asarray(labels)
        if len(matrix) != len(targets):
            raise ValueError("features and labels must be parallel")
        scorer = self.scorer or _accuracy
        folds = self._folds(len(matrix))
        self.results_ = []
        for params in self._configurations():
            fold_scores = []
            for held_out in range(len(folds)):
                test_index = folds[held_out]
                train_index = np.concatenate(
                    [folds[i] for i in range(len(folds)) if i != held_out]
                )
                model = self.model_factory(**params)
                model.fit(matrix[train_index], targets[train_index])
                predictions = model.predict(matrix[test_index])
                fold_scores.append(scorer(list(targets[test_index]), list(predictions)))
            self.results_.append(SearchResult(params=params, score=float(np.mean(fold_scores))))
        self.results_.sort(key=lambda result: -result.score)
        best = self.results_[0]
        model = self.model_factory(**best.params)
        model.fit(matrix, targets)
        return model

    @property
    def best_params_(self) -> Dict[str, object]:
        """Hyper-parameters of the winning configuration."""
        if not self.results_:
            raise RuntimeError("search has not been run")
        return self.results_[0].params

    @property
    def best_score_(self) -> float:
        """Cross-validated score of the winning configuration."""
        if not self.results_:
            raise RuntimeError("search has not been run")
        return self.results_[0].score

    def _folds(self, n_samples: int) -> List[np.ndarray]:
        rng = np.random.default_rng(self.seed)
        permutation = rng.permutation(n_samples)
        n_folds = min(self.n_folds, n_samples)
        return [fold for fold in np.array_split(permutation, n_folds) if len(fold)]


def _accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    if not y_true:
        return 1.0
    matches = sum(1 for truth, pred in zip(y_true, y_pred) if truth == pred)
    return matches / len(y_true)
