"""A small graph convolutional network (GCN) on numpy.

Two techniques in the paper lean on GNNs:

* ZeroShotCeres (Sec. 2.3) classifies DOM nodes of semi-structured pages
  using a GNN over the page layout graph, training one model that transfers
  across websites and even domains;
* taxonomy/attribute-relationship mining from customer behavior (Sec. 3.1)
  classifies candidate edges with graph-structured features.

This module implements a two-layer GCN for node classification with manual
backpropagation (no autograd dependency), with symmetric-normalized
adjacency as in Kipf & Welling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np


def normalized_adjacency(edges: Sequence[Tuple[int, int]], n_nodes: int) -> np.ndarray:
    """Build D^{-1/2} (A + I) D^{-1/2} from an undirected edge list."""
    adjacency = np.eye(n_nodes)
    for source, target in edges:
        if not (0 <= source < n_nodes and 0 <= target < n_nodes):
            raise ValueError(f"edge ({source}, {target}) out of range for {n_nodes} nodes")
        adjacency[source, target] = 1.0
        adjacency[target, source] = 1.0
    degrees = adjacency.sum(axis=1)
    inverse_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return adjacency * inverse_sqrt[:, None] * inverse_sqrt[None, :]


@dataclass
class GraphConvNet:
    """Two-layer GCN for transductive node classification.

    ``fit`` takes the full graph plus labels for a subset of nodes (the
    training mask); ``predict_proba`` returns probabilities for every node.
    """

    hidden_dim: int = 16
    learning_rate: float = 0.3
    n_iterations: int = 200
    l2: float = 5e-4
    balanced: bool = True
    seed: int = 0
    _w0: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _w1: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _adjacency: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    _features: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    n_classes_: int = field(default=0, init=False)

    def fit(
        self,
        node_features,
        edges: Sequence[Tuple[int, int]],
        labels,
        train_mask,
    ) -> "GraphConvNet":
        """Train on one graph.

        Parameters
        ----------
        node_features:
            (n_nodes x d) feature matrix.
        edges:
            Undirected edge list over node indices.
        labels:
            Integer class per node (values for untrained nodes are ignored).
        train_mask:
            Boolean array marking which nodes contribute to the loss.
        """
        features = np.asarray(node_features, dtype=float)
        targets = np.asarray(labels, dtype=int)
        mask = np.asarray(train_mask, dtype=bool)
        n_nodes, n_features = features.shape
        if len(targets) != n_nodes or len(mask) != n_nodes:
            raise ValueError("labels and train_mask must cover every node")
        if not mask.any():
            raise ValueError("train_mask selects no nodes")
        self.n_classes_ = int(targets[mask].max()) + 1
        self._adjacency = normalized_adjacency(edges, n_nodes)
        self._features = features
        rng = np.random.default_rng(self.seed)
        self._w0 = rng.normal(scale=np.sqrt(2.0 / n_features), size=(n_features, self.hidden_dim))
        self._w1 = rng.normal(
            scale=np.sqrt(2.0 / self.hidden_dim), size=(self.hidden_dim, self.n_classes_)
        )
        one_hot = np.zeros((n_nodes, self.n_classes_))
        one_hot[np.arange(n_nodes), np.clip(targets, 0, self.n_classes_ - 1)] = 1.0
        n_train = mask.sum()
        # Balanced class weights keep rare roles (e.g. value/topic nodes on
        # a page dominated by chrome) from being ignored by the loss.
        sample_weights = np.ones(n_nodes)
        if self.balanced:
            counts = np.bincount(targets[mask], minlength=self.n_classes_).astype(float)
            class_weights = n_train / (self.n_classes_ * np.maximum(counts, 1.0))
            sample_weights = class_weights[np.clip(targets, 0, self.n_classes_ - 1)]
        for _ in range(self.n_iterations):
            # Forward pass.
            support = self._adjacency @ features
            hidden_pre = support @ self._w0
            hidden = np.maximum(hidden_pre, 0.0)
            propagated = self._adjacency @ hidden
            logits = propagated @ self._w1
            probabilities = _row_softmax(logits)
            # Backward pass (cross-entropy on the train mask).
            delta_logits = (probabilities - one_hot) * sample_weights[:, None] / n_train
            delta_logits[~mask] = 0.0
            grad_w1 = propagated.T @ delta_logits + self.l2 * self._w1
            delta_hidden = (self._adjacency.T @ delta_logits) @ self._w1.T
            delta_hidden[hidden_pre <= 0.0] = 0.0
            grad_w0 = support.T @ delta_hidden + self.l2 * self._w0
            self._w1 -= self.learning_rate * grad_w1
            self._w0 -= self.learning_rate * grad_w0
        return self

    def predict_proba(
        self, node_features=None, edges: Optional[Sequence[Tuple[int, int]]] = None
    ) -> np.ndarray:
        """Class probabilities for every node.

        With no arguments, scores the training graph; passing a new
        ``(node_features, edges)`` pair scores an unseen graph with the
        trained weights — the transfer setting of ZeroShotCeres.
        """
        if self._w0 is None:
            raise RuntimeError("model is not fitted")
        if node_features is None:
            features, adjacency = self._features, self._adjacency
        else:
            features = np.asarray(node_features, dtype=float)
            if edges is None:
                raise ValueError("edges are required when scoring a new graph")
            adjacency = normalized_adjacency(edges, len(features))
        hidden = np.maximum(adjacency @ features @ self._w0, 0.0)
        logits = adjacency @ hidden @ self._w1
        return _row_softmax(logits)

    def predict(self, node_features=None, edges=None) -> np.ndarray:
        """Most-probable class for every node."""
        return np.argmax(self.predict_proba(node_features, edges), axis=1)


def _row_softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)
