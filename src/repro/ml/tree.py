"""CART decision tree, implemented on numpy.

Tree-based models "have been proved to be effective solutions for entity
linkage" (Sec. 2.2); this module provides the base learner for the random
forest of Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


@dataclass
class _Node:
    """A binary tree node.  Leaves carry a class-probability vector."""

    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    probabilities: Optional[np.ndarray] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(class_counts: np.ndarray) -> float:
    total = class_counts.sum()
    if total == 0:
        return 0.0
    proportions = class_counts / total
    return float(1.0 - np.sum(proportions * proportions))


@dataclass
class DecisionTreeClassifier:
    """A CART classifier with gini splitting.

    Parameters
    ----------
    max_depth:
        Maximum tree depth; ``None`` grows until pure or ``min_samples_split``.
    min_samples_split:
        Minimum node size eligible for splitting.
    max_features:
        Number of features examined per split (``None`` = all); random
        forests pass ``sqrt`` behavior by supplying an integer.
    rng:
        numpy Generator used to sample candidate features; required when
        ``max_features`` restricts the candidate set.
    """

    max_depth: Optional[int] = None
    min_samples_split: int = 2
    max_features: Optional[int] = None
    rng: Optional[np.random.Generator] = None
    n_classes_: int = field(default=0, init=False)
    _root: Optional[_Node] = field(default=None, init=False, repr=False)

    def fit(self, features, labels) -> "DecisionTreeClassifier":
        """Fit the tree to ``features`` (n x d) and integer ``labels`` (n)."""
        matrix = np.asarray(features, dtype=float)
        targets = np.asarray(labels, dtype=int)
        if matrix.ndim != 2:
            raise ValueError("features must be a 2-D array")
        if len(matrix) != len(targets):
            raise ValueError("features and labels must be parallel")
        if len(matrix) == 0:
            raise ValueError("cannot fit a tree on zero samples")
        self.n_classes_ = int(targets.max()) + 1 if len(targets) else 0
        self._root = self._grow(matrix, targets, depth=0)
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Class-probability matrix (n x n_classes)."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        output = np.zeros((len(matrix), self.n_classes_))
        for index, row in enumerate(matrix):
            output[index] = self._walk(row)
        return output

    def predict(self, features) -> np.ndarray:
        """Most-probable class per row."""
        return np.argmax(self.predict_proba(features), axis=1)

    # ------------------------------------------------------------------
    # internals

    def _walk(self, row: np.ndarray) -> np.ndarray:
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.probabilities

    def _leaf(self, targets: np.ndarray) -> _Node:
        counts = np.bincount(targets, minlength=self.n_classes_).astype(float)
        return _Node(probabilities=counts / counts.sum())

    def _grow(self, matrix: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        n_samples = len(targets)
        if (
            n_samples < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(targets)) == 1
        ):
            return self._leaf(targets)
        split = self._best_split(matrix, targets)
        if split is None:
            return self._leaf(targets)
        feature, threshold = split
        left_mask = matrix[:, feature] <= threshold
        node = _Node(feature=feature, threshold=threshold)
        node.left = self._grow(matrix[left_mask], targets[left_mask], depth + 1)
        node.right = self._grow(matrix[~left_mask], targets[~left_mask], depth + 1)
        return node

    def _candidate_features(self, n_features: int) -> np.ndarray:
        if self.max_features is None or self.max_features >= n_features:
            return np.arange(n_features)
        rng = self.rng if self.rng is not None else np.random.default_rng()
        return rng.choice(n_features, size=self.max_features, replace=False)

    def _best_split(self, matrix: np.ndarray, targets: np.ndarray):
        """Exhaustive gini-gain search over candidate features.

        Uses the sorted-prefix trick: for each feature, sort once, then sweep
        the boundary updating class counts incrementally, which makes each
        feature O(n log n) instead of O(n^2).
        """
        n_samples, n_features = matrix.shape
        parent_counts = np.bincount(targets, minlength=self.n_classes_).astype(float)
        parent_impurity = _gini(parent_counts)
        best_gain = 1e-12
        best: Optional[tuple] = None
        for feature in self._candidate_features(n_features):
            order = np.argsort(matrix[:, feature], kind="mergesort")
            sorted_values = matrix[order, feature]
            sorted_targets = targets[order]
            left_counts = np.zeros(self.n_classes_)
            right_counts = parent_counts.copy()
            for boundary in range(n_samples - 1):
                label = sorted_targets[boundary]
                left_counts[label] += 1
                right_counts[label] -= 1
                if sorted_values[boundary] == sorted_values[boundary + 1]:
                    continue
                left_weight = (boundary + 1) / n_samples
                gain = parent_impurity - (
                    left_weight * _gini(left_counts)
                    + (1 - left_weight) * _gini(right_counts)
                )
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (sorted_values[boundary] + sorted_values[boundary + 1])
                    best = (int(feature), float(threshold))
        return best

    def depth(self) -> int:
        """Actual depth of the fitted tree (leaf-only tree has depth 0)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
