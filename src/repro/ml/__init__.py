"""From-scratch machine-learning substrate used across the KG stack.

The paper's techniques rely on a handful of classic model families:

* tree ensembles for entity linkage (Sec. 2.2, Fig. 2),
* sequence taggers for attribute-value extraction (Sec. 3, OpenTag and
  descendants),
* logistic models for path-ranking and extraction confidence (Sec. 2.4),
* graph neural networks for zero-shot extraction and taxonomy mining,
* embedding models for link prediction,
* active learning to cut labeling cost by orders of magnitude.

No third-party ML library is assumed: everything here is implemented on top
of numpy so the repository is a self-contained reproduction.
"""

from repro.ml.metrics import (
    BinaryConfusion,
    accuracy,
    f1_score,
    precision_recall,
    precision_recall_curve,
    roc_auc,
)
from repro.ml.similarity import (
    jaccard,
    jaro_winkler,
    levenshtein,
    levenshtein_similarity,
    monge_elkan,
    numeric_similarity,
    token_sort_similarity,
)
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.logistic import LogisticRegression
from repro.ml.tagger import BIO, SequenceTagger, TaggedToken
from repro.ml.gnn import GraphConvNet
from repro.ml.embeddings import CooccurrenceEmbedder, hash_embedding
from repro.ml.active import ActiveLearner, margin_sampling, random_sampling, uncertainty_sampling
from repro.ml.automl import GridSearch, SearchResult

__all__ = [
    "BinaryConfusion",
    "accuracy",
    "f1_score",
    "precision_recall",
    "precision_recall_curve",
    "roc_auc",
    "jaccard",
    "jaro_winkler",
    "levenshtein",
    "levenshtein_similarity",
    "monge_elkan",
    "numeric_similarity",
    "token_sort_similarity",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "LogisticRegression",
    "BIO",
    "SequenceTagger",
    "TaggedToken",
    "GraphConvNet",
    "CooccurrenceEmbedder",
    "hash_embedding",
    "ActiveLearner",
    "margin_sampling",
    "random_sampling",
    "uncertainty_sampling",
    "GridSearch",
    "SearchResult",
]
