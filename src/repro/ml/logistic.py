"""Binary and multinomial logistic regression on numpy.

Used as the confidence model for distantly-supervised extraction (Sec. 2.3),
as the combiner over PRA path features (Sec. 2.4), and as the read-out layer
of the GNN extractors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


def _softmax(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=1, keepdims=True)


@dataclass
class LogisticRegression:
    """L2-regularized multinomial logistic regression, batch gradient descent.

    Works for binary problems (two columns of probabilities) and multi-class
    problems alike.  Deterministic given ``seed``.
    """

    learning_rate: float = 0.5
    n_iterations: int = 300
    l2: float = 1e-3
    seed: int = 0
    fit_intercept: bool = True
    weights_: Optional[np.ndarray] = field(default=None, init=False, repr=False)
    n_classes_: int = field(default=0, init=False)

    def _design(self, features: np.ndarray) -> np.ndarray:
        if not self.fit_intercept:
            return features
        return np.hstack([features, np.ones((len(features), 1))])

    def fit(self, features, labels) -> "LogisticRegression":
        """Fit on ``features`` (n x d) and integer ``labels`` in [0, k)."""
        matrix = np.asarray(features, dtype=float)
        targets = np.asarray(labels, dtype=int)
        if matrix.ndim != 2:
            raise ValueError("features must be 2-D")
        if len(matrix) != len(targets):
            raise ValueError("features and labels must be parallel")
        if len(matrix) == 0:
            raise ValueError("cannot fit on zero samples")
        self.n_classes_ = int(targets.max()) + 1
        if self.n_classes_ < 2:
            self.n_classes_ = 2
        design = self._design(matrix)
        n_samples, n_features = design.shape
        rng = np.random.default_rng(self.seed)
        self.weights_ = rng.normal(scale=0.01, size=(n_features, self.n_classes_))
        one_hot = np.zeros((n_samples, self.n_classes_))
        one_hot[np.arange(n_samples), targets] = 1.0
        for _ in range(self.n_iterations):
            probabilities = _softmax(design @ self.weights_)
            gradient = design.T @ (probabilities - one_hot) / n_samples
            gradient += self.l2 * self.weights_
            self.weights_ -= self.learning_rate * gradient
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Class-probability matrix (n x n_classes)."""
        if self.weights_ is None:
            raise RuntimeError("model is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        return _softmax(self._design(matrix) @ self.weights_)

    def predict(self, features) -> np.ndarray:
        """Most-probable class per row."""
        return np.argmax(self.predict_proba(features), axis=1)

    def decision_scores(self, features) -> np.ndarray:
        """Probability of class 1; convenience for binary problems."""
        return self.predict_proba(features)[:, 1]
