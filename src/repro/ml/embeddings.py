"""Lightweight embedding utilities.

Embeddings appear throughout the paper's later generations: type embeddings
conditioning TXtract, attribute embeddings conditioning AdaTag (Sec. 3.3),
and of course the implicit-knowledge half of dual neural KGs (Sec. 4).
This module provides deterministic, dependency-free building blocks:

* :func:`hash_embedding` — a fixed random-but-deterministic vector per
  string, the classic hashing trick;
* :class:`CooccurrenceEmbedder` — PPMI + truncated SVD over a token
  co-occurrence matrix, i.e. classic distributional semantics, enough to
  expose "similar contexts -> nearby vectors" behavior to downstream models.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


def hash_embedding(text: str, dim: int = 32) -> np.ndarray:
    """Deterministic pseudo-random unit vector for a string.

    The same string always maps to the same vector, across processes and
    platforms (seeded from a SHA-256 digest), which keeps every experiment
    reproducible.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=dim)
    norm = np.linalg.norm(vector)
    return vector / norm if norm > 0 else vector


def cosine(left: np.ndarray, right: np.ndarray) -> float:
    """Cosine similarity, safe for zero vectors."""
    denominator = np.linalg.norm(left) * np.linalg.norm(right)
    if denominator == 0:
        return 0.0
    return float(np.dot(left, right) / denominator)


@dataclass
class CooccurrenceEmbedder:
    """PPMI-SVD word embeddings over a corpus of token sequences."""

    dim: int = 16
    window: int = 2
    min_count: int = 1
    vocabulary_: Dict[str, int] = field(default_factory=dict, init=False)
    vectors_: Optional[np.ndarray] = field(default=None, init=False, repr=False)

    def fit(self, sentences: Sequence[Sequence[str]]) -> "CooccurrenceEmbedder":
        """Build embeddings from tokenized sentences."""
        counts: Dict[str, int] = {}
        for sentence in sentences:
            for token in sentence:
                counts[token] = counts.get(token, 0) + 1
        vocabulary = sorted(token for token, count in counts.items() if count >= self.min_count)
        self.vocabulary_ = {token: index for index, token in enumerate(vocabulary)}
        size = len(vocabulary)
        if size == 0:
            raise ValueError("empty vocabulary; lower min_count or supply data")
        cooccurrence = np.zeros((size, size))
        for sentence in sentences:
            indices = [self.vocabulary_.get(token) for token in sentence]
            for position, center in enumerate(indices):
                if center is None:
                    continue
                lo = max(0, position - self.window)
                hi = min(len(indices), position + self.window + 1)
                for neighbor_position in range(lo, hi):
                    neighbor = indices[neighbor_position]
                    if neighbor is None or neighbor_position == position:
                        continue
                    cooccurrence[center, neighbor] += 1.0
        total = cooccurrence.sum()
        if total == 0:
            self.vectors_ = np.zeros((size, min(self.dim, size)))
            return self
        row_sums = cooccurrence.sum(axis=1, keepdims=True)
        col_sums = cooccurrence.sum(axis=0, keepdims=True)
        expected = row_sums @ col_sums / total
        with np.errstate(divide="ignore", invalid="ignore"):
            pmi = np.log(np.where(expected > 0, cooccurrence * total / np.maximum(expected * total, 1e-12), 1.0))
        ppmi = np.maximum(pmi, 0.0)
        ppmi[~np.isfinite(ppmi)] = 0.0
        rank = min(self.dim, size)
        u, singular_values, _ = np.linalg.svd(ppmi, full_matrices=False)
        self.vectors_ = u[:, :rank] * np.sqrt(singular_values[:rank])
        return self

    def embed(self, token: str) -> np.ndarray:
        """Vector for a token; unseen tokens fall back to a hash embedding."""
        if self.vectors_ is None:
            raise RuntimeError("embedder is not fitted")
        index = self.vocabulary_.get(token)
        if index is None:
            return hash_embedding(token, dim=self.vectors_.shape[1])
        return self.vectors_[index]

    def embed_sequence(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean of token vectors — a cheap sentence embedding."""
        if not tokens:
            if self.vectors_ is None:
                raise RuntimeError("embedder is not fitted")
            return np.zeros(self.vectors_.shape[1])
        return np.mean([self.embed(token) for token in tokens], axis=0)

    def most_similar(self, token: str, top_k: int = 5) -> List[str]:
        """Nearest vocabulary tokens by cosine similarity."""
        if self.vectors_ is None:
            raise RuntimeError("embedder is not fitted")
        query = self.embed(token)
        scored = [
            (cosine(query, self.vectors_[index]), candidate)
            for candidate, index in self.vocabulary_.items()
            if candidate != token
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [candidate for _, candidate in scored[:top_k]]
