"""Random forest classifier — the Fig. 2 entity-linkage workhorse.

"In practice, tree-based models have been proved to be effective solutions
for entity linkage. [...] we can train random forest models that take
attribute-wise value similarities as features, and obtain over 99% precision
and recall" (Sec. 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.tree import DecisionTreeClassifier


@dataclass
class RandomForestClassifier:
    """Bagged CART ensemble with per-split feature subsampling.

    Parameters
    ----------
    n_estimators:
        Number of trees.
    max_depth:
        Depth cap applied to every tree.
    max_features:
        Features examined per split; ``None`` means ``ceil(sqrt(d))``.
    seed:
        Seed for bootstrap resampling and feature subsampling, making the
        ensemble fully deterministic.
    """

    n_estimators: int = 25
    max_depth: Optional[int] = 12
    max_features: Optional[int] = None
    min_samples_split: int = 2
    seed: int = 0
    trees_: List[DecisionTreeClassifier] = field(default_factory=list, init=False, repr=False)
    n_classes_: int = field(default=0, init=False)

    def fit(self, features, labels) -> "RandomForestClassifier":
        """Fit the ensemble on ``features`` (n x d), integer ``labels`` (n)."""
        matrix = np.asarray(features, dtype=float)
        targets = np.asarray(labels, dtype=int)
        if len(matrix) == 0:
            raise ValueError("cannot fit a forest on zero samples")
        rng = np.random.default_rng(self.seed)
        self.n_classes_ = int(targets.max()) + 1
        n_samples, n_features = matrix.shape
        max_features = self.max_features
        if max_features is None:
            max_features = max(1, int(np.ceil(np.sqrt(n_features))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            sample_indices = rng.integers(0, n_samples, size=n_samples)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_split=self.min_samples_split,
                max_features=max_features,
                rng=rng,
            )
            tree.n_classes_ = self.n_classes_
            bootstrap_targets = targets[sample_indices]
            # Guarantee the tree sees the global class space even if the
            # bootstrap happened to drop a class.
            tree.fit(matrix[sample_indices], bootstrap_targets)
            tree.n_classes_ = max(tree.n_classes_, self.n_classes_)
            self.trees_.append(tree)
        return self

    def predict_proba(self, features) -> np.ndarray:
        """Mean of per-tree class probabilities (n x n_classes)."""
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        matrix = np.asarray(features, dtype=float)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        total = np.zeros((len(matrix), self.n_classes_))
        for tree in self.trees_:
            probabilities = tree.predict_proba(matrix)
            if probabilities.shape[1] < self.n_classes_:
                padded = np.zeros((len(matrix), self.n_classes_))
                padded[:, : probabilities.shape[1]] = probabilities
                probabilities = padded
            total += probabilities
        return total / len(self.trees_)

    def predict(self, features) -> np.ndarray:
        """Most-probable class per row."""
        return np.argmax(self.predict_proba(features), axis=1)

    def decision_scores(self, features) -> np.ndarray:
        """Probability of the positive class — binary-classification helper."""
        probabilities = self.predict_proba(features)
        if probabilities.shape[1] == 1:
            return probabilities[:, 0]
        return probabilities[:, 1]
