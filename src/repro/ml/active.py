"""Active learning — the label-efficiency half of Fig. 2.

"Although very high precision and recall could require a large number of
training labels, applying active learning can reduce training labels by
orders of magnitude while maintaining similar linkage quality." (Sec. 2.2)

The :class:`ActiveLearner` wraps any classifier exposing ``fit`` and
``decision_scores`` and drives a label-acquisition loop against an oracle
(in this reproduction, the ground-truth world stands in for human labelers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Sequence

import numpy as np

SelectionStrategy = Callable[[np.ndarray, np.ndarray, np.random.Generator], np.ndarray]


def uncertainty_sampling(
    scores: np.ndarray, candidate_indices: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Rank unlabeled candidates by closeness of their score to 0.5.

    The items the current model is least sure about carry the most
    information; this is the strategy that produces the ~100x label savings
    in the Fig. 2 reproduction.
    """
    uncertainty = -np.abs(scores - 0.5)
    # Break ties randomly but deterministically given the generator.
    jitter = rng.random(len(scores)) * 1e-9
    order = np.argsort(-(uncertainty + jitter), kind="mergesort")
    return candidate_indices[order]


def margin_sampling(
    scores: np.ndarray, candidate_indices: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Binary margin sampling; identical ordering to uncertainty for two
    classes but kept separate for the ablation benchmark."""
    margin = np.abs(2.0 * scores - 1.0)
    jitter = rng.random(len(scores)) * 1e-9
    order = np.argsort(margin + jitter, kind="mergesort")
    return candidate_indices[order]


def random_sampling(
    scores: np.ndarray, candidate_indices: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random order — the passive-learning baseline."""
    permutation = rng.permutation(len(candidate_indices))
    return candidate_indices[permutation]


@dataclass
class ActiveLearner:
    """Pool-based active learning loop.

    Parameters
    ----------
    model_factory:
        Zero-argument callable returning a fresh classifier with ``fit`` and
        ``decision_scores``.
    strategy:
        Ranking function over unlabeled pool scores.
    batch_size:
        Labels acquired per round before the model is refit.
    seed:
        Seed for the tie-breaking/permutation generator.
    """

    model_factory: Callable[[], object]
    strategy: SelectionStrategy = uncertainty_sampling
    batch_size: int = 20
    seed: int = 0
    labeled_indices_: List[int] = field(default_factory=list, init=False)
    model_: object = field(default=None, init=False, repr=False)

    def run(
        self,
        pool_features,
        oracle: Callable[[int], int],
        label_budget: int,
        initial_indices: Sequence[int] = (),
    ) -> object:
        """Acquire up to ``label_budget`` labels from ``oracle`` and return
        the final fitted model.

        ``oracle(i)`` must return the 0/1 label of pool item ``i``.  If
        ``initial_indices`` is empty, the loop seeds itself with a random
        batch (stratification is the oracle's problem, as in practice).
        """
        matrix = np.asarray(pool_features, dtype=float)
        rng = np.random.default_rng(self.seed)
        n_pool = len(matrix)
        if label_budget > n_pool:
            label_budget = n_pool
        labeled = list(initial_indices)
        labels = {index: oracle(index) for index in labeled}
        if not labeled:
            seed_batch = rng.choice(n_pool, size=min(self.batch_size, label_budget), replace=False)
            for index in seed_batch:
                labeled.append(int(index))
                labels[int(index)] = oracle(int(index))
        self.model_ = self._fit(matrix, labeled, labels)
        while len(labeled) < label_budget:
            remaining = np.array(
                [index for index in range(n_pool) if index not in labels], dtype=int
            )
            if len(remaining) == 0:
                break
            scores = np.asarray(self.model_.decision_scores(matrix[remaining]))
            ranked = self.strategy(scores, remaining, rng)
            take = min(self.batch_size, label_budget - len(labeled))
            for index in ranked[:take]:
                labeled.append(int(index))
                labels[int(index)] = oracle(int(index))
            self.model_ = self._fit(matrix, labeled, labels)
        self.labeled_indices_ = labeled
        return self.model_

    def _fit(self, matrix: np.ndarray, labeled: List[int], labels: dict):
        model = self.model_factory()
        train_x = matrix[labeled]
        train_y = np.array([labels[index] for index in labeled], dtype=int)
        if len(np.unique(train_y)) < 2:
            # Degenerate single-class seed: fall back to a trivial model that
            # predicts the observed class until diversity arrives.
            observed = int(train_y[0]) if len(train_y) else 0
            model = _ConstantModel(observed)
            return model
        model.fit(train_x, train_y)
        return model


class _ConstantModel:
    """Placeholder model used while the labeled set is single-class."""

    def __init__(self, label: int):
        self._label = label

    def fit(self, features, labels):  # pragma: no cover - trivial
        return self

    def predict(self, features) -> np.ndarray:
        return np.full(len(np.atleast_2d(features)), self._label, dtype=int)

    def decision_scores(self, features) -> np.ndarray:
        return np.full(len(np.atleast_2d(features)), 0.5)
