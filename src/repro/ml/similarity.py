"""String and value similarity functions.

These are the attribute-wise similarity *features* behind the random-forest
entity-linkage models of Sec. 2.2 / Fig. 2: each candidate entity pair is
described by one similarity score per shared attribute, and a tree ensemble
learns the decision surface over those scores.
"""

from __future__ import annotations

import math
import re
from typing import Iterable, Optional, Sequence

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list:
    """Lowercase alphanumeric tokenization used by all token-based measures."""
    return _TOKEN_PATTERN.findall(text.lower())


def levenshtein(left: str, right: str) -> int:
    """Classic edit distance (insert/delete/substitute, unit costs)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    # Keep the shorter string in the inner dimension for memory locality.
    if len(right) < len(left):
        left, right = right, left
    previous = list(range(len(left) + 1))
    for row, right_char in enumerate(right, start=1):
        current = [row]
        for col, left_char in enumerate(left, start=1):
            substitution_cost = 0 if left_char == right_char else 1
            current.append(
                min(
                    previous[col] + 1,  # deletion
                    current[col - 1] + 1,  # insertion
                    previous[col - 1] + substitution_cost,
                )
            )
        previous = current
    return previous[-1]


def levenshtein_similarity(left: str, right: str) -> float:
    """Edit distance normalized to a [0, 1] similarity (1.0 = identical)."""
    if not left and not right:
        return 1.0
    longest = max(len(left), len(right))
    return 1.0 - levenshtein(left, right) / longest


def jaccard(left: Iterable, right: Iterable) -> float:
    """Set-overlap similarity; accepts any iterables of hashables."""
    left_set, right_set = set(left), set(right)
    if not left_set and not right_set:
        return 1.0
    union = left_set | right_set
    if not union:
        return 1.0
    return len(left_set & right_set) / len(union)


def token_jaccard(left: str, right: str) -> float:
    """Jaccard similarity over alphanumeric tokens of the two strings."""
    return jaccard(tokenize(left), tokenize(right))


def token_sort_similarity(left: str, right: str) -> float:
    """Edit similarity after sorting tokens; robust to word reordering.

    ``"Dong, Xin Luna"`` vs ``"Xin Luna Dong"`` scores 1.0.
    """
    left_sorted = " ".join(sorted(tokenize(left)))
    right_sorted = " ".join(sorted(tokenize(right)))
    return levenshtein_similarity(left_sorted, right_sorted)


def _jaro(left: str, right: str) -> float:
    if left == right:
        return 1.0
    len_left, len_right = len(left), len(right)
    if len_left == 0 or len_right == 0:
        return 0.0
    match_window = max(len_left, len_right) // 2 - 1
    match_window = max(match_window, 0)
    left_matched = [False] * len_left
    right_matched = [False] * len_right
    matches = 0
    for i, char in enumerate(left):
        start = max(0, i - match_window)
        end = min(i + match_window + 1, len_right)
        for j in range(start, end):
            if right_matched[j] or right[j] != char:
                continue
            left_matched[i] = True
            right_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i in range(len_left):
        if not left_matched[i]:
            continue
        while not right_matched[j]:
            j += 1
        if left[i] != right[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len_left + matches / len_right + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler(left: str, right: str, prefix_scale: float = 0.1) -> float:
    """Jaro-Winkler similarity: Jaro boosted for shared prefixes (<= 4 chars)."""
    jaro = _jaro(left, right)
    prefix_length = 0
    for left_char, right_char in zip(left[:4], right[:4]):
        if left_char != right_char:
            break
        prefix_length += 1
    return jaro + prefix_length * prefix_scale * (1.0 - jaro)


def monge_elkan(left: str, right: str) -> float:
    """Monge-Elkan similarity: for each left token, best Jaro-Winkler match
    among right tokens, averaged.  Suits multi-token names with local typos.
    """
    left_tokens = tokenize(left)
    right_tokens = tokenize(right)
    if not left_tokens and not right_tokens:
        return 1.0
    if not left_tokens or not right_tokens:
        return 0.0
    total = 0.0
    for left_token in left_tokens:
        total += max(jaro_winkler(left_token, right_token) for right_token in right_tokens)
    return total / len(left_tokens)


def numeric_similarity(left: Optional[float], right: Optional[float]) -> float:
    """Similarity for numeric attributes (years, runtimes, prices).

    Defined as ``1 / (1 + |left - right|)`` so that equal values score 1 and
    the score decays smoothly with the absolute difference.  Missing values
    score 0.
    """
    if left is None or right is None:
        return 0.0
    try:
        difference = abs(float(left) - float(right))
    except (TypeError, ValueError):
        return 0.0
    if math.isnan(difference):
        return 0.0
    return 1.0 / (1.0 + difference)


def set_containment(left: Iterable, right: Iterable) -> float:
    """|left ∩ right| / |left| — how much of ``left`` is explained by ``right``."""
    left_set, right_set = set(left), set(right)
    if not left_set:
        return 1.0
    return len(left_set & right_set) / len(left_set)


def value_similarity(left, right) -> float:
    """Dispatch similarity by value type; the default feature for linkage.

    Numeric pairs use :func:`numeric_similarity`; strings use a blend of
    character-level and token-level similarity; sequences use Jaccard.
    """
    if left is None or right is None:
        return 0.0
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return numeric_similarity(left, right)
    if isinstance(left, (list, tuple, set, frozenset)) and isinstance(
        right, (list, tuple, set, frozenset)
    ):
        return jaccard(left, right)
    left_text, right_text = str(left), str(right)
    blended = 0.5 * token_sort_similarity(left_text, right_text) + 0.5 * jaro_winkler(
        left_text.lower(), right_text.lower()
    )
    return blended


def feature_vector(
    left_record: dict, right_record: dict, attributes: Sequence[str]
) -> list:
    """Attribute-wise similarity features for a candidate record pair.

    Returns one float per attribute in ``attributes`` plus a trailing
    missing-value indicator count, matching the feature design described for
    the Fig. 2 linkage models (tree models take attribute-wise value
    similarities as features).
    """
    features = []
    missing = 0
    for attribute in attributes:
        left_value = left_record.get(attribute)
        right_value = right_record.get(attribute)
        if left_value is None or right_value is None:
            missing += 1
            features.append(0.0)
        else:
            features.append(value_similarity(left_value, right_value))
    features.append(float(missing) / max(len(attributes), 1))
    return features
