"""Evaluation metrics shared by every experiment in the reproduction.

The paper reports precision/recall for entity linkage (Fig. 2), accuracy for
semi-structured extraction (Fig. 3), F-measure for product attribute
extraction (Sec. 3), and hallucination/miss rates for LLM question answering
(Sec. 4).  All of those reduce to the primitives implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BinaryConfusion:
    """Confusion counts for a binary decision problem."""

    true_positive: int = 0
    false_positive: int = 0
    false_negative: int = 0
    true_negative: int = 0

    @property
    def precision(self) -> float:
        """Fraction of predicted positives that are correct (1.0 if none predicted)."""
        denominator = self.true_positive + self.false_positive
        if denominator == 0:
            return 1.0
        return self.true_positive / denominator

    @property
    def recall(self) -> float:
        """Fraction of actual positives that are found (1.0 if none exist)."""
        denominator = self.true_positive + self.false_negative
        if denominator == 0:
            return 1.0
        return self.true_positive / denominator

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        if p + r == 0:
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def accuracy(self) -> float:
        """Fraction of all decisions that are correct."""
        total = self.true_positive + self.false_positive + self.false_negative + self.true_negative
        if total == 0:
            return 1.0
        return (self.true_positive + self.true_negative) / total

    def __add__(self, other: "BinaryConfusion") -> "BinaryConfusion":
        return BinaryConfusion(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            false_negative=self.false_negative + other.false_negative,
            true_negative=self.true_negative + other.true_negative,
        )

    @staticmethod
    def from_predictions(y_true: Sequence[int], y_pred: Sequence[int]) -> "BinaryConfusion":
        """Build a confusion matrix from parallel 0/1 label sequences."""
        if len(y_true) != len(y_pred):
            raise ValueError(
                f"label sequences differ in length: {len(y_true)} vs {len(y_pred)}"
            )
        tp = fp = fn = tn = 0
        for truth, pred in zip(y_true, y_pred):
            if truth and pred:
                tp += 1
            elif not truth and pred:
                fp += 1
            elif truth and not pred:
                fn += 1
            else:
                tn += 1
        return BinaryConfusion(tp, fp, fn, tn)

    @staticmethod
    def from_sets(predicted: Iterable, expected: Iterable) -> "BinaryConfusion":
        """Build a confusion matrix from predicted vs expected item sets.

        Useful for extraction tasks where both sides are sets of triples and
        there is no meaningful notion of a true negative.
        """
        predicted_set = set(predicted)
        expected_set = set(expected)
        return BinaryConfusion(
            true_positive=len(predicted_set & expected_set),
            false_positive=len(predicted_set - expected_set),
            false_negative=len(expected_set - predicted_set),
            true_negative=0,
        )


def precision_recall(y_true: Sequence[int], y_pred: Sequence[int]) -> Tuple[float, float]:
    """Return ``(precision, recall)`` for 0/1 label sequences."""
    confusion = BinaryConfusion.from_predictions(y_true, y_pred)
    return confusion.precision, confusion.recall


def f1_score(y_true: Sequence[int], y_pred: Sequence[int]) -> float:
    """Return the F1 score for 0/1 label sequences."""
    return BinaryConfusion.from_predictions(y_true, y_pred).f1


def accuracy(y_true: Sequence, y_pred: Sequence) -> float:
    """Fraction of positions where the two sequences agree."""
    if len(y_true) != len(y_pred):
        raise ValueError(
            f"label sequences differ in length: {len(y_true)} vs {len(y_pred)}"
        )
    if not y_true:
        return 1.0
    matches = sum(1 for truth, pred in zip(y_true, y_pred) if truth == pred)
    return matches / len(y_true)


def precision_recall_curve(
    y_true: Sequence[int], scores: Sequence[float]
) -> List[Tuple[float, float, float]]:
    """Compute ``(threshold, precision, recall)`` triples at every score cut.

    Points are ordered from the highest threshold (few predictions, usually
    high precision) to the lowest (all predictions, recall 1).
    """
    if len(y_true) != len(scores):
        raise ValueError("y_true and scores must be parallel")
    order = np.argsort(scores)[::-1]
    total_positive = int(np.sum(np.asarray(y_true) != 0))
    curve: List[Tuple[float, float, float]] = []
    tp = fp = 0
    sorted_scores = np.asarray(scores, dtype=float)[order]
    sorted_truth = np.asarray(y_true)[order]
    for index in range(len(order)):
        if sorted_truth[index]:
            tp += 1
        else:
            fp += 1
        is_last = index == len(order) - 1
        # Only emit a point when the threshold actually changes.
        if is_last or sorted_scores[index + 1] != sorted_scores[index]:
            precision = tp / (tp + fp)
            recall = 1.0 if total_positive == 0 else tp / total_positive
            curve.append((float(sorted_scores[index]), precision, recall))
    return curve


def roc_auc(y_true: Sequence[int], scores: Sequence[float]) -> float:
    """Area under the ROC curve, computed with the rank statistic.

    Equivalent to the probability that a random positive scores above a
    random negative (ties counted as half).
    """
    truth = np.asarray(y_true) != 0
    values = np.asarray(scores, dtype=float)
    positives = values[truth]
    negatives = values[~truth]
    if len(positives) == 0 or len(negatives) == 0:
        return 0.5
    # Rank-sum formulation handles ties via average ranks.
    combined = np.concatenate([positives, negatives])
    ranks = _average_ranks(combined)
    positive_rank_sum = float(np.sum(ranks[: len(positives)]))
    n_pos, n_neg = len(positives), len(negatives)
    auc = (positive_rank_sum - n_pos * (n_pos + 1) / 2.0) / (n_pos * n_neg)
    return float(auc)


def _average_ranks(values: np.ndarray) -> np.ndarray:
    """1-based ranks with ties assigned the average of their rank range."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=float)
    sorted_values = values[order]
    i = 0
    while i < len(values):
        j = i
        while j + 1 < len(values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def macro_f1(per_class_confusions: Iterable[BinaryConfusion]) -> float:
    """Unweighted mean of per-class F1 scores."""
    f1s = [confusion.f1 for confusion in per_class_confusions]
    if not f1s:
        return 0.0
    return sum(f1s) / len(f1s)
