"""Knowledge lineage: the decision chain behind every accepted triple.

The paper's quality stage turns on being able to answer *why is this
triple in the graph?* — which sources claimed it, which extractor pulled
it out, which linkage merges rewrote its subject, and what the fusion
machinery (Sec. 2.4, Knowledge Vault / Knowledge-Based Trust) decided
about it and with what source-trust scores.  The :class:`LineageLedger`
records exactly that chain, one event list per (subject, predicate,
object) key, and :meth:`LineageLedger.explain` replays it.

Like the rest of :mod:`repro.obs`, the ledger is off by default and
enabled alongside ``REPRO_OBS``: the module-level recording helpers
(:func:`record_observation`, :func:`record_merge`, :func:`record_fusion`)
no-op while observability is disabled, so construction hot paths pay one
flag check.  Entity merges keep an alias map, so explaining a triple whose
subject absorbed other entities surfaces the events recorded under the
pre-merge subjects too.

Thread safety (audited for the concurrent serving layer): every public
:class:`LineageLedger` method takes the ledger lock, so recording from
parallel construction stages and explaining from server worker threads
are both safe without external synchronization.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.obs._flags import FLAGS

#: The ledger key for one triple: object is stringified so heterogeneous
#: value types (str vs int years) land on one chain.
TripleKey = Tuple[str, str, str]


def triple_key(subject: str, predicate: str, obj: object) -> TripleKey:
    """The canonical ledger key for a (subject, predicate, object)."""
    return (subject, predicate, str(obj))


@dataclass(frozen=True)
class LineageEvent:
    """One step of a triple's decision chain.

    ``kind`` is one of ``"observation"`` (a source/extractor produced the
    triple), ``"merge"`` (an entity-linkage merge touched its subject),
    ``"fusion"`` (a fusion verdict was reached), or ``"rejection"``
    (cleaning/fusion dropped it).  ``stage`` names the recording layer
    (``"graph.add_triple"``, ``"fusion.accu"``, ...); ``detail`` carries
    the kind-specific payload (source, extractor, confidence, verdict,
    source-trust scores...).
    """

    sequence: int
    kind: str
    stage: str
    detail: Mapping[str, object]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record."""
        return {
            "sequence": self.sequence,
            "kind": self.kind,
            "stage": self.stage,
            "detail": dict(self.detail),
        }

    def describe(self) -> str:
        """One human-readable line for reports."""
        parts = [f"[{self.kind}] {self.stage}"]
        for key in sorted(self.detail):
            parts.append(f"{key}={self.detail[key]}")
        return " ".join(parts)


@dataclass
class LineageChain:
    """The full decision chain for one triple, in recording order."""

    subject: str
    predicate: str
    object: str
    events: List[LineageEvent] = field(default_factory=list)

    @property
    def verdict(self) -> Optional[str]:
        """The latest fusion/rejection verdict, if any."""
        for event in reversed(self.events):
            if event.kind in ("fusion", "rejection"):
                return str(event.detail.get("verdict", event.kind))
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record."""
        return {
            "subject": self.subject,
            "predicate": self.predicate,
            "object": self.object,
            "verdict": self.verdict,
            "events": [event.to_dict() for event in self.events],
        }

    def describe(self) -> List[str]:
        """Human-readable lines: the triple, then one line per event."""
        lines = [f"({self.subject}, {self.predicate}, {self.object})"]
        for event in self.events:
            lines.append(f"  {event.describe()}")
        return lines


class LineageLedger:
    """Records per-triple decision chains and answers ``explain()``.

    Events accumulate per triple key; entity merges additionally maintain
    an alias map (``merged-away id -> surviving id``) so chains recorded
    under a pre-merge subject stay reachable from the post-merge triple.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: Dict[TripleKey, List[LineageEvent]] = {}
        self._entity_events: Dict[str, List[LineageEvent]] = {}
        self._absorbed: Dict[str, Set[str]] = {}  # survivor -> merged-away ids
        self._sequence = 0

    # ---- recording -----------------------------------------------------

    def _append(self, key: TripleKey, kind: str, stage: str, detail: Dict[str, object]) -> None:
        with self._lock:
            self._sequence += 1
            event = LineageEvent(self._sequence, kind, stage, detail)
            self._events.setdefault(key, []).append(event)

    def observation(
        self,
        subject: str,
        predicate: str,
        obj: object,
        *,
        source: str,
        extractor: Optional[str] = None,
        confidence: float = 1.0,
        stage: str = "observe",
    ) -> None:
        """Record that a source (via an extractor) produced the triple."""
        detail: Dict[str, object] = {"source": source, "confidence": round(float(confidence), 4)}
        if extractor is not None:
            detail["extractor"] = extractor
        self._append(triple_key(subject, predicate, obj), "observation", stage, detail)

    def observation_batch(
        self,
        items: Iterable[Tuple[str, str, object, str, Optional[str], float]],
        *,
        stage: str = "observe",
    ) -> None:
        """Record many observations under one lock acquisition.

        ``items`` are ``(subject, predicate, object, source, extractor,
        confidence)`` tuples.  Events get exactly the sequence numbers,
        kinds, and details that per-item :meth:`observation` calls would
        have produced — batch ingestion must leave a byte-identical
        ledger — but the lock is taken once per batch instead of once per
        triple.
        """
        with self._lock:
            events = self._events
            for subject, predicate, obj, source, extractor, confidence in items:
                detail: Dict[str, object] = {
                    "source": source,
                    "confidence": round(float(confidence), 4),
                }
                if extractor is not None:
                    detail["extractor"] = extractor
                self._sequence += 1
                events.setdefault((subject, predicate, str(obj)), []).append(
                    LineageEvent(self._sequence, "observation", stage, detail)
                )

    def merge(
        self,
        keep_id: str,
        drop_id: str,
        *,
        n_rewritten: int = 0,
        stage: str = "integrate.linkage",
    ) -> None:
        """Record an entity merge (``drop_id`` collapsed into ``keep_id``)."""
        with self._lock:
            self._sequence += 1
            event = LineageEvent(
                self._sequence,
                "merge",
                stage,
                {"kept": keep_id, "dropped": drop_id, "triples_rewritten": n_rewritten},
            )
            self._entity_events.setdefault(keep_id, []).append(event)
            absorbed = self._absorbed.setdefault(keep_id, set())
            absorbed.add(drop_id)
            # Transitivity: what drop_id had absorbed, keep_id now owns.
            absorbed.update(self._absorbed.pop(drop_id, set()))

    def fusion(
        self,
        subject: str,
        predicate: str,
        obj: object,
        *,
        verdict: str,
        confidence: float,
        source_trust: Optional[Mapping[str, float]] = None,
        extractor_trust: Optional[Mapping[str, float]] = None,
        stage: str = "fusion",
    ) -> None:
        """Record a fusion verdict (``"accepted"`` / ``"rejected"``)."""
        detail: Dict[str, object] = {
            "verdict": verdict,
            "confidence": round(float(confidence), 4),
        }
        if source_trust:
            detail["source_trust"] = {
                source: round(float(score), 4) for source, score in sorted(source_trust.items())
            }
        if extractor_trust:
            detail["extractor_trust"] = {
                name: round(float(score), 4) for name, score in sorted(extractor_trust.items())
            }
        self._append(triple_key(subject, predicate, obj), "fusion", stage, detail)

    def rejection(
        self,
        subject: str,
        predicate: str,
        obj: object,
        *,
        reason: str,
        stage: str = "cleaning",
    ) -> None:
        """Record that cleaning/validation dropped the triple."""
        self._append(
            triple_key(subject, predicate, obj),
            "rejection",
            stage,
            {"verdict": "rejected", "reason": reason},
        )

    # ---- inspection ----------------------------------------------------

    def _subject_closure(self, subject: str) -> List[str]:
        """The subject plus every entity id merged into it, transitively."""
        with self._lock:
            return [subject] + sorted(self._absorbed.get(subject, set()))

    def explain(self, subject: str, predicate: str, obj: object) -> LineageChain:
        """The decision chain for one triple (empty chain when untracked).

        Events recorded under subjects later merged into ``subject`` are
        included, as are the merge events themselves, so the chain reads
        observation(s) -> merge(s) -> fusion verdict in recording order.
        """
        key_object = str(obj)
        events: List[LineageEvent] = []
        with self._lock:
            subjects = [subject] + sorted(self._absorbed.get(subject, set()))
            for candidate in subjects:
                events.extend(self._events.get((candidate, predicate, key_object), []))
            events.extend(self._entity_events.get(subject, []))
        events.sort(key=lambda event: event.sequence)
        return LineageChain(subject=subject, predicate=predicate, object=key_object, events=events)

    def keys(self) -> List[TripleKey]:
        """Every tracked triple key, sorted."""
        with self._lock:
            return sorted(self._events)

    def fused_attributes(self, subject: str) -> List[str]:
        """Sorted attributes with any fusion verdict recorded for ``subject``.

        This is the re-fusion index the streaming ingestor consults when a
        cluster merge re-roots ``subject``: every ``(subject, attribute)``
        group the ledger has seen fused must be fused again under the new
        root.
        """
        attributes = set()
        with self._lock:
            for (event_subject, predicate, _), events in self._events.items():
                if event_subject != subject:
                    continue
                if any(event.kind == "fusion" for event in events):
                    attributes.add(predicate)
        return sorted(attributes)

    def fused_keys(self, verdict: str = "accepted") -> List[TripleKey]:
        """Triple keys whose latest fusion event carries ``verdict``."""
        matched = []
        with self._lock:
            for key, events in self._events.items():
                for event in reversed(events):
                    if event.kind == "fusion":
                        if event.detail.get("verdict") == verdict:
                            matched.append(key)
                        break
        return sorted(matched)

    def sample_chains(self, n: int = 5, prefer_fused: bool = True) -> List[LineageChain]:
        """Up to ``n`` chains for reporting, fused-and-accepted first."""
        chosen: List[TripleKey] = []
        if prefer_fused:
            chosen.extend(self.fused_keys("accepted")[:n])
        if len(chosen) < n:
            seen = set(chosen)
            for key in self.keys():
                if key not in seen:
                    chosen.append(key)
                    if len(chosen) >= n:
                        break
        return [self.explain(*key) for key in chosen]

    def export_state(self) -> Dict[str, object]:
        """The ledger's full mergeable state (pmap worker shipping).

        Events flatten to one list sorted by the worker-local sequence —
        recording order inside the worker — plus the absorbed-alias map.
        :meth:`merge_state` replays the list against a parent ledger.
        """
        records: List[Dict[str, object]] = []
        with self._lock:
            for key, events in self._events.items():
                for event in events:
                    records.append(
                        {
                            "scope": "triple",
                            "key": list(key),
                            "sequence": event.sequence,
                            "kind": event.kind,
                            "stage": event.stage,
                            "detail": dict(event.detail),
                        }
                    )
            for entity_id, events in self._entity_events.items():
                for event in events:
                    records.append(
                        {
                            "scope": "entity",
                            "key": entity_id,
                            "sequence": event.sequence,
                            "kind": event.kind,
                            "stage": event.stage,
                            "detail": dict(event.detail),
                        }
                    )
            absorbed = {
                survivor: sorted(dropped)
                for survivor, dropped in sorted(self._absorbed.items())
            }
        records.sort(key=lambda record: record["sequence"])  # type: ignore[arg-type, return-value]
        return {"events": records, "absorbed": absorbed}

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Replay a worker ledger's :meth:`export_state` into this one.

        Events get fresh sequence numbers from this ledger's counter, in
        shipped order, so merging worker states in input order gives every
        event the same number run over run — the chains read exactly as if
        the parent had recorded them itself.
        """
        with self._lock:
            for record in state.get("events", []):  # type: ignore[union-attr]
                self._sequence += 1
                event = LineageEvent(
                    self._sequence,
                    str(record["kind"]),
                    str(record["stage"]),
                    dict(record["detail"]),
                )
                if record["scope"] == "entity":
                    self._entity_events.setdefault(str(record["key"]), []).append(event)
                else:
                    subject, predicate, obj = record["key"]
                    self._events.setdefault((subject, predicate, obj), []).append(event)
            for survivor, dropped in sorted(state.get("absorbed", {}).items()):  # type: ignore[union-attr]
                self._absorbed.setdefault(survivor, set()).update(dropped)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def reset(self) -> None:
        """Forget every chain and alias (test/CLI isolation)."""
        with self._lock:
            self._events = {}
            self._entity_events = {}
            self._absorbed = {}
            self._sequence = 0


_GLOBAL_LEDGER = LineageLedger()


def get_ledger() -> LineageLedger:
    """The process-global lineage ledger."""
    return _GLOBAL_LEDGER


def lineage_enabled() -> bool:
    """Whether lineage recording is on (tied to the REPRO_OBS switch)."""
    return FLAGS.enabled


# ---------------------------------------------------------------------------
# One-line recording helpers (no-ops while observability is disabled).


def record_observation(
    subject: str,
    predicate: str,
    obj: object,
    *,
    source: str,
    extractor: Optional[str] = None,
    confidence: float = 1.0,
    stage: str = "observe",
) -> None:
    """Record an observation on the global ledger (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_LEDGER.observation(
            subject,
            predicate,
            obj,
            source=source,
            extractor=extractor,
            confidence=confidence,
            stage=stage,
        )


def record_observation_batch(
    items: Iterable[Tuple[str, str, object, str, Optional[str], float]],
    *,
    stage: str = "observe",
) -> None:
    """Record a batch of observations on the global ledger (no-op while
    disabled).  See :meth:`LineageLedger.observation_batch`."""
    if FLAGS.enabled:
        _GLOBAL_LEDGER.observation_batch(items, stage=stage)


def record_merge(
    keep_id: str, drop_id: str, *, n_rewritten: int = 0, stage: str = "integrate.linkage"
) -> None:
    """Record an entity merge on the global ledger (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_LEDGER.merge(keep_id, drop_id, n_rewritten=n_rewritten, stage=stage)


def record_fusion(
    subject: str,
    predicate: str,
    obj: object,
    *,
    verdict: str,
    confidence: float,
    source_trust: Optional[Mapping[str, float]] = None,
    extractor_trust: Optional[Mapping[str, float]] = None,
    stage: str = "fusion",
) -> None:
    """Record a fusion verdict on the global ledger (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_LEDGER.fusion(
            subject,
            predicate,
            obj,
            verdict=verdict,
            confidence=confidence,
            source_trust=source_trust,
            extractor_trust=extractor_trust,
            stage=stage,
        )


def record_rejection(
    subject: str, predicate: str, obj: object, *, reason: str, stage: str = "cleaning"
) -> None:
    """Record a cleaning rejection on the global ledger (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_LEDGER.rejection(subject, predicate, obj, reason=reason, stage=stage)


def explain(subject: str, predicate: str, obj: object) -> LineageChain:
    """Explain a triple from the global ledger (works even while disabled)."""
    return _GLOBAL_LEDGER.explain(subject, predicate, obj)
