"""Hierarchical tracing spans for the KG construction stack.

A *span* is one timed region of work (``with span("fusion.graphical"):``).
Spans nest: a thread-local stack links each span to its parent, so a
pipeline run produces a tree — the pipeline root, one child per stage,
and grandchildren for the instrumented hot paths each stage exercises.

Finished spans accumulate on the process-global :class:`Tracer` and export
as JSONL, one object per span::

    {"kind": "span", "trace_id": "t1", "span_id": "s3", "parent_id": "s1",
     "name": "stage.fuse_values", "started_unix": 1721312.5,
     "wall_seconds": 0.0123, "cpu_seconds": 0.0119, "tags": {...}}

When observability is disabled (the default) ``span()`` yields a shared
no-op span and costs one flag check; see :mod:`repro.obs.profiling` for
the enable/disable hooks.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.obs._flags import FLAGS


@dataclass
class Span:
    """One timed, tagged region of work."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str] = None
    started_unix: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    tags: Dict[str, object] = field(default_factory=dict)

    def set_tag(self, key: str, value: object) -> "Span":
        """Attach one tag (span is returned for chaining)."""
        self.tags[key] = value
        return self

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record for this span."""
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_unix": round(self.started_unix, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "tags": self.tags,
        }


class _NullSpan(Span):
    """The shared span handed out while observability is disabled.

    ``set_tag`` discards, so instrumented code never needs its own
    enabled-check before tagging.
    """

    def __init__(self) -> None:
        super().__init__(name="disabled", span_id="", trace_id="")

    def set_tag(self, key: str, value: object) -> "Span":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; owns the thread-local span stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: List[Span] = []
        self._next_id = 0
        self._next_trace = 0

    # ---- span lifecycle ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(self, name: str, **tags: object) -> Span:
        """Open a span as a child of the current one; caller must finish it."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_id += 1
            span_id = f"s{self._next_id}"
            if parent is None:
                self._next_trace += 1
                trace_id = f"t{self._next_trace}"
            else:
                trace_id = parent.trace_id
        opened = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=parent.span_id if parent is not None else None,
            started_unix=time.time(),
            tags=dict(tags),
        )
        stack.append(opened)
        return opened

    def finish_span(self, span_: Span, wall_seconds: float, cpu_seconds: float) -> None:
        """Close a span opened by :meth:`start_span` and record it."""
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        elif span_ in stack:  # pragma: no cover - unbalanced exit safety
            stack.remove(span_)
        span_.wall_seconds = wall_seconds
        span_.cpu_seconds = cpu_seconds
        with self._lock:
            self._finished.append(span_)

    def record_finished(self, spans: "List[Span]") -> None:
        """Adopt externally finished spans (a request trace being flushed).

        The serving layer buffers each request's spans on its
        :class:`~repro.serve.context.RequestContext` — the thread-local
        stack here cannot follow a request across pool threads — and
        flushes sampled requests through this in one append.
        """
        if not spans:
            return
        with self._lock:
            self._finished.extend(spans)

    # ---- inspection / export -------------------------------------------

    def spans(self, prefix: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order, optionally name-filtered."""
        with self._lock:
            finished = list(self._finished)
        if prefix is None:
            return finished
        return [span_ for span_ in finished if span_.name.startswith(prefix)]

    def export_jsonl(self) -> str:
        """All finished spans as JSONL (one span object per line)."""
        return "\n".join(
            json.dumps(span_.to_dict(), sort_keys=True) for span_ in self.spans()
        )

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns the span count."""
        finished = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span_ in finished:
                handle.write(json.dumps(span_.to_dict(), sort_keys=True) + "\n")
        return len(finished)

    def reset(self) -> None:
        """Drop all finished spans (open spans on other threads survive)."""
        with self._lock:
            self._finished = []


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    return _GLOBAL_TRACER.current_span()


@contextmanager
def span(name: str, **tags: object) -> Iterator[Span]:
    """Time a region of work as a span: ``with span("fusion.graphical"):``.

    Wall time uses ``time.perf_counter``; CPU time uses
    ``time.process_time`` (whole-process, so concurrent threads inflate
    it — fine for the single-threaded construction paths instrumented
    here).  Exceptions propagate after the span is finished and tagged
    with ``error``.
    """
    if not FLAGS.enabled:
        yield NULL_SPAN
        return
    tracer = _GLOBAL_TRACER
    opened = tracer.start_span(name, **tags)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield opened
    except BaseException as exc:
        opened.set_tag("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        tracer.finish_span(
            opened,
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
        )
