"""Hierarchical tracing spans for the KG construction stack.

A *span* is one timed region of work (``with span("fusion.graphical"):``).
Spans nest: a thread-local stack links each span to its parent, so a
pipeline run produces a tree — the pipeline root, one child per stage,
and grandchildren for the instrumented hot paths each stage exercises.

Finished spans accumulate on the process-global :class:`Tracer` and export
as JSONL, one object per span::

    {"kind": "span", "trace_id": "t1", "span_id": "s3", "parent_id": "s1",
     "name": "stage.fuse_values", "started_unix": 1721312.5,
     "wall_seconds": 0.0123, "cpu_seconds": 0.0119, "tags": {...}}

When observability is disabled (the default) ``span()`` yields a shared
no-op span and costs one flag check; see :mod:`repro.obs.profiling` for
the enable/disable hooks.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.obs._flags import FLAGS


@dataclass(frozen=True)
class TraceContext:
    """The serialized trace position handed to pmap workers.

    Everything a worker needs to attach its spans to the parent's tree:
    whether observability is on, the trace id, the span to parent under,
    and the sampling decision (made once at capture time and inherited —
    workers never re-roll it, so a sampled build ships from every worker
    and an unsampled one ships from none).  Frozen and picklable by
    construction; this is the whole cross-process protocol.
    """

    enabled: bool
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None
    sampled: bool = True

    @property
    def recording(self) -> bool:
        """Whether spans produced under this context should be kept."""
        return self.enabled and self.sampled


def capture_context() -> TraceContext:
    """The current thread's trace position, ready to cross a process gap."""
    if not FLAGS.enabled:
        return TraceContext(enabled=False)
    current = _GLOBAL_TRACER.current_span()
    if current is None:
        return TraceContext(enabled=True)
    return TraceContext(
        enabled=True, trace_id=current.trace_id, parent_span_id=current.span_id
    )


@dataclass
class Span:
    """One timed, tagged region of work."""

    name: str
    span_id: str
    trace_id: str
    parent_id: Optional[str] = None
    started_unix: float = 0.0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    tags: Dict[str, object] = field(default_factory=dict)

    def set_tag(self, key: str, value: object) -> "Span":
        """Attach one tag (span is returned for chaining)."""
        self.tags[key] = value
        return self

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record for this span."""
        return {
            "kind": "span",
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "started_unix": round(self.started_unix, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "tags": self.tags,
        }


class _NullSpan(Span):
    """The shared span handed out while observability is disabled.

    ``set_tag`` discards, so instrumented code never needs its own
    enabled-check before tagging.
    """

    def __init__(self) -> None:
        super().__init__(name="disabled", span_id="", trace_id="")

    def set_tag(self, key: str, value: object) -> "Span":
        return self


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans; owns the thread-local span stack."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._finished: List[Span] = []
        self._next_id = 0
        self._next_trace = 0

    # ---- span lifecycle ------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside any span)."""
        stack = self._stack()
        return stack[-1] if stack else None

    def start_span(
        self, name: str, parent_link: Optional[TraceContext] = None, **tags: object
    ) -> Span:
        """Open a span as a child of the current one; caller must finish it.

        ``parent_link`` attaches the span under an explicitly captured
        :class:`TraceContext` when this thread's own stack is empty — the
        thread-pool case, where pmap worker threads have no ancestry of
        their own but the submitting thread captured one.
        """
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            self._next_id += 1
            span_id = f"s{self._next_id}"
            if parent is not None:
                trace_id = parent.trace_id
                parent_id: Optional[str] = parent.span_id
            elif parent_link is not None and parent_link.trace_id is not None:
                trace_id = parent_link.trace_id
                parent_id = parent_link.parent_span_id
            else:
                self._next_trace += 1
                trace_id = f"t{self._next_trace}"
                parent_id = None
        opened = Span(
            name=name,
            span_id=span_id,
            trace_id=trace_id,
            parent_id=parent_id,
            started_unix=time.time(),
            tags=dict(tags),
        )
        stack.append(opened)
        return opened

    def finish_span(self, span_: Span, wall_seconds: float, cpu_seconds: float) -> None:
        """Close a span opened by :meth:`start_span` and record it."""
        stack = self._stack()
        if stack and stack[-1] is span_:
            stack.pop()
        elif span_ in stack:  # pragma: no cover - unbalanced exit safety
            stack.remove(span_)
        span_.wall_seconds = wall_seconds
        span_.cpu_seconds = cpu_seconds
        with self._lock:
            self._finished.append(span_)

    def record_finished(self, spans: "List[Span]") -> None:
        """Adopt externally finished spans (a request trace being flushed).

        The serving layer buffers each request's spans on its
        :class:`~repro.serve.context.RequestContext` — the thread-local
        stack here cannot follow a request across pool threads — and
        flushes sampled requests through this in one append.
        """
        if not spans:
            return
        with self._lock:
            self._finished.extend(spans)

    def adopt_shipped(
        self,
        records: Sequence[Mapping[str, object]],
        trace_id: Optional[str] = None,
        parent_span_id: Optional[str] = None,
    ) -> List[Span]:
        """Merge span records shipped back from a pmap process worker.

        Workers trace against a fresh tracer, so their ids (``s1``...,
        ``t1``) collide across workers and with the parent.  This re-ids
        every record: new span ids are assigned *in record order* under
        one lock acquisition, then parent links are remapped — children
        keep their worker-local parents (now renamed) and worker-root
        spans attach under ``parent_span_id``.  Merging chunks in input
        order therefore yields the same ids run over run, regardless of
        which worker process handled which chunk.

        Without a ``trace_id`` (the parent had no open span) the shipped
        tree gets a fresh trace id of its own.
        """
        if not records:
            return []
        with self._lock:
            renamed: Dict[str, str] = {}
            for record in records:
                self._next_id += 1
                renamed[str(record["span_id"])] = f"s{self._next_id}"
            if trace_id is None:
                self._next_trace += 1
                trace_id = f"t{self._next_trace}"
            adopted: List[Span] = []
            for record in records:
                old_parent = record.get("parent_id")
                if old_parent is not None and str(old_parent) in renamed:
                    parent_id: Optional[str] = renamed[str(old_parent)]
                else:
                    parent_id = parent_span_id
                adopted.append(
                    Span(
                        name=str(record["name"]),
                        span_id=renamed[str(record["span_id"])],
                        trace_id=trace_id,
                        parent_id=parent_id,
                        started_unix=float(record.get("started_unix", 0.0)),
                        wall_seconds=float(record.get("wall_seconds", 0.0)),
                        cpu_seconds=float(record.get("cpu_seconds", 0.0)),
                        tags=dict(record.get("tags", {})),  # type: ignore[arg-type]
                    )
                )
            self._finished.extend(adopted)
        return adopted

    # ---- inspection / export -------------------------------------------

    def spans(self, prefix: Optional[str] = None) -> List[Span]:
        """Finished spans in completion order, optionally name-filtered."""
        with self._lock:
            finished = list(self._finished)
        if prefix is None:
            return finished
        return [span_ for span_ in finished if span_.name.startswith(prefix)]

    def export_jsonl(self) -> str:
        """All finished spans as JSONL (one span object per line)."""
        return "\n".join(
            json.dumps(span_.to_dict(), sort_keys=True) for span_ in self.spans()
        )

    def write_jsonl(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns the span count."""
        finished = self.spans()
        with open(path, "w", encoding="utf-8") as handle:
            for span_ in finished:
                handle.write(json.dumps(span_.to_dict(), sort_keys=True) + "\n")
        return len(finished)

    def reset(self) -> None:
        """Drop all finished spans (open spans on other threads survive)."""
        with self._lock:
            self._finished = []


_GLOBAL_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-global tracer."""
    return _GLOBAL_TRACER


def install_worker_tracer() -> Tracer:
    """Swap in a fresh global tracer (pmap process workers only).

    A forked worker inherits the parent's tracer — finished spans, id
    counters, even other threads' span stacks.  Shipping must start from
    zero so worker-local ids are deterministic per chunk; ``span()`` and
    :func:`current_span` read the module global at call time, so the swap
    takes effect everywhere at once.
    """
    global _GLOBAL_TRACER
    _GLOBAL_TRACER = Tracer()
    return _GLOBAL_TRACER


def span_tree_signature(
    spans: Sequence[Mapping[str, object]],
    exclude: Sequence[str] = (),
) -> Tuple:
    """A timing-free, id-free shape signature of a span forest.

    Two runs of the same workload produce identical signatures even
    though ids and timings differ; the serial/process equivalence tests
    compare these.  Names in ``exclude`` are spliced out — their children
    are promoted to the excluded span's parent — so process-mode trees
    (which add ``pmap.worker`` spans) can be compared shape-for-shape
    against serial ones.  Siblings are sorted by signature, making the
    comparison insensitive to completion order.
    """
    excluded = set(exclude)
    known = {str(record["span_id"]) for record in spans}
    children: Dict[Optional[str], List[Mapping[str, object]]] = {}
    for record in spans:
        parent = record.get("parent_id")
        key = str(parent) if parent is not None and str(parent) in known else None
        children.setdefault(key, []).append(record)

    def child_signatures(span_id: Optional[str]) -> List[Tuple]:
        signatures: List[Tuple] = []
        for child in children.get(span_id, []):
            if str(child["name"]) in excluded:
                signatures.extend(child_signatures(str(child["span_id"])))
            else:
                signatures.append(
                    (
                        str(child["name"]),
                        tuple(sorted(child_signatures(str(child["span_id"])))),
                    )
                )
        return signatures

    return tuple(sorted(child_signatures(None)))


def current_span() -> Optional[Span]:
    """The innermost open span on this thread, if any."""
    return _GLOBAL_TRACER.current_span()


@contextmanager
def span(name: str, **tags: object) -> Iterator[Span]:
    """Time a region of work as a span: ``with span("fusion.graphical"):``.

    Wall time uses ``time.perf_counter``; CPU time uses
    ``time.process_time`` (whole-process, so concurrent threads inflate
    it — fine for the single-threaded construction paths instrumented
    here).  Exceptions propagate after the span is finished and tagged
    with ``error``.
    """
    if not FLAGS.enabled:
        yield NULL_SPAN
        return
    tracer = _GLOBAL_TRACER
    opened = tracer.start_span(name, **tags)
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        yield opened
    except BaseException as exc:
        opened.set_tag("error", f"{type(exc).__name__}: {exc}")
        raise
    finally:
        tracer.finish_span(
            opened,
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
        )
