"""The persistent run registry: cross-run memory for the build pipeline.

Dong's paper judges an industrial KG pipeline across *runs* — drift in
quality between yesterday's build and today's is the dominant failure
mode, and no single-run report can see it.  This module is the durable
side of the observability layer: every ``repro trace`` / ``repro
report`` / ``repro bench`` invocation appends one :class:`RunRecord`
(git SHA, config, per-stage wall/CPU, peak RSS, the full quality
snapshots, and flat metrics) to an append-only JSONL file under
``results/runs/``, and :meth:`RunRegistry.drift` answers "did the latest
run fall off the trajectory?" with a rolling median + MAD modified
z-score per metric.

The store is deliberately dumb — one JSON object per line, appended with
a single write — so concurrent CI jobs cannot corrupt more than the line
they were writing, and :meth:`RunRegistry.load` skips unparseable lines
instead of dying on them.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.quality import QualityDiff, QualitySnapshot, RegressionThresholds

#: Default registry directory, relative to the repo root / results dir.
RUNS_DIRNAME = "runs"

#: The single append-only store file inside the registry directory.
RUNS_BASENAME = "runs.jsonl"

#: Modified z-score threshold: |z| above this flags drift (the classic
#: Iglewicz–Hoaglin cutoff is 3.5; quality metrics move slowly, so 3.0).
DEFAULT_DRIFT_THRESHOLD = 3.0

#: How many prior runs the rolling median/MAD window covers.
DEFAULT_DRIFT_WINDOW = 10

#: Minimum prior runs before drift detection activates (a median over
#: fewer points flags noise, not drift).
MIN_DRIFT_HISTORY = 3


def git_sha() -> str:
    """The repo HEAD SHA, or ``"unknown"`` outside a git checkout."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except OSError:  # pragma: no cover - git missing entirely
        return "unknown"
    if output.returncode != 0:
        return "unknown"
    return output.stdout.strip()


@dataclass
class RunRecord:
    """One pipeline run's durable summary.

    ``kind`` is ``"trace"``, ``"report"``, or ``"bench"`` — which CLI
    surface produced it.  ``stages`` carries per-stage wall/CPU seconds,
    ``resources`` the process peak-RSS/CPU split, ``quality`` the full
    snapshot dicts, and ``metrics`` a flat name→value dict (bench
    throughputs, counter totals) that drift detection tracks alongside
    the quality scalars.
    """

    kind: str
    experiment_id: str
    run_id: str = ""
    git_sha: str = ""
    created_unix: float = 0.0
    config: Dict[str, object] = field(default_factory=dict)
    stages: List[Dict[str, object]] = field(default_factory=list)
    resources: Dict[str, object] = field(default_factory=dict)
    quality: List[Dict[str, object]] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        """The JSONL record (inverse of :meth:`from_dict`)."""
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "experiment_id": self.experiment_id,
            "git_sha": self.git_sha,
            "created_unix": round(self.created_unix, 3),
            "config": dict(self.config),
            "stages": [dict(stage) for stage in self.stages],
            "resources": dict(self.resources),
            "quality": [dict(record) for record in self.quality],
            "metrics": {name: float(v) for name, v in sorted(self.metrics.items())},
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, object]) -> "RunRecord":
        return cls(
            kind=str(record.get("kind", "trace")),
            experiment_id=str(record.get("experiment_id", "")),
            run_id=str(record.get("run_id", "")),
            git_sha=str(record.get("git_sha", "")),
            created_unix=float(record.get("created_unix", 0.0)),
            config=dict(record.get("config", {})),
            stages=[dict(stage) for stage in record.get("stages", [])],
            resources=dict(record.get("resources", {})),
            quality=[dict(q) for q in record.get("quality", [])],
            metrics={
                str(name): float(value)
                for name, value in dict(record.get("metrics", {})).items()
            },
        )

    def tracked_metrics(self) -> Dict[str, float]:
        """Every number drift detection follows for this run.

        Quality scalars key as ``quality.<snapshot>.<metric>`` so several
        graphs built in one run stay distinguishable; ``metrics`` entries
        pass through as-is.
        """
        tracked: Dict[str, float] = {}
        for record in self.quality:
            snapshot = QualitySnapshot.from_dict(dict(record))
            for metric, value in snapshot.scalar_metrics().items():
                tracked[f"quality.{snapshot.name}.{metric}"] = value
        tracked.update(self.metrics)
        return tracked


@dataclass(frozen=True)
class DriftAlert:
    """One metric that fell off (or jumped off) the rolling trajectory."""

    experiment_id: str
    run_id: str
    metric: str
    value: float
    median: float
    mad: float
    z_score: float
    direction: str  # "drop" (regression for higher-is-better) or "rise"

    def describe(self) -> str:
        return (
            f"{self.experiment_id} {self.metric}: {self.value:g} vs rolling "
            f"median {self.median:g} (MAD {self.mad:g}, |z|={abs(self.z_score):.1f}, "
            f"{self.direction})"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "run_id": self.run_id,
            "metric": self.metric,
            "value": self.value,
            "median": self.median,
            "mad": self.mad,
            "z_score": round(self.z_score, 3),
            "direction": self.direction,
        }


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def modified_z_score(value: float, history: Sequence[float]) -> Dict[str, float]:
    """Iglewicz–Hoaglin modified z-score of ``value`` against ``history``.

    ``z = 0.6745 * (value - median) / MAD``; robust to the outliers that
    make a plain mean/stddev gate useless on short, drifting series.
    With a zero MAD (a perfectly stable history) any deviation at all is
    infinite-z drift — reported as ±1e9 to stay JSON-representable.
    """
    median = _median(history)
    mad = _median([abs(point - median) for point in history])
    deviation = value - median
    if mad == 0.0:
        z = 0.0 if deviation == 0.0 else (1e9 if deviation > 0 else -1e9)
    else:
        z = 0.6745 * deviation / mad
    return {"median": median, "mad": mad, "z": z}


class RunRegistry:
    """The append-only JSONL run store plus its query/drift surface."""

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(directory, RUNS_BASENAME)
        #: Unparseable lines skipped by the last :meth:`load` (a truncated
        #: tail write, a merge artifact); surfaced, never fatal.
        self.skipped_lines = 0

    # ---- persistence ---------------------------------------------------

    def load(self) -> List[RunRecord]:
        """Every parseable record in append order; corrupt lines skipped."""
        self.skipped_lines = 0
        if not os.path.exists(self.path):
            return []
        records: List[RunRecord] = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                    if not isinstance(parsed, dict):
                        raise ValueError("not an object")
                    records.append(RunRecord.from_dict(parsed))
                except (ValueError, TypeError):
                    self.skipped_lines += 1
        return records

    def append(self, record: RunRecord) -> RunRecord:
        """Assign a run id and timestamp, append one line, return the record."""
        os.makedirs(self.directory, exist_ok=True)
        existing = self.load()
        record.run_id = record.run_id or f"r{len(existing) + self.skipped_lines + 1:04d}"
        record.created_unix = record.created_unix or time.time()
        record.git_sha = record.git_sha or git_sha()
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
        return record

    # ---- queries -------------------------------------------------------

    def get(self, run_id: str) -> Optional[RunRecord]:
        for record in self.load():
            if record.run_id == run_id:
                return record
        return None

    def for_experiment(self, experiment_id: str) -> List[RunRecord]:
        """Runs of one experiment, in append (chronological) order."""
        experiment_id = experiment_id.upper()
        return [
            record
            for record in self.load()
            if record.experiment_id.upper() == experiment_id
        ]

    def diff(
        self,
        run_id_a: str,
        run_id_b: str,
        thresholds: Optional[RegressionThresholds] = None,
    ) -> List[QualityDiff]:
        """Quality diffs of run B (current) against run A (baseline)."""
        run_a = self.get(run_id_a)
        run_b = self.get(run_id_b)
        if run_a is None or run_b is None:
            missing = run_id_a if run_a is None else run_id_b
            raise KeyError(f"run {missing!r} not in registry {self.path}")
        baseline_by_name = {
            str(record.get("name")): record for record in run_a.quality
        }
        diffs: List[QualityDiff] = []
        for record in run_b.quality:
            base = baseline_by_name.get(str(record.get("name")))
            if base is None:
                continue
            diffs.append(
                QualitySnapshot.from_dict(record).diff(
                    QualitySnapshot.from_dict(base), thresholds
                )
            )
        return diffs

    # ---- drift detection -----------------------------------------------

    def drift(
        self,
        experiment_id: Optional[str] = None,
        window: int = DEFAULT_DRIFT_WINDOW,
        threshold: float = DEFAULT_DRIFT_THRESHOLD,
    ) -> List[DriftAlert]:
        """Alerts for the latest run(s) vs their rolling trajectory.

        For each experiment (or just ``experiment_id``), the latest run's
        tracked metrics are scored against the modified z of the previous
        ``window`` runs; metrics with ``|z| > threshold`` alert.  Metrics
        need :data:`MIN_DRIFT_HISTORY` prior observations before they can
        alert, so young registries stay quiet instead of crying wolf.
        """
        records = self.load()
        by_experiment: Dict[str, List[RunRecord]] = {}
        for record in records:
            by_experiment.setdefault(record.experiment_id.upper(), []).append(record)
        if experiment_id is not None:
            wanted = experiment_id.upper()
            by_experiment = {
                key: value for key, value in by_experiment.items() if key == wanted
            }
        alerts: List[DriftAlert] = []
        for exp_id in sorted(by_experiment):
            history = by_experiment[exp_id]
            if len(history) < MIN_DRIFT_HISTORY + 1:
                continue
            latest = history[-1]
            prior = history[-(window + 1) : -1]
            series: Dict[str, List[float]] = {}
            for record in prior:
                for metric, value in record.tracked_metrics().items():
                    series.setdefault(metric, []).append(value)
            for metric, value in sorted(latest.tracked_metrics().items()):
                points = series.get(metric, [])
                if len(points) < MIN_DRIFT_HISTORY:
                    continue
                score = modified_z_score(value, points)
                if abs(score["z"]) <= threshold:
                    continue
                alerts.append(
                    DriftAlert(
                        experiment_id=exp_id,
                        run_id=latest.run_id,
                        metric=metric,
                        value=value,
                        median=score["median"],
                        mad=score["mad"],
                        z_score=score["z"],
                        direction="drop" if value < score["median"] else "rise",
                    )
                )
        return alerts


def default_runs_dir(results_dir: str) -> str:
    """The registry directory beneath a results directory."""
    return os.path.join(results_dir, RUNS_DIRNAME)


def stages_from_spans(
    spans: Sequence[Mapping[str, object]],
) -> List[Dict[str, object]]:
    """Per-stage wall/CPU rows from a traced run's span records.

    Pulls every ``stage.<name>`` span (the pipeline-stage level — fine
    enough to localize drift, coarse enough to stay one line per stage).
    """
    rows: List[Dict[str, object]] = []
    for record in spans:
        name = str(record.get("name", ""))
        if not name.startswith("stage."):
            continue
        rows.append(
            {
                "name": name[len("stage.") :],
                "wall_s": round(float(record.get("wall_seconds", 0.0)), 6),
                "cpu_s": round(float(record.get("cpu_seconds", 0.0)), 6),
            }
        )
    return rows
