"""Live build progress: the heartbeat of a running construction pipeline.

The paper's pipelines are long-lived and repeatedly re-run; between
"started" and "done" the operator deserves more than silence.
:class:`BuildProgress` tracks where a build is — pipeline, current stage,
items done vs. total, per-stage throughput, and an ETA when a total is
known — fed by two producers:

* :meth:`ConstructionPipeline.run` brackets each stage with
  ``begin_stage``/``end_stage``;
* :func:`repro.core.parallel.pmap` registers its item total and advances
  the count as worker chunks complete.

The state surfaces three ways: a carriage-return TTY progress line
(``repro trace --progress``), a JSONL heartbeat log
(``--progress-log``), and the ``GET /buildz`` endpoint when serving.

Like everything in :mod:`repro.obs`, the module-level helpers no-op while
observability is disabled — one flag check, no locks, no allocation — so
the heartbeat costs nothing on the benchmarked hot paths.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Dict, IO, List, Optional

from repro.obs._flags import FLAGS

#: Minimum seconds between rate-limited emissions (advance() calls).
DEFAULT_EMIT_INTERVAL = 0.25


class BuildProgress:
    """Thread-safe progress state for one process's builds.

    One instance tracks one pipeline at a time (nested pipelines are rare
    and the innermost wins); stages run strictly in sequence, matching
    :class:`~repro.core.pipeline.ConstructionPipeline` semantics.  All
    mutators are safe to call from pmap coordinator threads.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stream: Optional[IO[str]] = None
        self._log_handle: Optional[IO[str]] = None
        self._log_path: Optional[str] = None
        self._emit_interval = DEFAULT_EMIT_INTERVAL
        self._last_emit = 0.0
        self._line_width = 0
        self._reset_state_locked()

    def _reset_state_locked(self) -> None:
        self._pipeline: Optional[str] = None
        self._pipeline_started = 0.0
        self._n_stages = 0
        self._stage: Optional[str] = None
        self._stage_started = 0.0
        self._stage_done = 0
        self._stage_total: Optional[int] = None
        self._completed: List[Dict[str, object]] = []
        self._items_done = 0
        self._items_total = 0

    # ---- configuration -------------------------------------------------

    def configure(
        self,
        stream: Optional[IO[str]] = None,
        log_path: Optional[str] = None,
        emit_interval: Optional[float] = None,
    ) -> None:
        """Attach a TTY stream and/or a JSONL heartbeat log.

        ``stream`` gets a single self-overwriting progress line;
        ``log_path`` gets one JSON object per emission.  Either can be
        None (the default: track state silently for ``/buildz``).
        """
        with self._lock:
            self._stream = stream
            if self._log_handle is not None:
                self._log_handle.close()
                self._log_handle = None
            self._log_path = log_path
            if log_path is not None:
                self._log_handle = open(log_path, "a", encoding="utf-8")
            if emit_interval is not None:
                self._emit_interval = emit_interval

    def close(self) -> None:
        """Finish the TTY line and close the heartbeat log."""
        with self._lock:
            if self._stream is not None and self._line_width:
                self._stream.write("\n")
                self._stream.flush()
                self._line_width = 0
            self._stream = None
            if self._log_handle is not None:
                self._log_handle.close()
                self._log_handle = None
            self._log_path = None

    def reset(self) -> None:
        """Drop all state and detach outputs (CLI/test isolation)."""
        self.close()
        with self._lock:
            self._reset_state_locked()
            self._last_emit = 0.0

    # ---- producers -----------------------------------------------------

    def begin_pipeline(self, name: str, n_stages: int) -> None:
        with self._lock:
            self._reset_state_locked()
            self._pipeline = name
            self._pipeline_started = time.monotonic()
            self._n_stages = n_stages
            self._emit_locked(event="pipeline", force=True)

    def begin_stage(self, name: str, total: Optional[int] = None) -> None:
        with self._lock:
            self._stage = name
            self._stage_started = time.monotonic()
            self._stage_done = 0
            self._stage_total = total
            self._emit_locked(event="stage", force=True)

    def add_total(self, n: int) -> None:
        """Announce ``n`` upcoming items (a pmap fan-out registering work)."""
        with self._lock:
            if self._stage_total is None:
                self._stage_total = 0
            self._stage_total += n
            self._items_total += n

    def advance(self, n: int = 1) -> None:
        """Record ``n`` completed items (rate-limited emission)."""
        with self._lock:
            self._stage_done += n
            self._items_done += n
            self._emit_locked(event="advance")

    def end_stage(self, error: Optional[str] = None) -> None:
        with self._lock:
            if self._stage is None:
                return
            wall = time.monotonic() - self._stage_started
            record: Dict[str, object] = {
                "stage": self._stage,
                "wall_s": round(wall, 6),
                "items": self._stage_done,
            }
            if wall > 0 and self._stage_done:
                record["items_per_s"] = round(self._stage_done / wall, 3)
            if error is not None:
                record["error"] = error
            self._completed.append(record)
            self._stage = None
            self._stage_total = None
            self._stage_done = 0
            self._emit_locked(event="stage_done", force=True)

    def end_pipeline(self) -> None:
        with self._lock:
            self._emit_locked(event="pipeline_done", force=True)
            if self._stream is not None and self._line_width:
                self._stream.write("\n")
                self._stream.flush()
                self._line_width = 0
            self._pipeline = None
            self._stage = None

    # ---- consumers -----------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The current build state as a plain dict (the /buildz payload)."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, object]:
        now = time.monotonic()
        state: Dict[str, object] = {
            "active": self._pipeline is not None,
            "pipeline": self._pipeline,
            "n_stages": self._n_stages,
            "stages_done": len(self._completed),
            "stage": self._stage,
            "items_done": self._items_done,
            "items_total": self._items_total,
            "stages": list(self._completed),
        }
        if self._pipeline is not None:
            state["elapsed_s"] = round(now - self._pipeline_started, 3)
        if self._stage is not None:
            stage_wall = now - self._stage_started
            state["stage_items_done"] = self._stage_done
            state["stage_items_total"] = self._stage_total
            if stage_wall > 0 and self._stage_done:
                throughput = self._stage_done / stage_wall
                state["stage_items_per_s"] = round(throughput, 3)
                if self._stage_total is not None and self._stage_total > self._stage_done:
                    state["stage_eta_s"] = round(
                        (self._stage_total - self._stage_done) / throughput, 3
                    )
        return state

    # ---- emission ------------------------------------------------------

    def _emit_locked(self, event: str, force: bool = False) -> None:
        if self._stream is None and self._log_handle is None:
            return
        now = time.monotonic()
        if not force and now - self._last_emit < self._emit_interval:
            return
        self._last_emit = now
        state = self._snapshot_locked()
        if self._log_handle is not None:
            record = {"event": event, "unix": round(time.time(), 3), **state}
            record.pop("stages", None)  # per-line state, not the whole history
            self._log_handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._log_handle.flush()
        if self._stream is not None:
            line = self._render_line(state, event)
            padded = line.ljust(self._line_width)
            self._line_width = len(line)
            self._stream.write("\r" + padded)
            self._stream.flush()

    @staticmethod
    def _render_line(state: Dict[str, object], event: str) -> str:
        parts = [f"[build] {state.get('pipeline') or '-'}"]
        parts.append(f"stage {state.get('stages_done', 0)}/{state.get('n_stages', 0)}")
        stage = state.get("stage")
        if stage:
            parts.append(str(stage))
            total = state.get("stage_items_total")
            done = state.get("stage_items_done", 0)
            if total:
                parts.append(f"{done}/{total}")
            elif done:
                parts.append(str(done))
            throughput = state.get("stage_items_per_s")
            if throughput:
                parts.append(f"{throughput:.1f}/s")
            eta = state.get("stage_eta_s")
            if eta is not None:
                parts.append(f"eta {eta:.1f}s")
        if event == "pipeline_done":
            parts.append(f"done in {state.get('elapsed_s', 0.0)}s")
        return " ".join(parts)


_GLOBAL_PROGRESS = BuildProgress()


def get_progress() -> BuildProgress:
    """The process-global progress tracker (always present, often idle)."""
    return _GLOBAL_PROGRESS


# ---------------------------------------------------------------------------
# One-line producer helpers (no-ops while observability is disabled).


def begin_pipeline(name: str, n_stages: int) -> None:
    """Mark a pipeline start on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.begin_pipeline(name, n_stages)


def begin_stage(name: str, total: Optional[int] = None) -> None:
    """Mark a stage start on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.begin_stage(name, total=total)


def add_total(n: int) -> None:
    """Register upcoming items on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.add_total(n)


def advance(n: int = 1) -> None:
    """Record completed items on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.advance(n)


def end_stage(error: Optional[str] = None) -> None:
    """Mark a stage end on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.end_stage(error=error)


def end_pipeline() -> None:
    """Mark a pipeline end on the global tracker (no-op while disabled)."""
    if FLAGS.enabled:
        _GLOBAL_PROGRESS.end_pipeline()


def configure(
    log_path: Optional[str] = None,
    to_tty: bool = False,
    emit_interval: Optional[float] = None,
) -> None:
    """Point the global tracker at a heartbeat log and/or stderr TTY line."""
    stream = sys.stderr if to_tty else None
    _GLOBAL_PROGRESS.configure(
        stream=stream, log_path=log_path, emit_interval=emit_interval
    )
