"""SLO tracking: rolling-window RED metrics and error-budget burn rates.

The serving layer's counters and histograms are cumulative-since-start,
which answers "how much work happened" but not the operator's question —
"is the service healthy *right now*?".  This module adds the missing
time dimension:

* **RED per route** — Rate (requests/s over a rolling window), Errors
  (5xx-equivalents, plus the shed/degraded responses the degradation
  ladder substitutes for them), Duration (p50/p95/p99 read from the
  cumulative ``serve.route.<route>.seconds`` histograms the router
  already maintains);
* **declarative SLO targets** (:class:`SLOTarget`) — an availability
  objective (fraction of requests that must be served *healthy*: OK and
  undegraded) and a p95 latency bound per route;
* **error-budget burn rate** — ``unhealthy_ratio / (1 - availability)``:
  1.0 means the budget is being spent exactly as fast as the SLO allows,
  above 1.0 the ladder is degrading (or erroring) faster than the
  objective tolerates.  Because shed and stale-served responses count as
  budget spend, the burn rate *flips above 1.0 the moment the admission
  ladder engages* — which is exactly the pageable signal: the service is
  still answering, but it is paying for it.

The window is a ring of one-second buckets (no per-request allocation,
O(window) reads), and the process-global tracker mirrors the metrics
registry: router code records into it when observability is enabled, the
``/statusz`` endpoint and ``repro slo`` read :meth:`SLOTracker.summary`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional

from repro.obs.metrics import MetricsRegistry, get_registry

#: Routes tracked by default (mirrors ``repro.serve.router.ROUTES``;
#: restated here so obs never imports serve).
DEFAULT_ROUTES = ("lookup", "paths", "query", "ask")

#: Default rolling-window width, seconds.
DEFAULT_WINDOW_S = 60.0


@dataclass(frozen=True)
class SLOTarget:
    """One route's service-level objective.

    ``availability`` is the fraction of requests that must be *healthy* —
    status OK with no degradation; shed (429), stale/LM-shed serving, and
    5xx all spend error budget.  ``latency_p95_ms`` bounds the route's
    p95 as read from its cumulative latency histogram.
    """

    route: str
    availability: float = 0.99
    latency_p95_ms: float = 250.0

    def __post_init__(self) -> None:
        if not 0.0 < self.availability < 1.0:
            raise ValueError(
                f"availability must be in (0, 1), got {self.availability}"
            )
        if self.latency_p95_ms <= 0:
            raise ValueError(
                f"latency_p95_ms must be positive, got {self.latency_p95_ms}"
            )

    @property
    def error_budget(self) -> float:
        """The allowed unhealthy fraction (1 - availability)."""
        return 1.0 - self.availability


def default_targets() -> Dict[str, SLOTarget]:
    """The out-of-the-box per-route targets.

    ``ask`` gets a looser latency bound (it may traverse the LM path);
    everything else is an index read and should be fast.
    """
    targets = {route: SLOTarget(route=route) for route in DEFAULT_ROUTES}
    targets["ask"] = SLOTarget(route="ask", latency_p95_ms=500.0)
    return targets


class _RouteWindow:
    """A ring of one-second buckets for one route's rolling counts.

    Each bucket is ``[stamp, requests, errors, shed, degraded]`` where
    ``stamp`` is the integer second it covers; a record into a bucket
    whose stamp is stale zeroes it first, so idle seconds cost nothing
    and the ring never needs a sweeper thread.
    """

    __slots__ = ("window_s", "_size", "_buckets", "_lock")

    def __init__(self, window_s: float):
        self.window_s = float(window_s)
        self._size = max(2, int(window_s) + 1)
        self._buckets: List[List[float]] = [[-1, 0, 0, 0, 0] for _ in range(self._size)]
        self._lock = threading.Lock()

    def record(self, now: float, error: bool, shed: bool, degraded: bool) -> None:
        second = int(now)
        bucket = self._buckets[second % self._size]
        with self._lock:
            if bucket[0] != second:
                bucket[0] = second
                bucket[1] = bucket[2] = bucket[3] = bucket[4] = 0
            bucket[1] += 1
            if error:
                bucket[2] += 1
            if shed:
                bucket[3] += 1
            if degraded:
                bucket[4] += 1

    def totals(self, now: float) -> Dict[str, float]:
        """Counts over the trailing window ending at ``now``."""
        floor = now - self.window_s
        requests = errors = shed = degraded = 0.0
        with self._lock:
            for stamp, n, err, sh, deg in self._buckets:
                if stamp >= floor and stamp >= 0:
                    requests += n
                    errors += err
                    shed += sh
                    degraded += deg
        return {
            "requests": requests,
            "errors": errors,
            "shed": shed,
            "degraded": degraded,
        }


class SLOTracker:
    """Per-route rolling RED state plus SLO/burn computation.

    ``clock`` is injectable for deterministic tests; production uses
    ``time.monotonic`` (bucket stamps only ever compare to each other).
    """

    def __init__(
        self,
        targets: Optional[Mapping[str, SLOTarget]] = None,
        window_s: float = DEFAULT_WINDOW_S,
        clock: Callable[[], float] = time.monotonic,
    ):
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.window_s = float(window_s)
        self.targets: Dict[str, SLOTarget] = dict(targets or default_targets())
        self._clock = clock
        self._lock = threading.Lock()
        self._windows: Dict[str, _RouteWindow] = {}

    def _window(self, route: str) -> _RouteWindow:
        with self._lock:
            window = self._windows.get(route)
            if window is None:
                window = self._windows[route] = _RouteWindow(self.window_s)
            return window

    # ------------------------------------------------------------------

    def record(
        self,
        route: str,
        status: str,
        http_status: int,
        degraded: Optional[str] = None,
    ) -> None:
        """Fold one finished request into the route's rolling window."""
        self._window(route).record(
            self._clock(),
            error=http_status >= 500,
            shed=http_status == 429,
            degraded=status == "ok" and degraded is not None,
        )

    # ------------------------------------------------------------------

    def route_summary(
        self, route: str, registry: Optional[MetricsRegistry] = None
    ) -> Dict[str, object]:
        """One route's RED + SLO block (the ``/statusz`` unit of output)."""
        registry = registry or get_registry()
        totals = self._window(route).totals(self._clock())
        requests = totals["requests"]
        unhealthy = totals["errors"] + totals["shed"] + totals["degraded"]
        error_ratio = totals["errors"] / requests if requests else 0.0
        unhealthy_ratio = unhealthy / requests if requests else 0.0
        latency = registry.histogram(f"serve.route.{route}.seconds").summary()
        target = self.targets.get(route, SLOTarget(route=route))
        burn_rate = unhealthy_ratio / target.error_budget
        p95_ms = latency["p95"] * 1000.0
        return {
            "route": route,
            "window_s": self.window_s,
            # R — rate
            "rate_rps": round(requests / self.window_s, 4),
            "requests": int(requests),
            # E — errors (and the ladder's error-substitutes)
            "errors": int(totals["errors"]),
            "shed": int(totals["shed"]),
            "degraded": int(totals["degraded"]),
            "error_ratio": round(error_ratio, 6),
            "unhealthy_ratio": round(unhealthy_ratio, 6),
            # D — duration (cumulative histograms, ms)
            "p50_ms": round(latency["p50"] * 1000.0, 3),
            "p95_ms": round(p95_ms, 3),
            "p99_ms": round(latency["p99"] * 1000.0, 3),
            # the objective
            "target_availability": target.availability,
            "target_p95_ms": target.latency_p95_ms,
            "budget_burn_rate": round(burn_rate, 4),
            "burning": burn_rate > 1.0,
            "latency_ok": latency["count"] == 0 or p95_ms <= target.latency_p95_ms,
        }

    def summary(self, registry: Optional[MetricsRegistry] = None) -> Dict[str, object]:
        """Every tracked route's summary plus the worst burn rate.

        Routes with a declared target are always present (a silent route
        reports zero rate, not absence); routes that saw traffic without
        a target ride along with the default objective.
        """
        with self._lock:
            routes = sorted(set(self.targets) | set(self._windows))
        per_route = {
            route: self.route_summary(route, registry=registry) for route in routes
        }
        worst_burn = max(
            (block["budget_burn_rate"] for block in per_route.values()), default=0.0
        )
        return {
            "window_s": self.window_s,
            "routes": per_route,
            "worst_burn_rate": worst_burn,
            "burning": any(block["burning"] for block in per_route.values()),
        }

    def reset(self) -> None:
        """Drop all rolling state (targets survive; test isolation)."""
        with self._lock:
            self._windows = {}


_GLOBAL_TRACKER = SLOTracker()


def get_slo_tracker() -> SLOTracker:
    """The process-global SLO tracker (mirrors the metrics registry)."""
    return _GLOBAL_TRACKER


def reset_slo_tracker() -> None:
    """Clear the global tracker's rolling windows (test isolation)."""
    _GLOBAL_TRACKER.reset()
