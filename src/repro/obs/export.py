"""Machine-readable exports: Prometheus text format and stable JSON.

The registry and quality snapshots become scrapeable/diffable documents
here — the boundary where the observability layer meets dashboards, drift
alerts, and the ``repro report`` artifacts:

* :func:`render_prometheus` — the Prometheus text exposition format
  (``# TYPE`` lines, cumulative ``_bucket{le=...}`` histogram series,
  quality gauges labeled by snapshot), directly scrapeable;
* :func:`build_document` — one stable JSON document (versioned schema)
  bundling spans, the metrics snapshot, quality snapshots, lineage
  samples, and an optional baseline diff.

Metric names are sanitized to Prometheus conventions (``repro_`` prefix,
``[a-zA-Z0-9_]`` only); empty histograms export zero-count series rather
than raising.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Mapping, Optional, Sequence

from repro.obs.metrics import MetricsRegistry, get_registry

#: Schema version of the JSON document; bump on breaking layout changes.
DOCUMENT_VERSION = 1

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str) -> str:
    """A Prometheus-legal metric name: ``repro_`` prefix, dots to underscores."""
    sanitized = _NAME_RE.sub("_", name)
    if not sanitized.startswith("repro_"):
        sanitized = f"repro_{sanitized}"
    return sanitized


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def render_prometheus(
    registry: Optional[MetricsRegistry] = None,
    quality_snapshots: Optional[Sequence[Mapping[str, object]]] = None,
) -> str:
    """The registry (+ optional quality snapshot dicts) as Prometheus text.

    Counters and gauges export one sample each; histograms export the
    full cumulative ``_bucket`` series plus ``_sum``/``_count``.  Quality
    snapshots export as gauges labeled ``{snapshot="<name>"}`` so several
    graphs built in one process stay distinguishable.
    """
    registry = registry or get_registry()
    snapshot = registry.snapshot()
    lines: List[str] = []
    # The exposition format allows one `# TYPE` per metric family: a
    # family appearing with several label sets (each quality snapshot is
    # one label set of the same gauges) still gets exactly one TYPE line,
    # emitted before the family's first sample.
    typed: set = set()

    def declare(metric: str, kind: str) -> None:
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for name, value in snapshot["counters"].items():
        metric = prometheus_name(name)
        declare(metric, "counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, value in snapshot["gauges"].items():
        metric = prometheus_name(name)
        declare(metric, "gauge")
        lines.append(f"{metric} {_format_value(value)}")
    for name, state in registry.histogram_states().items():
        metric = prometheus_name(name)
        declare(metric, "histogram")
        cumulative = 0
        bounds: Sequence[float] = state["bounds"]  # type: ignore[assignment]
        counts: Sequence[int] = state["bucket_counts"]  # type: ignore[assignment]
        for bound, bucket_count in zip(bounds, counts):
            cumulative += bucket_count
            lines.append(f'{metric}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {state["count"]}')
        lines.append(f"{metric}_sum {_format_value(float(state['sum']))}")
        lines.append(f"{metric}_count {state['count']}")
    for record in quality_snapshots or []:
        label = _escape_label(str(record.get("name", "kg")))
        for key in ("n_triples", "n_entities", "fusion_accepted", "fusion_rejected"):
            metric = prometheus_name(f"quality_{key}")
            declare(metric, "gauge")
            lines.append(f'{metric}{{snapshot="{label}"}} {_format_value(float(record.get(key, 0) or 0))}')
        for key in ("coverage", "accuracy"):
            value = record.get(key)
            if value is None:
                continue
            metric = prometheus_name(f"quality_{key}")
            declare(metric, "gauge")
            lines.append(f'{metric}{{snapshot="{label}"}} {_format_value(float(value))}')
    return "\n".join(lines) + ("\n" if lines else "")


def build_document(
    experiment_id: str,
    spans: Sequence[Mapping[str, object]],
    metrics_snapshot: Mapping[str, object],
    quality_snapshots: Sequence[Mapping[str, object]] = (),
    lineage_samples: Sequence[Mapping[str, object]] = (),
    baseline_diff: Optional[Mapping[str, object]] = None,
    slo: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The stable JSON document for one observed run.

    Key order and nesting are part of the contract: CI diffs these
    documents, so additions must be backward-compatible (new keys only)
    and breaking changes must bump :data:`DOCUMENT_VERSION`.  ``slo`` is
    such an addition: the serving SLO summary for runs that drove the
    serving layer, ``None`` for everything else.
    """
    return {
        "version": DOCUMENT_VERSION,
        "experiment_id": experiment_id,
        "spans": [dict(record) for record in spans],
        "metrics": dict(metrics_snapshot),
        "quality": [dict(record) for record in quality_snapshots],
        "lineage": [dict(record) for record in lineage_samples],
        "baseline_diff": dict(baseline_diff) if baseline_diff is not None else None,
        "slo": dict(slo) if slo else None,
    }


def dump_document(document: Mapping[str, object]) -> str:
    """Serialize a document deterministically (sorted keys, stable floats)."""
    return json.dumps(document, sort_keys=True, indent=2) + "\n"
