"""Profiling hooks: the on/off switch plus decorator/context instruments.

``@profiled("extract.distant")`` wraps a callable so every invocation
feeds *both* sides of the observability layer: a span (hierarchy + tags)
and the metrics registry (a ``<name>.calls`` counter and a
``<name>.seconds`` latency histogram).  ``profile_block`` is the same
instrument as a context manager for regions that are not a whole function.

The disabled path is near-zero cost: one attribute load and a branch per
call, no object allocation — cheap enough to leave the decorators on hot
paths permanently (the <5% overhead budget of the perf benchmarks).

Enablement is process-global::

    from repro import obs

    obs.enable()            # or REPRO_OBS=1 in the environment
    ... run workload ...
    print(obs.get_registry().snapshot())
    obs.disable()

``enabled_scope()`` brackets enable/reset/disable for tests.
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional, TypeVar

from repro.obs._flags import FLAGS
from repro.obs.metrics import get_registry
from repro.obs.tracing import get_tracer, span

CallableT = TypeVar("CallableT", bound=Callable)


def enable() -> None:
    """Turn observability on (spans, metrics, profiling all record)."""
    FLAGS.enabled = True


def disable() -> None:
    """Turn observability off (instrumentation reverts to no-ops)."""
    FLAGS.enabled = False


def enabled() -> bool:
    """Whether observability is currently on."""
    return FLAGS.enabled


def reset_all() -> None:
    """Clear every global collector: tracer, registry, ledger, snapshots.

    The one call CLI entry points (``repro trace`` / ``repro report``) and
    tests make so back-to-back runs in one process never bleed state.
    """
    from repro.obs import lineage, progress, quality, slo

    get_tracer().reset()
    get_registry().reset()
    lineage.get_ledger().reset()
    quality.reset_snapshots()
    slo.reset_slo_tracker()
    progress.get_progress().reset()


def rusage() -> dict:
    """Peak RSS and CPU split for this process (the run-registry resources).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here to kilobytes so registry entries compare across platforms.
    """
    import resource
    import sys

    usage = resource.getrusage(resource.RUSAGE_SELF)
    peak_rss_kb = usage.ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak_rss_kb //= 1024
    return {
        "peak_rss_kb": int(peak_rss_kb),
        "cpu_user_s": round(usage.ru_utime, 6),
        "cpu_system_s": round(usage.ru_stime, 6),
    }


# ---------------------------------------------------------------------------
# pmap process-worker shipping: fresh collectors in, a merge payload out.


def worker_begin() -> None:
    """Enter shipping mode inside a pmap process worker.

    Installs fresh collectors (a forked worker inherits the parent's
    tracer, registry, and ledger wholesale) and enables observability (a
    spawned worker starts with it off).  Called once per *chunk*, not per
    worker process, so the shipped payload is chunk-scoped — which is what
    makes the parent-side merge deterministic regardless of which worker
    handled which chunk.
    """
    from repro.obs import lineage, quality, tracing

    tracing.install_worker_tracer()
    get_registry().reset()
    lineage.get_ledger().reset()
    quality.reset_snapshots()
    FLAGS.enabled = True


def worker_collect() -> dict:
    """Export the worker's chunk-scoped observations and disable obs.

    The returned payload crosses the process boundary with the chunk's
    results; :func:`worker_merge` folds it into the parent's collectors.
    """
    from repro.obs import lineage, quality, tracing

    payload = {
        "spans": [finished.to_dict() for finished in tracing.get_tracer().spans()],
        "metrics": get_registry().export_state(),
        "lineage": lineage.get_ledger().export_state(),
        "quality": [snapshot.to_dict() for snapshot in quality.snapshots()],
    }
    FLAGS.enabled = False
    return payload


def worker_merge(payload: dict, context=None) -> None:
    """Fold one worker payload into the parent's global collectors.

    Payloads must be merged in chunk input order — span ids and lineage
    sequence numbers are assigned at merge time, so the order of merges
    *is* the determinism guarantee.  ``context`` is the
    :class:`~repro.obs.tracing.TraceContext` the workers inherited;
    shipped worker-root spans attach under its parent span.
    """
    from repro.obs import lineage, quality, tracing

    tracing.get_tracer().adopt_shipped(
        payload.get("spans", []),
        trace_id=context.trace_id if context is not None else None,
        parent_span_id=context.parent_span_id if context is not None else None,
    )
    get_registry().merge_state(payload.get("metrics", {}))
    lineage.get_ledger().merge_state(payload.get("lineage", {"events": []}))
    quality.merge_shipped(payload.get("quality", []))


@contextmanager
def enabled_scope(reset: bool = True) -> Iterator[None]:
    """Enable observability for a block, restoring the previous state.

    With ``reset`` (default) the tracer, registry, lineage ledger, and
    quality-snapshot holder are cleared on entry *and* exit, so
    surrounding code — e.g. other pytest tests — never sees spans,
    counts, or chains from the block.
    """
    previous = FLAGS.enabled
    if reset:
        reset_all()
    FLAGS.enabled = True
    try:
        yield
    finally:
        FLAGS.enabled = previous
        if reset:
            reset_all()


def profiled(name: str, **tags: object) -> Callable[[CallableT], CallableT]:
    """Decorate a callable with a span + calls counter + latency histogram.

    ``name`` keys all three: the span is ``name``, the counter
    ``<name>.calls``, the histogram ``<name>.seconds``.  Extra keyword
    tags are attached to every span the wrapper emits.
    """

    def decorate(func: CallableT) -> CallableT:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            if not FLAGS.enabled:
                return func(*args, **kwargs)
            registry = get_registry()
            started = time.perf_counter()
            try:
                with span(name, **tags):
                    return func(*args, **kwargs)
            finally:
                registry.counter(f"{name}.calls").inc()
                registry.histogram(f"{name}.seconds").observe(
                    time.perf_counter() - started
                )

        wrapper.__profiled_name__ = name
        return wrapper  # type: ignore[return-value]

    return decorate


@contextmanager
def profile_block(name: str, **tags: object) -> Iterator[None]:
    """``profiled`` as a context manager, for sub-function regions."""
    if not FLAGS.enabled:
        yield
        return
    registry = get_registry()
    started = time.perf_counter()
    try:
        with span(name, **tags):
            yield
    finally:
        registry.counter(f"{name}.calls").inc()
        registry.histogram(f"{name}.seconds").observe(time.perf_counter() - started)
