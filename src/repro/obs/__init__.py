"""Observability for the KG construction stack: spans, metrics, profiling.

The innovation cycle the paper describes (feasibility → quality →
repeatability → scalability → ubiquity) turns on being able to *measure*
each stage; this package is that measurement layer:

* :mod:`repro.obs.tracing` — hierarchical spans with wall/CPU timing,
  tags, and JSONL export (``with span("fusion.graphical"):``);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms with p50/p95/p99 summaries;
* :mod:`repro.obs.profiling` — ``@profiled`` decorator and
  ``profile_block`` context manager feeding both at once, plus the
  global enable/disable switch.

Everything is off by default and near-free while off; enable with
:func:`enable` or ``REPRO_OBS=1``.  ``repro trace <EXPERIMENT_ID>`` runs
an experiment under this layer and writes ``results/trace_<id>.jsonl``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    gauge,
    get_registry,
    observe,
)
from repro.obs.profiling import (
    disable,
    enable,
    enabled,
    enabled_scope,
    profile_block,
    profiled,
)
from repro.obs.tracing import Span, Tracer, current_span, get_tracer, span

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "gauge",
    "get_registry",
    "get_tracer",
    "observe",
    "profile_block",
    "profiled",
    "span",
]
