"""Observability for the KG construction stack: spans, metrics, lineage.

The innovation cycle the paper describes (feasibility → quality →
repeatability → scalability → ubiquity) turns on being able to *measure*
each stage; this package is that measurement layer:

* :mod:`repro.obs.tracing` — hierarchical spans with wall/CPU timing,
  tags, and JSONL export (``with span("fusion.graphical"):``);
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges, and fixed-bucket histograms with p50/p95/p99 summaries;
* :mod:`repro.obs.profiling` — ``@profiled`` decorator and
  ``profile_block`` context manager feeding both at once, plus the
  global enable/disable switch;
* :mod:`repro.obs.lineage` — the per-triple decision ledger
  (observations, merges, fusion verdicts) behind ``explain(triple)``;
* :mod:`repro.obs.quality` — graph-quality snapshots with run-over-run
  regression diffs, folded into the registry as ``quality.*`` gauges;
* :mod:`repro.obs.export` — Prometheus text format and the stable JSON
  run document;
* :mod:`repro.obs.progress` — the live build-progress heartbeat (TTY
  line, JSONL log, the ``/buildz`` payload);
* :mod:`repro.obs.runs` — the persistent run registry under
  ``results/runs/`` with rolling median+MAD drift detection.

Observability crosses process boundaries: ``pmap(mode="process")``
workers inherit a :class:`~repro.obs.tracing.TraceContext`, buffer their
spans/counters/lineage locally, and ship them back for a deterministic
in-order merge (see DESIGN.md §10), so a process-parallel build traces
exactly like a serial one plus ``pmap.worker`` child spans.

Everything is off by default and near-free while off; enable with
:func:`enable` or ``REPRO_OBS=1``.  ``repro trace <EXPERIMENT_ID>`` runs
an experiment under this layer and writes ``results/trace_<id>.jsonl``;
``repro report <EXPERIMENT_ID>`` additionally writes a full run report
(markdown + JSON + Prometheus) with baseline regression gating.
"""

from repro.obs.export import build_document, render_prometheus
from repro.obs.lineage import (
    LineageChain,
    LineageEvent,
    LineageLedger,
    explain,
    get_ledger,
    record_fusion,
    record_merge,
    record_observation,
    record_rejection,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count,
    gauge,
    get_registry,
    observe,
)
from repro.obs.profiling import (
    disable,
    enable,
    enabled,
    enabled_scope,
    profile_block,
    profiled,
    reset_all,
    rusage,
)
from repro.obs.progress import BuildProgress, get_progress
from repro.obs.quality import (
    QualityDiff,
    QualitySnapshot,
    RegressionThresholds,
    capture,
)
from repro.obs.runs import DriftAlert, RunRecord, RunRegistry
from repro.obs.tracing import (
    Span,
    TraceContext,
    Tracer,
    capture_context,
    current_span,
    get_tracer,
    span,
    span_tree_signature,
)

__all__ = [
    "BuildProgress",
    "Counter",
    "DriftAlert",
    "Gauge",
    "Histogram",
    "LineageChain",
    "LineageEvent",
    "LineageLedger",
    "MetricsRegistry",
    "QualityDiff",
    "QualitySnapshot",
    "RegressionThresholds",
    "RunRecord",
    "RunRegistry",
    "Span",
    "TraceContext",
    "Tracer",
    "build_document",
    "capture",
    "capture_context",
    "count",
    "current_span",
    "disable",
    "enable",
    "enabled",
    "enabled_scope",
    "explain",
    "gauge",
    "get_ledger",
    "get_progress",
    "get_registry",
    "get_tracer",
    "observe",
    "profile_block",
    "profiled",
    "record_fusion",
    "record_merge",
    "record_observation",
    "record_rejection",
    "render_prometheus",
    "reset_all",
    "rusage",
    "span",
    "span_tree_signature",
]
