"""A process-global metrics registry: counters, gauges, histograms.

The registry is the numeric side of the observability layer: spans say
*where time went*, the registry says *how much work happened* — triples
ingested, candidate pairs generated, claims fused, extraction calls — and
how operation latencies distribute (fixed-bucket histograms with
p50/p95/p99 summaries).

Snapshot/reset semantics are deliberately pytest-friendly: ``snapshot()``
returns plain nested dicts (safe to assert against, JSON-serializable) and
``reset()`` restores a blank registry so tests cannot leak counts into
each other.

Module-level helpers (:func:`count`, :func:`gauge`, :func:`observe`) write
to the global registry and no-op when observability is disabled, so
instrumented call sites stay one line with near-zero disabled cost.
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs._flags import FLAGS

#: Default histogram bucket upper bounds (seconds-oriented, exponential):
#: fine resolution around fast operations, coarse at the tail.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
)


class Counter:
    """A monotonically increasing count.

    Thread-safe: ``value += amount`` is a read-modify-write, and the
    serving layer increments the same counter from many worker threads —
    without the lock, concurrent ``inc`` calls lose updates.
    """

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self.value += amount


class Gauge:
    """A point-in-time value (last write wins). Thread-safe."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Record the current value."""
        value = float(value)
        with self._lock:
            self.value = value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    Observations land in the first bucket whose upper bound is >= the
    value; an overflow bucket catches the rest.  Percentiles interpolate
    linearly within the winning bucket (clamped to the observed min/max,
    which are tracked exactly), so summaries stay honest at both tails
    without storing raw observations.

    Thread-safe: ``observe`` updates five fields that must move together
    (bucket, count, sum, min, max); summaries read them under the same
    lock so concurrent server threads never see a torn histogram.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "count", "total", "min", "max", "_lock")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(buckets or DEFAULT_BUCKETS))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self.bucket_counts[index] += 1
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def percentile(self, quantile: float) -> float:
        """Interpolated value at ``quantile`` in [0, 1].

        An empty histogram answers 0.0 — never raises — so summary and
        export paths stay safe on instruments that were registered but
        never observed (e.g. an error counter's latency twin).
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile}")
        with self._lock:
            return self._percentile_locked(quantile)

    def _percentile_locked(self, quantile: float) -> float:
        if self.count == 0:
            return 0.0
        rank = quantile * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= rank:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = self.bounds[index] if index < len(self.bounds) else self.max
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + fraction * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max  # pragma: no cover - guarded by the loop above

    def summary(self) -> Dict[str, float]:
        """Count, sum, mean, exact min/max, and p50/p95/p99.

        Empty histograms return all-zero summaries (the sentinel
        ``min=inf``/``max=-inf`` internals never leak to callers).
        """
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                        "p50": 0.0, "p95": 0.0, "p99": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "mean": self.total / self.count,
                "min": self.min,
                "max": self.max,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }

    def state(self) -> Dict[str, object]:
        """Raw bucket state for exporters (Prometheus needs the buckets).

        Empty histograms report zeroed extremes, not the inf sentinels.
        """
        with self._lock:
            return {
                "bounds": list(self.bounds),
                "bucket_counts": list(self.bucket_counts),
                "count": self.count,
                "sum": self.total,
                "min": self.min if self.count else 0.0,
                "max": self.max if self.count else 0.0,
            }

    def merge_state(self, state: Mapping[str, object]) -> None:
        """Fold another histogram's :meth:`state` into this one.

        The pmap shipping path: workers export per-chunk states and the
        parent merges them here.  Bucket bounds must match exactly —
        merging across different bucket layouts would silently misbin.
        Empty shipped states contribute nothing (their zeroed min/max
        sentinels must not clamp the real extremes).
        """
        bounds = tuple(state["bounds"])  # type: ignore[arg-type]
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge state with bounds "
                f"{bounds} into bounds {self.bounds}"
            )
        shipped_count = int(state["count"])  # type: ignore[arg-type]
        with self._lock:
            for index, bucket_count in enumerate(state["bucket_counts"]):  # type: ignore[arg-type]
                self.bucket_counts[index] += int(bucket_count)
            self.count += shipped_count
            self.total += float(state["sum"])  # type: ignore[arg-type]
            if shipped_count:
                self.min = min(self.min, float(state["min"]))  # type: ignore[arg-type]
                self.max = max(self.max, float(state["max"]))  # type: ignore[arg-type]


class MetricsRegistry:
    """Named counters, gauges, and histograms.

    The registry lock guards instrument creation; each instrument carries
    its own lock for updates, so high-rate serving threads contend on
    their one metric, not on the whole registry.

    Instruments are created on first use (``registry.counter("x").inc()``)
    and a name belongs to exactly one instrument kind — re-registering
    ``"x"`` as a gauge after it was a counter raises, catching the silent
    metric collisions that make dashboards lie.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ValueError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use).

        Lock-free on the hit path: a dict read is atomic under the GIL
        and ``reset()`` swaps in a fresh dict rather than mutating, so
        the worst race is two threads both taking the creation path —
        which the double-check under the lock resolves.  Serving-path
        metric calls hit this per request; one lock per call was
        measurable against a tens-of-microseconds request.
        """
        instrument = self._counters.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                self._check_unique(name, "counter")
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        instrument = self._gauges.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                self._check_unique(name, "gauge")
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        instrument = self._histograms.get(name)
        if instrument is not None:
            return instrument
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                self._check_unique(name, "histogram")
                instrument = self._histograms[name] = Histogram(name, buckets=buckets)
            return instrument

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.summary() for name, h in sorted(self._histograms.items())
                },
            }

    def histogram_states(self) -> Dict[str, Dict[str, object]]:
        """Raw bucket state per histogram (the Prometheus exporter's input)."""
        with self._lock:
            return {name: h.state() for name, h in sorted(self._histograms.items())}

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """The registry's full mergeable state (pmap worker shipping).

        Unlike :meth:`snapshot` this keeps raw histogram buckets, so a
        parent registry can fold the state back in losslessly via
        :meth:`merge_state`.
        """
        with self._lock:
            return {
                "counters": {name: c.value for name, c in sorted(self._counters.items())},
                "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
                "histograms": {
                    name: h.state() for name, h in sorted(self._histograms.items())
                },
            }

    def merge_state(self, state: Mapping[str, Dict[str, object]]) -> None:
        """Fold a worker registry's :meth:`export_state` into this one.

        Counters add, gauges last-write-win (worker states merge in input
        order, so the outcome is deterministic), histograms merge bucket
        by bucket.  Instruments are created on demand with the shipped
        bucket bounds.
        """
        for name, value in sorted(state.get("counters", {}).items()):
            self.counter(name).inc(float(value))
        for name, value in sorted(state.get("gauges", {}).items()):
            self.gauge(name).set(float(value))
        for name, histogram_state in sorted(state.get("histograms", {}).items()):
            self.histogram(name, buckets=histogram_state["bounds"]).merge_state(  # type: ignore[arg-type]
                histogram_state
            )

    def reset(self) -> None:
        """Forget every instrument (test isolation)."""
        with self._lock:
            self._counters = {}
            self._gauges = {}
            self._histograms = {}


_GLOBAL_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry."""
    return _GLOBAL_REGISTRY


# ---------------------------------------------------------------------------
# One-line instrumentation helpers (no-ops while observability is disabled).


def count(name: str, amount: float = 1.0) -> None:
    """Increment a global counter (no-op when observability is off)."""
    if FLAGS.enabled:
        _GLOBAL_REGISTRY.counter(name).inc(amount)


def gauge(name: str, value: float) -> None:
    """Set a global gauge (no-op when observability is off)."""
    if FLAGS.enabled:
        _GLOBAL_REGISTRY.gauge(name).set(value)


def observe(name: str, value: float, buckets: Optional[Sequence[float]] = None) -> None:
    """Record a global histogram observation (no-op when observability is off)."""
    if FLAGS.enabled:
        _GLOBAL_REGISTRY.histogram(name, buckets=buckets).observe(value)
