"""The single on/off switch shared by tracing, metrics, and profiling.

Kept in its own module so :mod:`repro.obs.tracing` and
:mod:`repro.obs.profiling` can both read it without importing each other.
The flag is read on every instrumented call, so it is a bare module-level
boolean wrapped in the smallest possible object — the disabled path must
cost no more than one attribute load.
"""

from __future__ import annotations

import os


class _ObsFlags:
    """Mutable observability state (a class so `enabled` is one attr load)."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = os.environ.get("REPRO_OBS", "") not in ("", "0", "false")


FLAGS = _ObsFlags()
