"""Graph-quality snapshots and run-over-run regression detection.

A :class:`QualitySnapshot` freezes the *data* health of one constructed
graph — triple counts by predicate and entity type, provenance volume and
mean confidence per source (the trust distribution), fusion accept/reject
totals, and coverage/accuracy against gold where a gold set is available.
Snapshots fold into the metrics registry as ``quality.*`` gauges, export
as plain dicts, and :meth:`QualitySnapshot.diff` compares two snapshots
under configurable thresholds so a pipeline change that shrinks or
degrades the graph fails loudly (the repeatability stage of the paper's
innovation cycle).

Snapshots taken during a run (``ConstructionPipeline.run`` takes one at
run end, AutoKnow takes one after collection) are also recorded on a
process-global holder so ``repro report`` can collect them; the holder is
reset alongside the tracer/registry.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs._flags import FLAGS
from repro.obs.metrics import MetricsRegistry, get_registry

#: Registry counter names folded into a snapshot's fusion accept/reject
#: totals (Bayesian + graphical fusion both report here).
_ACCEPT_COUNTERS = ("fusion.accepted", "fusion.graphical.accepted")
_REJECT_COUNTERS = ("fusion.rejected", "fusion.graphical.rejected")


@dataclass
class QualitySnapshot:
    """Frozen data-quality numbers for one graph at one point in time."""

    name: str
    n_triples: int = 0
    n_entities: int = 0
    predicate_counts: Dict[str, int] = field(default_factory=dict)
    class_counts: Dict[str, int] = field(default_factory=dict)
    source_counts: Dict[str, int] = field(default_factory=dict)
    source_confidence: Dict[str, float] = field(default_factory=dict)
    fusion_accepted: int = 0
    fusion_rejected: int = 0
    coverage: Optional[float] = None
    accuracy: Optional[float] = None

    # ---- construction --------------------------------------------------

    @classmethod
    def from_graph(
        cls,
        graph,
        name: Optional[str] = None,
        gold: Optional[Iterable[Tuple[str, str, object]]] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> "QualitySnapshot":
        """Snapshot an entity-based :class:`KnowledgeGraph` or a
        :class:`TextRichKG` (duck-typed on ``attributed_triples`` vs
        ``topics``/``values``).

        ``gold`` is an optional iterable of (subject, predicate, object)
        truths; coverage is the fraction present in the graph.  With a
        ``registry``, fusion accept/reject counters are folded in.
        """
        snapshot = cls(name=name or getattr(graph, "name", "kg"))
        confidence_totals: Dict[str, float] = {}
        if hasattr(graph, "attributed_triples"):  # entity-based KG
            for attributed in graph.attributed_triples():
                triple = attributed.triple
                snapshot.n_triples += 1
                _bump(snapshot.predicate_counts, triple.predicate)
                source = attributed.provenance.source
                _bump(snapshot.source_counts, source)
                confidence_totals[source] = (
                    confidence_totals.get(source, 0.0) + attributed.provenance.confidence
                )
            for entity in graph.entities():
                snapshot.n_entities += 1
                _bump(snapshot.class_counts, entity.entity_class)
        elif hasattr(graph, "topics"):  # text-rich KG
            for topic in graph.topics():
                snapshot.n_entities += 1
                _bump(snapshot.class_counts, topic.entity_type)
                for record in graph.values(topic.entity_id):
                    snapshot.n_triples += 1
                    _bump(snapshot.predicate_counts, record.attribute)
                    _bump(snapshot.source_counts, record.source)
                    confidence_totals[record.source] = (
                        confidence_totals.get(record.source, 0.0) + record.confidence
                    )
        else:
            raise TypeError(
                f"cannot snapshot {type(graph).__name__}: expected a KnowledgeGraph "
                "(attributed_triples) or TextRichKG (topics/values)"
            )
        snapshot.source_confidence = {
            source: round(total / snapshot.source_counts[source], 4)
            for source, total in confidence_totals.items()
        }
        if gold is not None:
            snapshot.coverage, snapshot.accuracy = _score_against_gold(graph, gold)
        if registry is not None:
            counters = registry.snapshot()["counters"]
            snapshot.fusion_accepted = int(
                sum(counters.get(counter, 0.0) for counter in _ACCEPT_COUNTERS)
            )
            snapshot.fusion_rejected = int(
                sum(counters.get(counter, 0.0) for counter in _REJECT_COUNTERS)
            )
        return snapshot

    # ---- derived numbers ----------------------------------------------

    @property
    def fusion_accept_rate(self) -> Optional[float]:
        """Accepted / (accepted + rejected), None when fusion never ran."""
        total = self.fusion_accepted + self.fusion_rejected
        if total == 0:
            return None
        return self.fusion_accepted / total

    def scalar_metrics(self) -> Dict[str, float]:
        """The comparable higher-is-better numbers ``diff`` operates on."""
        metrics: Dict[str, float] = {
            "n_triples": float(self.n_triples),
            "n_entities": float(self.n_entities),
            "n_predicates": float(len(self.predicate_counts)),
            "n_sources": float(len(self.source_counts)),
        }
        if self.fusion_accept_rate is not None:
            metrics["fusion_accept_rate"] = self.fusion_accept_rate
        if self.coverage is not None:
            metrics["coverage"] = self.coverage
        if self.accuracy is not None:
            metrics["accuracy"] = self.accuracy
        for predicate, count in self.predicate_counts.items():
            metrics[f"predicate.{predicate}"] = float(count)
        return metrics

    # ---- registry / serialization --------------------------------------

    def fold_into(self, registry: Optional[MetricsRegistry] = None) -> None:
        """Set ``quality.<name>.*`` gauges on the registry."""
        registry = registry or get_registry()
        prefix = f"quality.{self.name}"
        registry.gauge(f"{prefix}.n_triples").set(self.n_triples)
        registry.gauge(f"{prefix}.n_entities").set(self.n_entities)
        registry.gauge(f"{prefix}.n_predicates").set(len(self.predicate_counts))
        registry.gauge(f"{prefix}.n_sources").set(len(self.source_counts))
        if self.fusion_accept_rate is not None:
            registry.gauge(f"{prefix}.fusion_accept_rate").set(self.fusion_accept_rate)
        if self.coverage is not None:
            registry.gauge(f"{prefix}.coverage").set(self.coverage)
        if self.accuracy is not None:
            registry.gauge(f"{prefix}.accuracy").set(self.accuracy)
        for source, mean_confidence in self.source_confidence.items():
            registry.gauge(f"{prefix}.source_confidence.{source}").set(mean_confidence)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable record (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "n_triples": self.n_triples,
            "n_entities": self.n_entities,
            "predicate_counts": dict(sorted(self.predicate_counts.items())),
            "class_counts": dict(sorted(self.class_counts.items())),
            "source_counts": dict(sorted(self.source_counts.items())),
            "source_confidence": dict(sorted(self.source_confidence.items())),
            "fusion_accepted": self.fusion_accepted,
            "fusion_rejected": self.fusion_rejected,
            "coverage": self.coverage,
            "accuracy": self.accuracy,
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "QualitySnapshot":
        """Rebuild a snapshot from :meth:`to_dict` output (baseline loads)."""
        return cls(
            name=str(record.get("name", "kg")),
            n_triples=int(record.get("n_triples", 0)),
            n_entities=int(record.get("n_entities", 0)),
            predicate_counts=dict(record.get("predicate_counts", {})),
            class_counts=dict(record.get("class_counts", {})),
            source_counts=dict(record.get("source_counts", {})),
            source_confidence=dict(record.get("source_confidence", {})),
            fusion_accepted=int(record.get("fusion_accepted", 0)),
            fusion_rejected=int(record.get("fusion_rejected", 0)),
            coverage=record.get("coverage"),  # type: ignore[arg-type]
            accuracy=record.get("accuracy"),  # type: ignore[arg-type]
        )

    # ---- regression detection ------------------------------------------

    def diff(
        self, baseline: "QualitySnapshot", thresholds: Optional["RegressionThresholds"] = None
    ) -> "QualityDiff":
        """Compare this snapshot (current) against a baseline.

        Every metric present in either snapshot yields a delta; a delta is
        a *regression* when the current value dropped below the baseline
        by more than the configured tolerance (all compared metrics are
        higher-is-better).  Metrics that vanished entirely (a predicate no
        longer produced) are regressions regardless of tolerance.
        """
        thresholds = thresholds or RegressionThresholds()
        current_metrics = self.scalar_metrics()
        baseline_metrics = baseline.scalar_metrics()
        deltas: List[QualityDelta] = []
        for metric in sorted(set(current_metrics) | set(baseline_metrics)):
            base = baseline_metrics.get(metric)
            current = current_metrics.get(metric)
            if base is None:
                deltas.append(QualityDelta(metric, None, current, regression=False))
                continue
            if current is None:
                deltas.append(QualityDelta(metric, base, None, regression=True))
                continue
            deltas.append(
                QualityDelta(
                    metric, base, current, regression=thresholds.is_regression(metric, base, current)
                )
            )
        return QualityDiff(
            snapshot_name=self.name, deltas=deltas, thresholds=thresholds
        )


def _bump(table: Dict[str, int], key: str) -> None:
    table[key] = table.get(key, 0) + 1


def _score_against_gold(graph, gold) -> Tuple[float, float]:
    """(coverage, accuracy) of the graph against gold (s, p, o) truths."""
    gold_items = list(gold)
    covered = 0
    graph_values: Dict[Tuple[str, str], set] = {}

    def lookup(subject: str, predicate: str) -> set:
        if hasattr(graph, "objects"):
            return {str(value).lower() for value in graph.objects(subject, predicate)}
        return {record.value.lower() for record in graph.values(subject, predicate)}

    correct = total_checked = 0
    for subject, predicate, obj in gold_items:
        key = (subject, predicate)
        if key not in graph_values:
            graph_values[key] = lookup(subject, predicate)
        present = graph_values[key]
        if str(obj).lower() in present:
            covered += 1
        if present:
            total_checked += 1
            if str(obj).lower() in present:
                correct += 1
    coverage = covered / len(gold_items) if gold_items else 0.0
    accuracy = correct / total_checked if total_checked else 0.0
    return coverage, accuracy


@dataclass(frozen=True)
class QualityDelta:
    """One metric's baseline-vs-current comparison."""

    metric: str
    baseline: Optional[float]
    current: Optional[float]
    regression: bool = False

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    def to_dict(self) -> Dict[str, object]:
        return {
            "metric": self.metric,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "regression": self.regression,
        }


@dataclass(frozen=True)
class RegressionThresholds:
    """How much drop each metric family tolerates before flagging.

    ``relative_tolerance`` covers count-like metrics (triples, entities,
    per-predicate counts); the rate tolerances cover the [0, 1] quality
    rates, where a relative test would be too lax near zero.
    """

    relative_tolerance: float = 0.02
    accuracy_tolerance: float = 0.01
    coverage_tolerance: float = 0.02
    accept_rate_tolerance: float = 0.05

    def is_regression(self, metric: str, baseline: float, current: float) -> bool:
        """True when ``current`` dropped below ``baseline`` beyond tolerance."""
        if current >= baseline:
            return False
        if metric == "accuracy":
            return baseline - current > self.accuracy_tolerance
        if metric == "coverage":
            return baseline - current > self.coverage_tolerance
        if metric == "fusion_accept_rate":
            return baseline - current > self.accept_rate_tolerance
        if baseline == 0:
            return False
        return (baseline - current) / baseline > self.relative_tolerance


@dataclass
class QualityDiff:
    """All deltas between two snapshots plus the regression verdict."""

    snapshot_name: str
    deltas: List[QualityDelta] = field(default_factory=list)
    thresholds: RegressionThresholds = field(default_factory=RegressionThresholds)

    @property
    def regressions(self) -> List[QualityDelta]:
        return [delta for delta in self.deltas if delta.regression]

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressions)

    def to_dict(self) -> Dict[str, object]:
        return {
            "snapshot": self.snapshot_name,
            "n_regressions": len(self.regressions),
            "deltas": [delta.to_dict() for delta in self.deltas],
        }

    def rows(self, only_changed: bool = True) -> List[List[object]]:
        """Table rows (metric, baseline, current, delta, regression)."""
        rows = []
        for delta in self.deltas:
            if only_changed and delta.delta == 0.0 and not delta.regression:
                continue
            rows.append(
                [
                    delta.metric,
                    "-" if delta.baseline is None else round(delta.baseline, 4),
                    "-" if delta.current is None else round(delta.current, 4),
                    "-" if delta.delta is None else round(delta.delta, 4),
                    "REGRESSION" if delta.regression else "ok",
                ]
            )
        return rows


# ---------------------------------------------------------------------------
# Process-global snapshot holder: pipelines record here while observability
# is on; `repro report` collects, the reset hooks clear.

_HOLDER_LOCK = threading.Lock()
_SNAPSHOTS: List[QualitySnapshot] = []


def record_snapshot(snapshot: QualitySnapshot) -> None:
    """Keep a snapshot for later collection (no-op while obs is disabled)."""
    if not FLAGS.enabled:
        return
    with _HOLDER_LOCK:
        _SNAPSHOTS.append(snapshot)


def snapshots() -> List[QualitySnapshot]:
    """Snapshots recorded since the last reset, in recording order."""
    with _HOLDER_LOCK:
        return list(_SNAPSHOTS)


def reset_snapshots() -> None:
    """Drop held snapshots (CLI/test isolation)."""
    global _SNAPSHOTS
    with _HOLDER_LOCK:
        _SNAPSHOTS = []


def merge_shipped(records: Iterable[Dict[str, object]]) -> None:
    """Adopt snapshot dicts shipped back from a pmap process worker.

    Workers rarely run whole pipelines, so this is usually empty — but a
    worker that did snapshot a graph must not lose it at the process
    boundary.  Shipped snapshots append in input order, after anything
    the parent recorded itself.
    """
    if not FLAGS.enabled:
        return
    with _HOLDER_LOCK:
        for record in records:
            _SNAPSHOTS.append(QualitySnapshot.from_dict(record))


def capture(
    graph,
    name: Optional[str] = None,
    gold: Optional[Iterable[Tuple[str, str, object]]] = None,
) -> QualitySnapshot:
    """Snapshot a graph, fold it into the registry, and record it.

    The one-call form pipelines use at run end; returns the snapshot.
    """
    snapshot = QualitySnapshot.from_graph(graph, name=name, gold=gold, registry=get_registry())
    snapshot.fold_into(get_registry())
    record_snapshot(snapshot)
    return snapshot
