"""Live snapshot publishing: tail the WAL, hot-swap the serving store.

Two cooperating pieces:

* :class:`WALFollower` maintains a replica graph by tailing a
  :class:`~repro.core.codec.TripleWAL` directory with the shared
  :func:`~repro.core.codec.read_segment_records` /
  :func:`~repro.core.codec.apply_wal_records` primitives.  It never
  takes the writer's lock — torn frames at the tail are simply retried
  on the next poll, and a checkpoint/compaction (the ``base.rkgs``
  signature changes, or the tailed segment vanishes) triggers a full
  re-bootstrap from the new base.  This is the same replica a separate
  ``repro serve --follow-wal`` process builds, so the streamer's
  publishes and the follower's republishes go through one code path.

* :class:`StreamPublisher` turns follower state into serving traffic on
  a cadence: poll the follower, optionally persist a fresh ``.rkgs``
  snapshot, then hot-swap the graph into a
  :class:`~repro.serve.snapshot.SnapshotStore` (atomic publish; readers
  never block).  Each publish records the two freshness metrics the
  paper's "never rebuilt from scratch" lesson makes operational:

  - **staleness** (``stream.staleness_seconds``): how old the serving
    view just replaced was — the wall-clock gap between consecutive
    publishes;
  - **catch-up lag** (``stream.catchup_records``): ingest debt — source
    records enqueued but not yet ingested at publish time (the
    :meth:`~repro.stream.source.DeltaQueue.pending_records` gauge).

  Samples are kept so the bench can fold p50/p95 percentiles into
  ``BENCH_core.json``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.codec import (
    TripleWAL,
    apply_wal_records,
    load_graph,
    read_segment_records,
    save_graph,
)
from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.obs import metrics as obs_metrics


def percentiles(
    samples: Sequence[float], points: Sequence[int] = (50, 95)
) -> Dict[str, float]:
    """Nearest-rank percentiles (no numpy interpolation surprises)."""
    out: Dict[str, float] = {}
    ordered = sorted(samples)
    for point in points:
        if not ordered:
            out[f"p{point}"] = 0.0
            continue
        rank = max(0, min(len(ordered) - 1, int(len(ordered) * point / 100)))
        out[f"p{point}"] = float(ordered[rank])
    return out


class WALFollower:
    """A read-only replica built by tailing WAL segments."""

    def __init__(self, directory: str, backend: str = "columnar") -> None:
        self.directory = directory
        self.backend = backend
        self.graph: KnowledgeGraph = KnowledgeGraph(
            ontology=Ontology(), name="wal", backend=backend
        )
        self._base_signature: Optional[tuple] = None
        self._segment: Optional[str] = None
        self._offset = 0
        self.n_applied = 0
        self.n_bootstraps = 0
        self._bootstrap()

    # ------------------------------------------------------------------

    @property
    def _base_path(self) -> str:
        return os.path.join(self.directory, TripleWAL.BASE_BASENAME)

    @staticmethod
    def _signature(path: str) -> Optional[tuple]:
        try:
            stat = os.stat(path)
        except FileNotFoundError:
            return None
        return (stat.st_size, stat.st_mtime_ns)

    def _segment_paths(self) -> List[str]:
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        # wal-%08d.log names sort lexicographically in index order.
        return [
            os.path.join(self.directory, name)
            for name in sorted(names)
            if name.startswith("wal-") and name.endswith(".log")
        ]

    def _bootstrap(self) -> int:
        """(Re)build the replica from the current base + all segments."""
        base = self._base_path
        signature = self._signature(base)
        if signature is not None:
            self.graph = load_graph(base, backend=self.backend)
        else:
            self.graph = KnowledgeGraph(
                ontology=Ontology(), name="wal", backend=self.backend
            )
        self._base_signature = signature
        self._segment = None
        self._offset = 0
        self.n_bootstraps += 1
        obs_metrics.count("stream.follower.bootstraps")
        return self._drain_segments() + 1

    def _drain_segments(self) -> int:
        applied = 0
        while True:
            segments = self._segment_paths()
            if not segments:
                return applied
            if self._segment is None:
                self._segment = segments[0]
                self._offset = 0
            if self._segment not in segments:
                # The tailed segment was folded away under us.
                raise FileNotFoundError(self._segment)
            records, self._offset = read_segment_records(self._segment, self._offset)
            if records:
                applied += apply_wal_records(self.graph, records, self._segment)
            later = [path for path in segments if path > self._segment]
            if not later:
                return applied
            # The writer rotated before we listed, so the current segment
            # is complete (just fully consumed) — advance to the next.
            self._segment = later[0]
            self._offset = 0

    def poll(self) -> int:
        """Apply newly visible WAL records; returns how many were applied.

        A changed ``base.rkgs`` (checkpoint/compaction) or a vanished
        segment forces a full re-bootstrap, which also counts as change.
        """
        if self._signature(self._base_path) != self._base_signature:
            applied = self._bootstrap()
        else:
            try:
                applied = self._drain_segments()
            except FileNotFoundError:
                applied = self._bootstrap()
        self.n_applied += applied
        if applied:
            obs_metrics.count("stream.follower.applied_records", applied)
        return applied


class StreamPublisher:
    """Cadenced hot-swap of follower state into a serving store."""

    def __init__(
        self,
        store,
        follower: WALFollower,
        snapshot_path: Optional[str] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.store = store
        self.follower = follower
        self.snapshot_path = snapshot_path
        self._clock = clock
        self._started = clock()
        self._last_publish: Optional[float] = None
        self.n_publishes = 0
        self.staleness_samples: List[float] = []
        self.catchup_samples: List[float] = []

    def publish(self, queue_records: int = 0) -> Dict[str, object]:
        """Poll the follower and unconditionally swap in its graph."""
        applied = self.follower.poll()
        return self._swap(applied, queue_records)

    def publish_if_changed(
        self, queue_records: int = 0
    ) -> Optional[Dict[str, object]]:
        """Swap only when the poll surfaced new WAL records (or nothing
        has ever been published) — the follow-wal serve loop's cadence."""
        applied = self.follower.poll()
        if applied == 0 and self._last_publish is not None:
            return None
        return self._swap(applied, queue_records)

    def _swap(self, applied: int, queue_records: int) -> Dict[str, object]:
        now = self._clock()
        since = self._last_publish if self._last_publish is not None else self._started
        staleness = max(0.0, now - since)
        if self.snapshot_path:
            save_graph(self.follower.graph, self.snapshot_path, include_lineage=False)
        snapshot = self.store.publish(self.follower.graph, copy=True)
        self._last_publish = now
        self.n_publishes += 1
        self.staleness_samples.append(staleness)
        self.catchup_samples.append(float(queue_records))
        obs_metrics.observe("stream.staleness_seconds", staleness)
        obs_metrics.observe("stream.catchup_records", float(queue_records))
        obs_metrics.count("stream.publishes")
        return {
            "version": snapshot.version,
            "staleness_s": staleness,
            "catchup_records": queue_records,
            "n_applied": applied,
        }

    def freshness(self) -> Dict[str, float]:
        """The bench/run-record slice: publish + lag percentiles."""
        summary = {"n_publishes": float(self.n_publishes)}
        for key, value in percentiles(self.staleness_samples).items():
            summary[f"staleness_{key}_s"] = value
        for key, value in percentiles(self.catchup_samples).items():
            summary[f"catchup_{key}_records"] = value
        return summary
