"""Streaming incremental construction (continuous delta ingestion).

The batch pipeline rebuilds the world from scratch; this package turns
it into a continuous loop — deltas in, live WAL-backed graph mutations
out, fresh snapshots hot-swapped into serving on a cadence — while
guaranteeing that draining every delta and finalizing reproduces the
batch build byte-for-byte (state, provenance, lineage, ``.rkgs``).
"""

from repro.stream.ingest import DeltaReport, StreamIngestor
from repro.stream.publish import StreamPublisher, WALFollower, percentiles
from repro.stream.source import Delta, DeltaQueue, enqueue_all, micro_batches

__all__ = [
    "Delta",
    "DeltaQueue",
    "DeltaReport",
    "StreamIngestor",
    "StreamPublisher",
    "WALFollower",
    "enqueue_all",
    "micro_batches",
    "percentiles",
]
