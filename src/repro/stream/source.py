"""Delta sources for streaming construction: micro-batches + a queue.

The batch pipeline consumes whole :class:`~repro.datagen.sources.
StructuredSource` bags at once; the streaming loop consumes the same
records as a sequence of :class:`Delta` micro-batches pulled from a
:class:`DeltaQueue`.  A delta carries new *or changed* records — a
record id already ingested replaces its previous version — plus the
field maps of every source appearing in it, so the ingestor can run the
same pure ``transform_record`` the partition workers use.

The keystone equivalence property (drain + compact == batch build)
depends only on the *union* of delivered records, never on how they were
split into deltas or ordered — :func:`micro_batches` therefore takes an
optional shuffle seed, and the Hypothesis property in
``tests/test_stream_property.py`` drives arbitrary splits/permutations
through it.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Sequence

from repro.datagen.sources import SourceRecord, StructuredSource
from repro.obs import metrics as obs_metrics


@dataclass
class Delta:
    """One micro-batch of new/changed source records."""

    seqno: int
    records: List[SourceRecord]
    #: source name -> canonical-to-source field map (transform input).
    field_maps: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)


class DeltaQueue:
    """A bounded-unbounded FIFO of deltas with ingest-debt accounting.

    Thread-safe: the producer side (a feed, a test, the CLI) calls
    :meth:`put`; the consumer (the ingest loop) calls :meth:`get`.
    :meth:`pending_records` is the *catch-up lag* numerator — how many
    source records are enqueued but not yet ingested — exported as the
    ``stream.queue.records`` gauge on every transition.
    """

    def __init__(self) -> None:
        self._deltas: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._n_pending_records = 0

    def put(self, delta: Delta) -> None:
        with self._not_empty:
            if self._closed:
                raise ValueError("queue is closed")
            self._deltas.append(delta)
            self._n_pending_records += len(delta)
            self._not_empty.notify()
            self._export()
        obs_metrics.count("stream.queue.enqueued_records", len(delta))

    def get(self, timeout: Optional[float] = None) -> Optional[Delta]:
        """Next delta, or ``None`` when the queue is closed and drained."""
        with self._not_empty:
            while not self._deltas:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            delta = self._deltas.popleft()
            self._n_pending_records -= len(delta)
            self._export()
            return delta

    def close(self) -> None:
        """No more puts; pending deltas still drain through :meth:`get`."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def depth(self) -> int:
        """Deltas currently enqueued."""
        with self._lock:
            return len(self._deltas)

    def pending_records(self) -> int:
        """Source records enqueued but not yet handed to the ingestor."""
        with self._lock:
            return self._n_pending_records

    def _export(self) -> None:
        obs_metrics.gauge("stream.queue.depth", len(self._deltas))
        obs_metrics.gauge("stream.queue.records", self._n_pending_records)


def micro_batches(
    sources: Sequence[StructuredSource],
    batch_size: int,
    *,
    order_seed: Optional[int] = None,
) -> List[Delta]:
    """Split structured sources into delta micro-batches.

    Records keep their source order unless ``order_seed`` shuffles them
    (equivalence must hold either way).  Every delta carries the field
    maps of the sources its records came from.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be a positive integer, got {batch_size!r}")
    field_maps = {source.name: dict(source.field_map) for source in sources}
    records = [record for source in sources for record in source.records]
    if order_seed is not None:
        Random(order_seed).shuffle(records)
    deltas = []
    for start in range(0, len(records), batch_size):
        chunk = records[start : start + batch_size]
        deltas.append(
            Delta(
                seqno=len(deltas),
                records=chunk,
                field_maps={
                    name: field_maps[name]
                    for name in sorted({record.source for record in chunk})
                },
            )
        )
    return deltas


def enqueue_all(queue: DeltaQueue, deltas: Sequence[Delta], close: bool = True) -> None:
    """Convenience feed: put every delta, then (by default) close."""
    for delta in deltas:
        queue.put(delta)
    if close:
        queue.close()
