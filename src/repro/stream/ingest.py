"""Incremental construction: per-delta linkage, trust, and re-fusion.

The :class:`StreamIngestor` maintains the same decision inputs a batch
build accumulates — canonical records, blocking keys, pure pair scores,
claims, rejections — but updates them one :class:`~repro.stream.source.
Delta` at a time, mutating a *live* :class:`~repro.core.graph.
KnowledgeGraph` (WAL-attached, so followers and publishers can tail it)
after every micro-batch:

* **incremental linkage** — only the blocking keys touched by the delta
  are re-blocked; new candidate pairs are scored with the identical pure
  :func:`~repro.core.partition.pair_score` the partitions use, and match
  edges feed an incremental union-find.  When a delta pushes a block
  over the ``max_block_size`` cap (or replaces a record), pair
  eligibility can shrink, so the ingestor falls back to a full re-link —
  counted in ``stream.relinks`` so the (rare) O(pairs) events are
  visible;
* **online Accu EM** — per-source sufficient statistics (posterior mass
  + claim counts, the same quantities :func:`repro.integrate.exchange.
  fuse_sharded` merges with ``fsum``) are updated by subtracting each
  re-fused group's previous contribution and adding its new one, so
  source accuracies track the stream without re-running EM over the
  world;
* **ledger-consulted re-fusion** — only the ``(subject, predicate)``
  groups touched by the delta are re-fused: the groups the delta's
  claims land in, plus — when a cluster merge re-roots records — the
  groups the lineage ledger has fusion verdicts for under the old roots
  (:meth:`~repro.obs.lineage.LineageLedger.fused_attributes`).  Fused
  groups per delta is the sub-linearity contract the tests assert.

The live graph is an *approximation*: accuracies lag full EM, and block
overflows can transiently merge entities a batch build would keep apart.
The contract is :meth:`StreamIngestor.finalize` — build one
:class:`~repro.core.partition.PartitionResult` from the accumulated
union and run it through the identical :func:`~repro.integrate.exchange.
exchange` a ``partitions=1`` batch build uses, so after draining all
deltas the canonical graph state, provenance, lineage ledger, and
``.rkgs`` bytes are byte-identical to the batch build over the same
source union, for any micro-batch split and delta order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.partition import (
    CanonicalRecord,
    PartitionedBuild,
    PartitionResult,
    clean_reason,
    ordered_pair,
    pair_score,
    transform_record,
)
from repro.core.store import ColumnarTripleStore
from repro.core.triple import Provenance, Triple, Value
from repro.integrate.exchange import EXTRACTOR, ExchangeOutcome, _UnionFind, exchange
from repro.integrate.fusion import ValueClaim, _accu_item_posterior
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics
from repro.stream.source import Delta

Pair = Tuple[str, str]
GroupKey = Tuple[str, str]


@dataclass(frozen=True)
class DeltaReport:
    """What one micro-batch cost — the sub-linearity evidence."""

    seqno: int
    n_records: int
    n_pairs_scored: int
    n_cluster_merges: int
    n_fused_groups: int
    n_groups_total: int
    relinked: bool
    wall_s: float


class StreamIngestor:
    """Continuous construction over a live, WAL-attached graph."""

    def __init__(
        self,
        build: Optional[PartitionedBuild] = None,
        wal=None,
    ) -> None:
        self.build = build or PartitionedBuild()
        ontology = Ontology(name="sources")
        self.graph = KnowledgeGraph(
            ontology=ontology,
            name=self.build.graph_name,
            backend=self.build.backend,
        )
        if wal is not None:
            self.graph.attach_wal(wal)
        self.wal = wal
        # The batch build's decision inputs, maintained incrementally.
        self.records: Dict[str, CanonicalRecord] = {}
        self.keys: Dict[str, Tuple[str, ...]] = {}
        self.claims: Dict[str, List[ValueClaim]] = {}
        self.rejections: Dict[str, List[Tuple[str, str, Value, str]]] = {}
        self.scores: Dict[Pair, float] = {}
        self._blocks: Dict[str, Set[str]] = {}
        self._pair_index: Dict[str, Set[Pair]] = {}
        self._matches: Set[Pair] = set()
        self._root_of: Dict[str, str] = {}
        self._members: Dict[str, Set[str]] = {}
        self._dirty = False
        # Online EM state: global per-source sufficient statistics plus the
        # cached per-group contribution that gets retracted on re-fusion.
        self._em_mass: Dict[str, float] = {}
        self._em_count: Dict[str, int] = {}
        self._accuracy: Dict[str, float] = {}
        self._group_mass: Dict[GroupKey, Dict[str, float]] = {}
        self._group_count: Dict[GroupKey, Dict[str, int]] = {}
        # Fallback re-fusion index for when lineage recording is off.
        self._fused: Dict[str, Set[str]] = {}
        self.n_deltas = 0
        self.n_relinks = 0

    # ------------------------------------------------------------------
    # per-delta ingest

    def ingest(self, delta: Delta) -> DeltaReport:
        """Apply one micro-batch; returns the incremental-work report."""
        started = time.perf_counter()
        strategy = self.build.strategy
        arrived: List[CanonicalRecord] = []
        for record in delta.records:
            canonical = transform_record(
                record, delta.field_maps.get(record.source, {})
            )
            self._upsert(canonical)
            arrived.append(canonical)

        merge_events: List[Tuple[str, str]] = []
        moved: Dict[str, Tuple[str, str]] = {}
        n_pairs_scored = 0
        relinked = False
        if self._dirty:
            n_pairs_scored, merge_events, moved = self._relink()
            relinked = True
            self.n_relinks += 1
        else:
            for canonical in arrived:
                n_pairs_scored += self._link_record(
                    canonical, strategy.max_block_size, merge_events
                )

        touched = self._apply_cluster_changes(merge_events, moved)
        for canonical in arrived:
            root = self._root_of[canonical.record_id]
            self._ensure_entity(root)
            if canonical.record_id != root:
                self._add_member_alias(root, canonical)
            for claim in self.claims[canonical.record_id]:
                touched.add((root, claim.attribute))

        adds: List[Tuple[Triple, Provenance]] = []
        for group in sorted(touched):
            self._refuse_group(group, adds)
        if adds:
            self.graph.add_triples_batch(adds)

        self.n_deltas += 1
        wall_s = time.perf_counter() - started
        obs_metrics.count("stream.deltas")
        obs_metrics.count("stream.records", len(delta))
        obs_metrics.count("stream.pairs_scored", n_pairs_scored)
        obs_metrics.count("stream.cluster_merges", len(merge_events))
        obs_metrics.count("stream.fused_groups", len(touched))
        if relinked:
            obs_metrics.count("stream.relinks")
        obs_metrics.gauge("stream.n_records", len(self.records))
        obs_metrics.gauge("stream.n_groups", len(self._group_mass))
        obs_metrics.observe("stream.delta_seconds", wall_s)
        return DeltaReport(
            seqno=delta.seqno,
            n_records=len(delta),
            n_pairs_scored=n_pairs_scored,
            n_cluster_merges=len(merge_events),
            n_fused_groups=len(touched),
            n_groups_total=len(self._group_mass),
            relinked=relinked,
            wall_s=wall_s,
        )

    # ------------------------------------------------------------------
    # state maintenance

    def _upsert(self, canonical: CanonicalRecord) -> None:
        record_id = canonical.record_id
        if record_id in self.records:
            self._retract(record_id)
        self.records[record_id] = canonical
        keys = tuple(sorted(set(self.build.strategy.keys(canonical.fields))))
        self.keys[record_id] = keys
        cap = self.build.strategy.max_block_size
        for key in keys:
            block = self._blocks.setdefault(key, set())
            if len(block) == cap:
                # This insert pushes the block over the cap: pairs that
                # relied on it stop being eligible, so re-link globally.
                self._dirty = True
            block.add(record_id)
        self._root_of.setdefault(record_id, record_id)
        self._members.setdefault(record_id, {record_id})
        claims: List[ValueClaim] = []
        rejections: List[Tuple[str, str, Value, str]] = []
        for attribute in sorted(canonical.fields):
            if attribute == "name":
                continue
            value = canonical.fields[attribute]
            if isinstance(value, (list, tuple, set, dict)):
                continue  # multi-valued extras are not claimable scalars
            reason = clean_reason(attribute, value)
            if reason is not None:
                rejections.append((record_id, attribute, value, reason))
                obs_lineage.record_rejection(
                    record_id, attribute, value, reason=reason, stage="stream.clean"
                )
            else:
                claims.append(
                    ValueClaim(
                        subject=record_id,
                        attribute=attribute,
                        value=value,
                        source=canonical.source,
                    )
                )
        self.claims[record_id] = claims
        self.rejections[record_id] = rejections

    def _retract(self, record_id: str) -> None:
        """Drop a replaced record's derived state; forces a re-link."""
        for key in self.keys.pop(record_id, ()):
            block = self._blocks.get(key)
            if block is not None:
                block.discard(record_id)
                if not block:
                    del self._blocks[key]
        for pair in self._pair_index.pop(record_id, set()):
            self.scores.pop(pair, None)
            self._matches.discard(pair)
            other = pair[0] if pair[1] == record_id else pair[1]
            other_pairs = self._pair_index.get(other)
            if other_pairs is not None:
                other_pairs.discard(pair)
        del self.records[record_id]
        self.claims.pop(record_id, None)
        self.rejections.pop(record_id, None)
        # Replacement can change keys, scores, and hence clusters in both
        # directions — rebuild linkage from the cached pure scores.
        self._dirty = True

    # ------------------------------------------------------------------
    # linkage

    def _score(self, pair: Pair) -> float:
        score = self.scores.get(pair)
        if score is None:
            score = pair_score(self.records[pair[0]], self.records[pair[1]])
            self.scores[pair] = score
            self._pair_index.setdefault(pair[0], set()).add(pair)
            self._pair_index.setdefault(pair[1], set()).add(pair)
        return score

    def _link_record(
        self,
        canonical: CanonicalRecord,
        cap: int,
        merge_events: List[Tuple[str, str]],
    ) -> int:
        """Score the delta record against co-blocked candidates; union matches."""
        record_id = canonical.record_id
        n_scored = 0
        for key in self.keys[record_id]:
            block = self._blocks[key]
            if len(block) > cap:
                continue
            for other_id in block:
                if other_id == record_id:
                    continue
                other = self.records[other_id]
                if other.entity_class != canonical.entity_class:
                    continue
                pair = ordered_pair(record_id, other_id)
                if pair not in self.scores:
                    n_scored += 1
                if (
                    self._score(pair) >= self.build.match_threshold
                    and pair not in self._matches
                ):
                    self._matches.add(pair)
                    self._union(pair[0], pair[1], merge_events)
        return n_scored

    def _union(
        self, left: str, right: str, merge_events: List[Tuple[str, str]]
    ) -> None:
        left_root = self._root_of[left]
        right_root = self._root_of[right]
        if left_root == right_root:
            return
        keep, drop = sorted((left_root, right_root))
        for member in self._members[drop]:
            self._root_of[member] = keep
        self._members[keep] |= self._members.pop(drop)
        merge_events.append((keep, drop))

    def _relink(self):
        """Full linkage rebuild from cached scores + current eligibility.

        Needed when eligibility shrank (block overflow, record
        replacement): incremental unions can only grow clusters, but the
        batch contract says a pair is linked iff it shares a key whose
        *global* block is within the cap and its pure score clears the
        threshold — so recompute exactly that, then diff the root map.
        """
        cap = self.build.strategy.max_block_size
        n_scored = 0
        matches: Set[Pair] = set()
        for key in self._blocks:
            block = self._blocks[key]
            if len(block) > cap:
                continue
            members = sorted(block)
            for i, left_id in enumerate(members):
                left = self.records[left_id]
                for right_id in members[i + 1 :]:
                    if self.records[right_id].entity_class != left.entity_class:
                        continue
                    pair = ordered_pair(left_id, right_id)
                    if pair not in self.scores:
                        n_scored += 1
                    if self._score(pair) >= self.build.match_threshold:
                        matches.add(pair)
        union_find = _UnionFind()
        for pair in sorted(matches):
            union_find.union(*pair)
        old_root_of = self._root_of
        self._matches = matches
        self._root_of = {
            record_id: union_find.find(record_id) for record_id in self.records
        }
        self._members = {}
        for record_id, root in self._root_of.items():
            self._members.setdefault(root, set()).add(record_id)
        moved = {
            record_id: (old_root_of.get(record_id, record_id), root)
            for record_id, root in self._root_of.items()
            if old_root_of.get(record_id, record_id) != root
        }
        merge_events = sorted(
            {
                (self._root_of[old_root], old_root)
                for old_root, _ in moved.values()
                if old_root in self._root_of
                and self._root_of[old_root] != old_root
            }
        )
        self._dirty = False
        return n_scored, merge_events, moved

    # ------------------------------------------------------------------
    # live-graph reconciliation

    def _fused_attributes(self, root: str) -> List[str]:
        """The groups previously fused under ``root`` — ledger first.

        When lineage recording is on, the ledger's fusion verdicts are the
        authoritative index of which ``(s, p)`` groups exist; the internal
        set is the always-on fallback so correctness never depends on
        observability being enabled.
        """
        if obs_lineage.lineage_enabled():
            from_ledger = obs_lineage.get_ledger().fused_attributes(root)
            if from_ledger:
                return from_ledger
        return sorted(self._fused.get(root, ()))

    def _apply_cluster_changes(
        self,
        merge_events: List[Tuple[str, str]],
        moved: Dict[str, Tuple[str, str]],
    ) -> Set[GroupKey]:
        touched: Set[GroupKey] = set()
        graph = self.graph
        for keep, drop in sorted(merge_events):
            for attribute in self._fused_attributes(drop):
                touched.add((drop, attribute))
                touched.add((keep, attribute))
            for attribute in self._fused_attributes(keep):
                touched.add((keep, attribute))
            self._ensure_entity(keep)
            if graph.has_entity(drop):
                graph.merge_entities(keep, drop)
            elif drop in self.records:
                self._add_member_alias(keep, self.records[drop])
            obs_lineage.record_merge(
                keep,
                drop,
                n_rewritten=len(self._fused.get(drop, ())),
                stage="stream.link",
            )
            self._fused[keep] = self._fused.get(keep, set()) | self._fused.pop(
                drop, set()
            )
        # Relink moves that are not whole-cluster merges are splits: touch
        # the departed groups on both sides so stale fusions re-settle.
        for record_id, (old_root, new_root) in sorted(moved.items()):
            self._ensure_entity(new_root)
            if record_id != new_root and record_id in self.records:
                self._add_member_alias(new_root, self.records[record_id])
            for attribute in self._fused_attributes(old_root):
                touched.add((old_root, attribute))
            for claim in self.claims.get(record_id, ()):
                touched.add((old_root, claim.attribute))
                touched.add((new_root, claim.attribute))
        return touched

    def _ensure_entity(self, root: str) -> None:
        graph = self.graph
        if graph.has_entity(root):
            return
        record = self.records[root]
        if not graph.ontology.has_class(record.entity_class):
            graph.ontology.add_class(record.entity_class)
        graph.add_entity(root, record.name or root, record.entity_class)

    def _add_member_alias(self, root: str, member: CanonicalRecord) -> None:
        if not self.graph.has_entity(root):
            return
        entity = self.graph.entity(root)
        name = member.name
        if name and name != entity.name and name not in entity.aliases:
            self.graph.add_alias(root, name)

    # ------------------------------------------------------------------
    # online EM + re-fusion

    def _retract_group_stats(self, group: GroupKey) -> None:
        mass = self._group_mass.pop(group, None)
        if mass is None:
            return
        counts = self._group_count.pop(group)
        for source, value in mass.items():
            self._em_mass[source] -= value
        for source, value in counts.items():
            self._em_count[source] -= value

    def _update_accuracy(self, sources) -> None:
        build = self.build
        for source in sources:
            count = self._em_count.get(source, 0)
            if count <= 0:
                self._accuracy[source] = build.initial_accuracy
            else:
                estimate = self._em_mass.get(source, 0.0) / count
                self._accuracy[source] = float(
                    np.clip(estimate, build.min_accuracy, build.max_accuracy)
                )

    def _refuse_group(
        self, group: GroupKey, adds: List[Tuple[Triple, Provenance]]
    ) -> None:
        root, attribute = group
        graph = self.graph
        self._retract_group_stats(group)
        group_claims = [
            claim
            for member in sorted(self._members.get(root, ()))
            for claim in self.claims.get(member, ())
            if claim.attribute == attribute
        ]
        if not group_claims:
            # The group dissolved (merge rewrote it, or a split moved every
            # claimant away): retire its triples and its fusion index entry.
            for triple in list(graph.query(subject=root, predicate=attribute)):
                graph.remove_triple(triple)
            fused = self._fused.get(root)
            if fused is not None:
                fused.discard(attribute)
            return
        for claim in group_claims:
            if claim.source not in self._accuracy:
                self._accuracy[claim.source] = self.build.initial_accuracy
        posterior = _accu_item_posterior(
            self.build.n_distractors, self._accuracy, group_claims
        )
        winner, probability = max(
            posterior.items(), key=lambda entry: (entry[1], str(entry[0]))
        )
        # Fold this group's fresh sufficient statistics into the global
        # per-source totals (previous contribution already retracted).
        mass: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for claim in group_claims:
            mass[claim.source] = mass.get(claim.source, 0.0) + posterior.get(
                claim.value, 0.0
            )
            counts[claim.source] = counts.get(claim.source, 0) + 1
        self._group_mass[group] = mass
        self._group_count[group] = counts
        for source in mass:
            self._em_mass[source] = self._em_mass.get(source, 0.0) + mass[source]
            self._em_count[source] = self._em_count.get(source, 0) + counts[source]
        self._update_accuracy(sorted(mass))
        if obs_lineage.lineage_enabled():
            source_trust = {
                claim.source: self._accuracy[claim.source] for claim in group_claims
            }
            for candidate, candidate_probability in sorted(
                posterior.items(), key=lambda kv: str(kv[0])
            ):
                obs_lineage.record_fusion(
                    root,
                    attribute,
                    candidate,
                    verdict="accepted" if candidate == winner else "rejected",
                    confidence=float(candidate_probability),
                    source_trust=source_trust,
                    stage="stream.fusion",
                )
        self._ensure_entity(root)
        winner_triple = Triple(root, attribute, winner)
        supporters = sorted(
            (claim for claim in group_claims if claim.value == winner),
            key=lambda claim: claim.source,
        )
        desired = [
            Provenance(source=claim.source, extractor=EXTRACTOR)
            for claim in supporters
        ]
        existing = list(graph.query(subject=root, predicate=attribute))
        if existing == [winner_triple] and graph.provenance(winner_triple) == desired:
            self._fused.setdefault(root, set()).add(attribute)
            return
        for triple in existing:
            graph.remove_triple(triple)
        adds.extend((winner_triple, provenance) for provenance in desired)
        self._fused.setdefault(root, set()).add(attribute)

    # ------------------------------------------------------------------
    # canonical finalize (the batch-equivalence keystone)

    def to_partition_result(self) -> PartitionResult:
        """The accumulated union, shaped exactly like one partition worker's
        output — so :func:`~repro.integrate.exchange.exchange` treats a
        drained stream identically to a ``partitions=1`` batch build."""
        ordered = sorted(self.records)
        records = [self.records[record_id] for record_id in ordered]
        keys = {record_id: self.keys[record_id] for record_id in ordered}
        claims = [
            claim for record_id in ordered for claim in self.claims[record_id]
        ]
        rejections = [
            rejection
            for record_id in ordered
            for rejection in self.rejections[record_id]
        ]
        store = ColumnarTripleStore()
        loader = store.bulk_loader()
        try:
            for claim in claims:
                loader.add(claim.subject, claim.attribute, claim.value)
        finally:
            loader.finish()
        terms, spo, _, _ = store.sorted_columns()
        return PartitionResult(
            index=0,
            records=records,
            keys=keys,
            scores=dict(self.scores),
            claims=claims,
            rejections=rejections,
            fragment_terms=terms,
            fragment_columns=spo,
        )

    def finalize(self) -> ExchangeOutcome:
        """Canonicalize: run the accumulated union through the batch
        exchange.  The caller owns observability scope (reset + enable)
        and what to do with the result (checkpoint the WAL, republish).
        """
        build = self.build
        return exchange(
            [self.to_partition_result()],
            strategy=build.strategy,
            match_threshold=build.match_threshold,
            backend=build.backend,
            graph_name=build.graph_name,
            n_distractors=build.n_distractors,
            n_iterations=build.n_iterations,
            initial_accuracy=build.initial_accuracy,
            min_accuracy=build.min_accuracy,
            max_accuracy=build.max_accuracy,
        )
