"""Declarative schema mappings for knowledge transformation.

"Schema alignment is mostly done manually to ensure semantics correctness
in knowledge transformation" (Sec. 2.2) — a :class:`SchemaMapping` is that
manual artifact: an explicit, reviewable mapping from source fields to
ontology relations with value casting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.ontology import Ontology
from repro.core.triple import Value


def cast_number(raw: object) -> Value:
    """Cast a raw field to int (preferred) or float."""
    if isinstance(raw, bool):
        raise ValueError("boolean is not a number")
    if isinstance(raw, (int, float)):
        return raw
    text = str(raw).strip()
    try:
        return int(text)
    except ValueError:
        return float(text)


def cast_string(raw: object) -> Value:
    """Cast a raw field to a stripped string."""
    text = str(raw).strip()
    if not text:
        raise ValueError("empty string value")
    return text


@dataclass(frozen=True)
class FieldMapping:
    """One source field mapped to one ontology relation."""

    source_field: str
    relation: str
    cast: Callable[[object], Value] = cast_string
    is_entity_reference: bool = False


@dataclass
class SchemaMapping:
    """All field mappings for one (source, entity class) pair."""

    source_name: str
    entity_class: str
    name_field: str = "name"
    fields: List[FieldMapping] = field(default_factory=list)

    def map_field(
        self,
        source_field: str,
        relation: str,
        cast: Callable[[object], Value] = cast_string,
        is_entity_reference: bool = False,
    ) -> "SchemaMapping":
        """Add a mapping; returns self for chaining."""
        self.fields.append(
            FieldMapping(
                source_field=source_field,
                relation=relation,
                cast=cast,
                is_entity_reference=is_entity_reference,
            )
        )
        return self

    def validate(self, ontology: Ontology) -> List[str]:
        """Check every mapped relation against the ontology; returns problems."""
        problems = []
        if not ontology.has_class(self.entity_class):
            problems.append(f"unknown entity class {self.entity_class!r}")
        for mapping in self.fields:
            if not ontology.has_relation(mapping.relation):
                problems.append(f"unknown relation {mapping.relation!r}")
                continue
            relation = ontology.relation(mapping.relation)
            if mapping.is_entity_reference and relation.is_attribute:
                problems.append(
                    f"{mapping.relation!r} maps to a literal but is marked as an entity reference"
                )
        return problems

    def apply(self, fields: Dict[str, object]) -> List[Tuple[str, Value, bool]]:
        """Translate a record's fields to ``(relation, value, is_entity_ref)``.

        Fields that fail casting are skipped — bad values are the fusion
        layer's problem, not the transformer's.
        """
        output: List[Tuple[str, Value, bool]] = []
        for mapping in self.fields:
            if mapping.source_field not in fields:
                continue
            raw = fields[mapping.source_field]
            try:
                value = mapping.cast(raw)
            except (ValueError, TypeError):
                continue
            output.append((mapping.relation, value, mapping.is_entity_reference))
        return output
