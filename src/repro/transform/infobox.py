"""Wikipedia-infobox-style transformation (Sec. 2.1).

An :class:`Infobox` is a titled list of (label, value) pairs, exactly the
shape of a Wikipedia infobox; the :class:`InfoboxTransformer` turns a
stream of infoboxes into entities and triples in a target KG, resolving
entity-valued attributes (e.g. ``Director: Jane Doe``) to entity nodes by
name, creating stub entities for unseen names — the mechanism by which
"hyperlinks from one entity page to another" seed the early KGs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.graph import KnowledgeGraph
from repro.core.triple import Provenance, Triple
from repro.datagen.sources import SourceRecord
from repro.transform.mapping import SchemaMapping


@dataclass
class Infobox:
    """A titled key-value box, one per entity page."""

    title: str
    entity_class: str
    pairs: List[Tuple[str, object]] = field(default_factory=list)
    page_id: str = ""

    def as_fields(self) -> Dict[str, object]:
        """Pairs as a dict (first occurrence wins)."""
        fields: Dict[str, object] = {}
        for label, value in self.pairs:
            fields.setdefault(label, value)
        return fields


def infobox_from_record(record: SourceRecord) -> Infobox:
    """Render a structured-source record as an infobox page."""
    name = record.fields.get("name") or record.fields.get("title") or ""
    if not name:
        first = record.fields.get("first_name", "")
        last = record.fields.get("last_name", "")
        name = f"{first} {last}".strip()
    pairs = [
        (label, value)
        for label, value in sorted(record.fields.items())
        if value not in (None, "")
    ]
    return Infobox(
        title=str(name),
        entity_class=record.entity_class,
        pairs=pairs,
        page_id=record.record_id,
    )


@dataclass
class InfoboxTransformer:
    """Curated infobox -> KG transformation.

    A mapping per entity class is required; unmapped labels are dropped (the
    curation guarantee).  Entity-valued attributes are resolved by exact
    name match against existing KG entities, else a stub entity is created.
    """

    graph: KnowledgeGraph
    mappings: Dict[str, SchemaMapping] = field(default_factory=dict)
    reference_class: Dict[str, str] = field(default_factory=dict)
    _stub_counter: int = 0

    def register(self, mapping: SchemaMapping, reference_classes: Optional[Dict[str, str]] = None) -> None:
        """Register the mapping for one entity class.

        ``reference_classes`` gives the entity class of each
        entity-reference relation's target (e.g. ``directed_by -> Person``).
        """
        problems = mapping.validate(self.graph.ontology)
        if problems:
            raise ValueError(f"invalid mapping for {mapping.entity_class!r}: {problems}")
        self.mappings[mapping.entity_class] = mapping
        for relation, entity_class in (reference_classes or {}).items():
            self.reference_class[relation] = entity_class

    def transform(self, infobox: Infobox, source_name: str = "wikipedia") -> Optional[str]:
        """Add one infobox to the KG; returns the new entity id (or None).

        A fresh entity node is minted per infobox — deduplication against
        other sources is knowledge integration's job, not transformation's.
        """
        mapping = self.mappings.get(infobox.entity_class)
        if mapping is None:
            return None
        if not infobox.title:
            return None
        entity_id = self._mint_id(infobox.entity_class)
        self.graph.add_entity(entity_id, infobox.title, infobox.entity_class)
        provenance = Provenance(source=source_name, extractor="infobox")
        for relation, value, is_reference in mapping.apply(infobox.as_fields()):
            if is_reference:
                value = self._resolve_reference(relation, str(value), source_name)
            self.graph.add_triple(Triple(entity_id, relation, value), provenance=provenance)
        return entity_id

    def transform_all(self, infoboxes: List[Infobox], source_name: str = "wikipedia") -> int:
        """Transform a batch; returns how many infoboxes landed."""
        landed = 0
        for infobox in infoboxes:
            if self.transform(infobox, source_name=source_name) is not None:
                landed += 1
        return landed

    def _resolve_reference(self, relation: str, name: str, source_name: str) -> str:
        matches = self.graph.find_by_name(name)
        target_class = self.reference_class.get(relation)
        if target_class is not None:
            matches = [
                entity
                for entity in matches
                if self.graph.ontology.is_subclass_of(entity.entity_class, target_class)
            ]
        if matches:
            return matches[0].entity_id
        entity_id = self._mint_id(target_class or "Agent")
        self.graph.add_entity(entity_id, name, target_class or "Agent")
        return entity_id

    def _mint_id(self, entity_class: str) -> str:
        self._stub_counter += 1
        return f"kg:{entity_class.lower()}:{self._stub_counter:06d}"
