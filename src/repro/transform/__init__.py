"""Knowledge transformation (Sec. 2.1): structured data -> triples.

"Entities and relationships in KGs can be transformed from structured data
such as relational databases.  Wikipedia Infoboxes can be transformed to
entities and relationships in a straight-forward way; this spurs successful
early KGs such as Yago, DBPedia and Freebase."

The transformation is driven by declarative, hand-curated schema mappings
(:mod:`repro.transform.mapping`) — curation is what gives this stage its
quality guarantee in the paper.
"""

from repro.transform.mapping import FieldMapping, SchemaMapping
from repro.transform.infobox import Infobox, InfoboxTransformer, infobox_from_record
from repro.transform.relational import RelationalTransformer

__all__ = [
    "FieldMapping",
    "SchemaMapping",
    "Infobox",
    "InfoboxTransformer",
    "infobox_from_record",
    "RelationalTransformer",
]
