"""Relational-source transformation (Sec. 2.1).

"The DBMS uses ER Diagrams to visualize the logical structure of the
database. Therefore, entities and relationships in KGs can be transformed
from structured data such as relational databases."

The :class:`RelationalTransformer` ingests a whole
:class:`~repro.datagen.sources.StructuredSource` through per-class schema
mappings, minting one KG entity per record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.graph import KnowledgeGraph
from repro.core.triple import Provenance, Triple
from repro.datagen.sources import SourceRecord, StructuredSource
from repro.transform.mapping import SchemaMapping


@dataclass
class RelationalTransformer:
    """Structured source -> KG, one entity per record."""

    graph: KnowledgeGraph
    mappings: Dict[str, SchemaMapping] = field(default_factory=dict)
    reference_class: Dict[str, str] = field(default_factory=dict)
    record_entity_: Dict[str, str] = field(default_factory=dict, init=False)

    def register(
        self,
        mapping: SchemaMapping,
        reference_classes: Optional[Dict[str, str]] = None,
    ) -> None:
        """Register a per-class mapping (validated against the ontology)."""
        problems = mapping.validate(self.graph.ontology)
        if problems:
            raise ValueError(f"invalid mapping for {mapping.entity_class!r}: {problems}")
        self.mappings[mapping.entity_class] = mapping
        for relation, entity_class in (reference_classes or {}).items():
            self.reference_class[relation] = entity_class

    def transform_source(self, source: StructuredSource) -> int:
        """Ingest every mappable record; returns the number ingested."""
        ingested = 0
        for record in source.records:
            if self.transform_record(record) is not None:
                ingested += 1
        return ingested

    def transform_record(self, record: SourceRecord) -> Optional[str]:
        """Ingest one record; returns the new entity id (or None)."""
        mapping = self.mappings.get(record.entity_class)
        if mapping is None:
            return None
        name = self._record_name(record, mapping)
        if not name:
            return None
        entity_id = f"{record.source}:{record.record_id}"
        if self.graph.has_entity(entity_id):
            return None
        self.graph.add_entity(entity_id, name, record.entity_class)
        self.record_entity_[record.record_id] = entity_id
        provenance = Provenance(source=record.source, extractor=None)
        for relation, value, is_reference in mapping.apply(record.fields):
            if is_reference:
                value = self._resolve_reference(relation, str(value), record.source)
            self.graph.add_triple(Triple(entity_id, relation, value), provenance=provenance)
        return entity_id

    def _record_name(self, record: SourceRecord, mapping: SchemaMapping) -> str:
        name = record.fields.get(mapping.name_field)
        if name:
            return str(name)
        first = record.fields.get("first_name", "")
        last = record.fields.get("last_name", "")
        return f"{first} {last}".strip()

    def _resolve_reference(self, relation: str, name: str, source: str) -> str:
        matches = self.graph.find_by_name(name)
        target_class = self.reference_class.get(relation)
        if target_class is not None:
            matches = [
                entity
                for entity in matches
                if self.graph.ontology.is_subclass_of(entity.entity_class, target_class)
            ]
        if matches:
            return matches[0].entity_id
        entity_id = f"{source}:ref:{name.lower().replace(' ', '_')}"
        if not self.graph.has_entity(entity_id):
            self.graph.add_entity(entity_id, name, target_class or "Agent")
        return entity_id
