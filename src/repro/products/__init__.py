"""Text-rich KG construction for the product domain (Sec. 3).

* :mod:`repro.products.opentag` — OpenTag-style NER extraction of attribute
  values from product profiles (the Sec. 3.1 seed technique);
* :mod:`repro.products.pipelines` — the Fig. 5(a) production pipeline and
  the Fig. 5(b) automated pipeline, with a manual-work ledger;
* :mod:`repro.products.cleaning` — knowledge cleaning via taxonomy-aware
  consistency rules and catalog statistics (Sec. 3.2);
* :mod:`repro.products.taxonomy_mining` — hypernym mining from customer
  behavior (Octet-style, Sec. 3.1);
* :mod:`repro.products.relationships` — substitutes/complements mining;
* :mod:`repro.products.txtract` — type-aware one-model-for-all-types
  extraction (TXtract, Sec. 3.3);
* :mod:`repro.products.adatag` — attribute-conditioned multi-attribute
  extraction (AdaTag, Sec. 3.3);
* :mod:`repro.products.pam` — multi-modal text+image extraction (PAM,
  Sec. 3.4);
* :mod:`repro.products.autoknow` — the AutoKnow-style end-to-end
  self-driving collection system (Sec. 3.5).
"""

from repro.products.opentag import OpenTagModel, distant_bio_tags, gold_bio_tags
from repro.products.pipelines import (
    AutomatedPipeline,
    ManualWorkLedger,
    PipelineResult,
    ProductionPipeline,
)
from repro.products.cleaning import CleaningReport, KnowledgeCleaner
from repro.products.taxonomy_mining import HypernymMiner, MinedHypernym
from repro.products.relationships import RelationshipMiner
from repro.products.txtract import TXtractModel
from repro.products.adatag import AdaTagModel
from repro.products.pam import PAMExtractor
from repro.products.autoknow import AutoKnow, AutoKnowReport
from repro.products.companion import CompanionRecommender
from repro.products.imputation import ValueImputer
from repro.products.search import ProductSearch

__all__ = [
    "OpenTagModel",
    "distant_bio_tags",
    "gold_bio_tags",
    "AutomatedPipeline",
    "ManualWorkLedger",
    "PipelineResult",
    "ProductionPipeline",
    "CleaningReport",
    "KnowledgeCleaner",
    "HypernymMiner",
    "MinedHypernym",
    "RelationshipMiner",
    "TXtractModel",
    "AdaTagModel",
    "PAMExtractor",
    "AutoKnow",
    "AutoKnowReport",
    "CompanionRecommender",
    "ValueImputer",
    "ProductSearch",
]
