"""Product search and comparison over a text-rich KG.

The paper motivates text-rich KGs by the features they feed: "information
display, product comparison, search, recommendation" (Sec. 3.2) and
conversational shopping [48].  This module implements the first three on
top of :class:`~repro.core.textrich.TextRichKG`:

* :meth:`ProductSearch.search` — parse a free-text query with the same
  tagger family that built the KG (attribute values become filters, type
  words become taxonomy filters), then intersect the KG's bipartite
  indexes;
* :meth:`ProductSearch.display` — the attribute-value panel for one topic
  ("display information for human understanding (in attribute-value
  pairs)", Sec. 1);
* :meth:`ProductSearch.compare` — the side-by-side table ("comparison (in
  tables)", Sec. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.textrich import TextRichKG


@dataclass(frozen=True)
class ParsedQuery:
    """What the query understander extracted from the text."""

    type_filter: Optional[str]
    value_filters: Tuple[Tuple[str, str], ...]  # (attribute, value)
    residual_terms: Tuple[str, ...]


@dataclass(frozen=True)
class SearchHit:
    """One ranked result."""

    topic_id: str
    title: str
    score: float
    matched: Tuple[str, ...]


@dataclass
class ProductSearch:
    """Attribute-aware search over the bipartite KG."""

    kg: TextRichKG

    def parse(self, query: str) -> ParsedQuery:
        """Understand a query with KG vocabulary (no model needed: the KG
        itself is the gazetteer of types and attribute values)."""
        lowered = query.lower()
        tokens = lowered.split()
        # Type filter: longest taxonomy class name appearing in the query.
        type_filter = None
        for class_name in sorted(self.kg.taxonomy.classes(), key=len, reverse=True):
            if class_name.lower() in lowered:
                type_filter = class_name
                break
        # Value filters: known attribute values appearing in the query,
        # longest-first so "dark roast" beats "dark".
        value_filters: List[Tuple[str, str]] = []
        consumed: Set[str] = set()
        candidates: List[Tuple[str, str]] = []
        for attribute in self.kg.attributes():
            for value in self.kg.distinct_values(attribute):
                candidates.append((attribute, value))
        for attribute, value in sorted(candidates, key=lambda av: -len(av[1])):
            if value in lowered and not any(value in other for other in consumed):
                value_filters.append((attribute, value))
                consumed.add(value)
        residual = tuple(
            token
            for token in tokens
            if not any(token in value for _a, value in value_filters)
            and (type_filter is None or token not in type_filter.lower())
        )
        return ParsedQuery(
            type_filter=type_filter,
            value_filters=tuple(sorted(value_filters)),
            residual_terms=residual,
        )

    def search(self, query: str, top_k: int = 10) -> List[SearchHit]:
        """Rank topics by filter satisfaction + title term overlap."""
        parsed = self.parse(query)
        scores: Dict[str, float] = {}
        matched: Dict[str, List[str]] = {}
        candidate_ids: Set[str] = set()
        if parsed.type_filter is not None:
            candidate_ids = {
                topic.entity_id for topic in self.kg.topics(parsed.type_filter)
            }
        else:
            candidate_ids = {topic.entity_id for topic in self.kg.topics()}
        for attribute, value in parsed.value_filters:
            holders = set(self.kg.topics_with_value(attribute, value))
            for topic_id in holders & candidate_ids:
                scores[topic_id] = scores.get(topic_id, 0.0) + 1.0
                matched.setdefault(topic_id, []).append(f"{attribute}={value}")
        if not parsed.value_filters:
            for topic_id in candidate_ids:
                scores.setdefault(topic_id, 0.0)
        # Residual terms match against titles (weak signal).
        for topic_id in list(scores):
            title = self.kg.topic(topic_id).title.lower()
            bonus = sum(0.1 for term in parsed.residual_terms if term in title)
            scores[topic_id] += bonus
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        hits = []
        for topic_id, score in ranked[:top_k]:
            hits.append(
                SearchHit(
                    topic_id=topic_id,
                    title=self.kg.topic(topic_id).title,
                    score=score,
                    matched=tuple(sorted(matched.get(topic_id, ()))),
                )
            )
        return hits

    def display(self, topic_id: str) -> Dict[str, str]:
        """The attribute-value panel for one topic (best value per attr)."""
        panel: Dict[str, str] = {}
        for record in self.kg.values(topic_id):
            current = panel.get(record.attribute)
            if current is None:
                panel[record.attribute] = record.value
        return panel

    def compare(self, topic_ids: Sequence[str]) -> List[List[str]]:
        """A side-by-side comparison table: header row then one row per
        attribute any of the topics carries."""
        header = ["attribute"] + [self.kg.topic(topic_id).title for topic_id in topic_ids]
        attributes: Set[str] = set()
        panels = {}
        for topic_id in topic_ids:
            panels[topic_id] = self.display(topic_id)
            attributes.update(panels[topic_id])
        rows = [header]
        for attribute in sorted(attributes):
            rows.append(
                [attribute]
                + [panels[topic_id].get(attribute, "-") for topic_id in topic_ids]
            )
        return rows
