"""AdaTag: multi-attribute extraction with an adaptive decoder (Sec. 3.3).

"AdaTag takes attribute embeddings as input, and applies Mix of Expert
(MoE) and HyperNet to leverage the similarities between the attributes
(e.g., flavor and scent, though different, share a lot of common
vocabularies). It can train one model for 32 major attributes whereas
still improving quality over training one model per attribute."

Reproduction: one shared tagger, trained on a per-(product, attribute)
expansion of the corpus where each example is tagged *only* for its target
attribute and carries attribute context features (attribute identity plus
attribute-embedding buckets).  Because non-conjoined token features are
shared across attributes, vocabulary learned for ``flavor`` transfers to
``scent`` — the MoE-style parameter sharing; the attribute-conditioned
features play the adaptive-decoder role.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.products import LabeledText, ProductRecord
from repro.ml.embeddings import hash_embedding
from repro.ml.metrics import BinaryConfusion
from repro.ml.tagger import BIO, SequenceTagger
from repro.products.opentag import distant_bio_tags, gold_bio_tags, mentioned_attributes


def attribute_context_features(attribute: str, n_buckets: int = 8) -> List[str]:
    """Attribute identity plus embedding-bucket features.

    The buckets let similar attribute names land in shared buckets, giving
    the model a soft notion of attribute similarity.
    """
    features = [f"attr={attribute}"]
    vector = hash_embedding(attribute, dim=n_buckets)
    for dimension, value in enumerate(vector):
        if value > 0:
            features.append(f"avec{dimension}+")
    return features


@dataclass
class AdaTagModel:
    """One attribute-conditioned tagger for many attributes."""

    attributes: Tuple[str, ...]
    n_epochs: int = 8
    seed: int = 0
    tagger_: Optional[SequenceTagger] = field(default=None, init=False, repr=False)

    def fit(
        self, products: Sequence[ProductRecord], supervision: str = "gold"
    ) -> "AdaTagModel":
        """Train on the per-attribute expansion of the product corpus."""
        sentences: List[List[str]] = []
        tag_sequences: List[List[str]] = []
        contexts: List[List[str]] = []
        for product in products:
            for text in product.all_texts():
                for attribute in self.attributes:
                    if supervision == "gold":
                        tags = gold_bio_tags(text, {attribute})
                    elif supervision == "distant":
                        tags = distant_bio_tags(text, product.catalog_values, {attribute})
                    else:
                        raise ValueError(f"unknown supervision mode {supervision!r}")
                    sentences.append(list(text.tokens))
                    tag_sequences.append(tags)
                    contexts.append(attribute_context_features(attribute))
        self.tagger_ = SequenceTagger(n_epochs=self.n_epochs, seed=self.seed)
        self.tagger_.fit(sentences, tag_sequences, contexts=contexts)
        return self

    def extract(self, product: ProductRecord) -> Dict[str, str]:
        """One conditioned decoding pass per attribute."""
        if self.tagger_ is None:
            raise RuntimeError("model is not fitted")
        found: Dict[str, str] = {}
        for attribute in self.attributes:
            context = attribute_context_features(attribute)
            for text in product.all_texts():
                if attribute in found:
                    break
                for label, value in self.tagger_.extract(list(text.tokens), context):
                    if label == attribute:
                        found[attribute] = value
                        break
        return found

    def evaluate(self, products: Sequence[ProductRecord]) -> Dict[str, BinaryConfusion]:
        """Per-attribute value-level confusion on held-out products."""
        confusions: Dict[str, BinaryConfusion] = {
            attribute: BinaryConfusion() for attribute in self.attributes
        }
        for product in products:
            predicted = self.extract(product)
            mentioned = mentioned_attributes(product)
            for attribute in self.attributes:
                truth = product.true_values.get(attribute)
                has_truth = attribute in mentioned and truth is not None
                prediction = predicted.get(attribute)
                if prediction is not None and has_truth and prediction.lower() == truth.lower():
                    confusions[attribute] += BinaryConfusion(true_positive=1)
                elif prediction is not None:
                    confusions[attribute] += BinaryConfusion(false_positive=1)
                elif has_truth:
                    confusions[attribute] += BinaryConfusion(false_negative=1)
        return confusions

    def micro_f1(self, products: Sequence[ProductRecord]) -> float:
        """Micro-averaged F1 over all attributes."""
        total = BinaryConfusion()
        for confusion in self.evaluate(products).values():
            total += confusion
        return total.f1
