"""Knowledge cleaning for text-rich KGs (Sec. 3.2).

Two constructions, matching the two pipelines of Fig. 5:

* :meth:`KnowledgeCleaner.from_rules` — hand-written consistency rules
  ("spicy is unlikely to be the flavor of icecreams"), the Fig. 5(a)
  post-processing;
* :meth:`KnowledgeCleaner.from_catalog_statistics` — rules *learned* from
  catalog value statistics: a value that essentially never occurs for a
  (type, attribute) while being common elsewhere is flagged, plus
  cross-attribute contradiction pairs mined from co-occurrence — the
  Fig. 5(b) ML-based cleaning, "leveraging consistency between different
  attribute values of the same product and between products of the same
  type".
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datagen.products import (
    ATTRIBUTE_SPEC,
    CONTRADICTIONS,
    FORBIDDEN_VALUES,
    ProductDomain,
)


@dataclass
class CleaningReport:
    """What a cleaning pass dropped and why."""

    kept: Dict[str, str] = field(default_factory=dict)
    dropped: List[Tuple[str, str, str]] = field(default_factory=list)  # (attr, value, reason)


@dataclass
class KnowledgeCleaner:
    """Filter (attribute, value) assertions against consistency knowledge."""

    forbidden: Set[Tuple[str, str, str]] = field(default_factory=set)
    contradictions: List[Tuple[Tuple[str, str], Tuple[str, str]]] = field(default_factory=list)
    type_vocabulary: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict)

    @property
    def n_rules(self) -> int:
        """Number of distinct rules (the manual-work unit for Fig. 5a)."""
        return len(self.forbidden) + len(self.contradictions)

    # ------------------------------------------------------------------
    # constructors

    @staticmethod
    def from_rules(domain: ProductDomain) -> "KnowledgeCleaner":
        """Hand-written rules: forbidden values + contradictions + closed
        per-type vocabularies (curated by taxonomists in Fig. 5a)."""
        cleaner = KnowledgeCleaner(
            forbidden=set(FORBIDDEN_VALUES),
            contradictions=list(CONTRADICTIONS),
        )
        for product_type, spec in ATTRIBUTE_SPEC.items():
            for attribute, vocabulary in spec.items():
                cleaner.type_vocabulary[(product_type, attribute)] = {
                    value.lower() for value in vocabulary
                }
        return cleaner

    @staticmethod
    def from_catalog_statistics(
        domain: ProductDomain, min_support: int = 2, rarity_threshold: float = 0.02
    ) -> "KnowledgeCleaner":
        """Learn cleaning knowledge from (noisy) catalog statistics.

        * per-(type, attribute) vocabularies = catalog values with at least
          ``min_support`` occurrences for that type;
        * forbidden (type, attribute, value) = values common globally for
          the attribute but below a ``rarity_threshold`` share within the
          type;
        * contradictions = value pairs that never co-occur in the catalog
          despite both being frequent.
        """
        type_attribute_counts: Dict[Tuple[str, str], Dict[str, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        attribute_counts: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        pair_counts: Dict[Tuple[Tuple[str, str], Tuple[str, str]], int] = defaultdict(int)
        value_frequency: Dict[Tuple[str, str], int] = defaultdict(int)
        for product in domain.products:
            items = sorted(product.catalog_values.items())
            for attribute, value in items:
                type_attribute_counts[(product.product_type, attribute)][value.lower()] += 1
                attribute_counts[attribute][value.lower()] += 1
                value_frequency[(attribute, value.lower())] += 1
            for left_position in range(len(items)):
                for right_position in range(left_position + 1, len(items)):
                    left = (items[left_position][0], items[left_position][1].lower())
                    right = (items[right_position][0], items[right_position][1].lower())
                    pair_counts[(left, right)] += 1
        cleaner = KnowledgeCleaner()
        for (product_type, attribute), counts in type_attribute_counts.items():
            total = sum(counts.values())
            vocabulary = {
                value for value, count in counts.items() if count >= min_support
            }
            cleaner.type_vocabulary[(product_type, attribute)] = vocabulary
            for value, global_count in attribute_counts[attribute].items():
                share = counts.get(value, 0) / max(total, 1)
                if global_count >= 5 and share < rarity_threshold:
                    cleaner.forbidden.add((product_type, attribute, value))
        # Contradictions: frequent values that never co-occur.
        frequent = {
            key for key, count in value_frequency.items() if count >= 8
        }
        for left in sorted(frequent):
            for right in sorted(frequent):
                if left >= right or left[0] == right[0]:
                    continue
                if pair_counts.get((left, right), 0) + pair_counts.get((right, left), 0) == 0:
                    # Only meaningful if the two attributes do co-occur at all.
                    attrs_cooccur = any(
                        key[0][0] == left[0] and key[1][0] == right[0]
                        or key[0][0] == right[0] and key[1][0] == left[0]
                        for key in pair_counts
                    )
                    if attrs_cooccur:
                        cleaner.contradictions.append((left, right))
        return cleaner

    # ------------------------------------------------------------------
    # cleaning

    def normalize(self, values: Dict[str, str], product_type: str) -> Dict[str, str]:
        """Expand partial value mentions to their canonical vocabulary form.

        Profiles often mention only the head word of a multi-word value
        ("dark" for "dark roast"); when exactly one vocabulary entry for the
        (type, attribute) starts with the extracted text, the value is
        expanded.  This is the normalization half of pipeline
        post-processing that lifts raw NER output to production quality.
        """
        normalized: Dict[str, str] = {}
        for attribute, value in values.items():
            vocabulary = self.type_vocabulary.get((product_type, attribute))
            lowered = value.lower()
            if vocabulary and lowered not in vocabulary:
                completions = [
                    candidate
                    for candidate in sorted(vocabulary)
                    if candidate.split()[0] == lowered or candidate.startswith(lowered + " ")
                ]
                if len(completions) == 1:
                    normalized[attribute] = completions[0]
                    continue
            normalized[attribute] = value
        return normalized

    def clean(self, values: Dict[str, str], product_type: str) -> Dict[str, str]:
        """Normalize, then keep the assertions that survive all checks."""
        normalized = self.normalize(values, product_type)
        return self.clean_report(normalized, product_type).kept

    def clean_report(self, values: Dict[str, str], product_type: str) -> CleaningReport:
        """Cleaning with per-drop reasons (for audits and tests)."""
        report = CleaningReport()
        survivors: Dict[str, str] = {}
        for attribute, value in sorted(values.items()):
            lowered = value.lower()
            if (product_type, attribute, lowered) in _lower_forbidden(self.forbidden):
                report.dropped.append((attribute, value, "forbidden_for_type"))
                continue
            vocabulary = self.type_vocabulary.get((product_type, attribute))
            if vocabulary is not None and lowered not in vocabulary:
                report.dropped.append((attribute, value, "outside_type_vocabulary"))
                continue
            survivors[attribute] = value
        # Contradiction resolution: drop the later (alphabetical) member.
        for (attr_a, value_a), (attr_b, value_b) in self.contradictions:
            if (
                survivors.get(attr_a, "").lower() == value_a.lower()
                and survivors.get(attr_b, "").lower() == value_b.lower()
            ):
                report.dropped.append((attr_b, survivors[attr_b], "contradiction"))
                del survivors[attr_b]
        report.kept = survivors
        return report


def _lower_forbidden(forbidden: Set[Tuple[str, str, str]]) -> Set[Tuple[str, str, str]]:
    return {(t, a, v.lower()) for t, a, v in forbidden}
