"""PAM: multi-modal (text + image) attribute extraction (Sec. 3.4).

"The PAM multi-modal extractor employs a multi-modal transformer to attend
across texts and images to improve knowledge extraction; in addition, it
uses a generative model, adapted according to the product types, to allow
extracting values not observed in training data. Experimental results show
that it can improve over text extraction by 11% on F-measure."

Reproduction: the text channel is a tagger (any OpenTag-family model); the
image channel matches per-product visual tokens against a per-(type,
attribute) candidate-value vocabulary *learned from training products'
image evidence* — playing the type-adapted generative decoder: it can emit
values the text model never saw in its training spans, as long as the image
signal supports them.  Channel fusion prefers text (higher precision) and
falls back to image (recall on unmentioned values).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.datagen.products import ProductRecord
from repro.ml.metrics import BinaryConfusion
from repro.products.opentag import OpenTagModel, mentioned_attributes


def _image_signature(value: str) -> str:
    """The visual-token form of a value ("dark roast" -> "img:dark")."""
    return f"img:{value.split()[0].lower()}"


@dataclass
class PAMExtractor:
    """Text tagger + image-channel value matcher with type adaptation."""

    attributes: Tuple[str, ...]
    n_epochs: int = 8
    image_confidence: float = 0.7
    seed: int = 0
    text_model_: Optional[OpenTagModel] = field(default=None, init=False, repr=False)
    value_catalog_: Dict[Tuple[str, str], Set[str]] = field(default_factory=dict, init=False)

    def fit(
        self, products: Sequence[ProductRecord], supervision: str = "gold"
    ) -> "PAMExtractor":
        """Train the text channel and learn the per-type value catalog.

        The value catalog is built from *image-evidenced* training values:
        a value joins (type, attribute)'s candidates when a training
        product of that type shows the value's visual signature — no text
        span required, which is what later allows decoding unseen-in-text
        values.
        """
        self.text_model_ = OpenTagModel(
            attributes=self.attributes, n_epochs=self.n_epochs, seed=self.seed
        ).fit(products, supervision=supervision)
        catalog: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        for product in products:
            image_tokens = set(product.image_tokens)
            for attribute in self.attributes:
                value = product.catalog_values.get(attribute) or product.true_values.get(
                    attribute
                )
                if value is None:
                    continue
                if _image_signature(value) in image_tokens:
                    catalog[(product.product_type, attribute)].add(value.lower())
        self.value_catalog_ = dict(catalog)
        return self

    def extract_text_only(self, product: ProductRecord) -> Dict[str, str]:
        """The text-channel baseline."""
        if self.text_model_ is None:
            raise RuntimeError("extractor is not fitted")
        return self.text_model_.extract(product)

    def extract(self, product: ProductRecord) -> Dict[str, str]:
        """Fused multi-modal extraction."""
        found = self.extract_text_only(product)
        image_tokens = set(product.image_tokens)
        for attribute in self.attributes:
            if attribute in found:
                continue
            candidates = self.value_catalog_.get((product.product_type, attribute), set())
            matches = [
                value for value in sorted(candidates)
                if _image_signature(value) in image_tokens
            ]
            if len(matches) == 1:
                # Unambiguous image evidence: decode the value from the
                # image channel alone.
                found[attribute] = matches[0]
        return found

    def evaluate(
        self, products: Sequence[ProductRecord], multimodal: bool = True
    ) -> Dict[str, BinaryConfusion]:
        """Value-level confusion per attribute.

        Unlike the text-only evaluation, truth here includes values *not*
        mentioned in the text — recovering those is PAM's contribution, so
        the text-only baseline is charged for missing them.
        """
        confusions: Dict[str, BinaryConfusion] = {
            attribute: BinaryConfusion() for attribute in self.attributes
        }
        for product in products:
            predicted = (
                self.extract(product) if multimodal else self.extract_text_only(product)
            )
            for attribute in self.attributes:
                truth = product.true_values.get(attribute)
                prediction = predicted.get(attribute)
                if prediction is not None and truth is not None and prediction.lower() == truth.lower():
                    confusions[attribute] += BinaryConfusion(true_positive=1)
                elif prediction is not None:
                    confusions[attribute] += BinaryConfusion(false_positive=1)
                elif truth is not None:
                    confusions[attribute] += BinaryConfusion(false_negative=1)
        return confusions

    def micro_f1(self, products: Sequence[ProductRecord], multimodal: bool = True) -> float:
        """Micro-averaged F1 (set ``multimodal=False`` for the baseline)."""
        total = BinaryConfusion()
        for confusion in self.evaluate(products, multimodal=multimodal).values():
            total += confusion
        return total.f1

    def unseen_value_recall(self, products: Sequence[ProductRecord]) -> float:
        """Recall on values absent from the product's own text.

        The generative-decoding claim: how often a true value with no text
        mention is still recovered (necessarily via the image channel).
        """
        recovered = 0
        total = 0
        for product in products:
            mentioned = mentioned_attributes(product)
            predicted = self.extract(product)
            for attribute in self.attributes:
                truth = product.true_values.get(attribute)
                if truth is None or attribute in mentioned:
                    continue
                total += 1
                if predicted.get(attribute, "").lower() == truth.lower():
                    recovered += 1
        return recovered / total if total else 0.0
