"""AutoKnow-style self-driving product knowledge collection (Sec. 3.5).

"With one-size-fits-all extraction and cleaning, Amazon AutoKnow system
automatically collected 1B knowledge triples over 11K distinct product
types, and considerably extended the ontology and improved Catalog
quality."

The orchestration mirrors Fig. 4(b): taxonomy enrichment from behavior,
distantly-supervised type-aware extraction over *all* types at once
(TXtract), statistical knowledge cleaning, and assembly of the resulting
text-rich KG.  The report quantifies the same outcomes AutoKnow reported:
triples added over the catalog, types covered, and the quality of what was
added.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.textrich import AttributeValue, TextRichKG
from repro.datagen.behavior import BehaviorLog
from repro.datagen.products import ProductDomain
from repro.ml.metrics import BinaryConfusion
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics
from repro.obs import quality as obs_quality
from repro.obs.profiling import profiled
from repro.obs.tracing import span
from repro.products.cleaning import KnowledgeCleaner
from repro.products.opentag import train_test_split
from repro.products.taxonomy_mining import HypernymMiner, enrich_taxonomy
from repro.products.txtract import TXtractModel


@dataclass
class AutoKnowReport:
    """The AutoKnow outcome numbers."""

    n_catalog_triples: int = 0
    n_extracted_triples: int = 0
    n_cleaned_triples: int = 0
    n_imputed_triples: int = 0
    n_final_triples: int = 0
    n_types_covered: int = 0
    n_taxonomy_edges_added: int = 0
    extraction_accuracy: float = 0.0
    catalog_accuracy: float = 0.0
    imputation_accuracy: float = 1.0
    final_accuracy: float = 0.0

    @property
    def growth_factor(self) -> float:
        """Final triples relative to the catalog baseline."""
        if self.n_catalog_triples == 0:
            return float("inf")
        return self.n_final_triples / self.n_catalog_triples


@dataclass
class AutoKnow:
    """The end-to-end self-driving collection pipeline.

    With ``curated_taxonomy`` (default), mined hypernyms only *extend* the
    domain's existing taxonomy; without it, AutoKnow bootstraps a taxonomy
    from scratch — leaf types appear as roots when products are ingested
    and behavior mining organizes them under discovered parents, the Octet
    setting where "considerably extended the ontology" is visible.
    """

    n_epochs: int = 6
    seed: int = 0
    curated_taxonomy: bool = True
    impute_missing: bool = False
    imputation_confidence: float = 0.8
    kg_: Optional[TextRichKG] = field(default=None, init=False)
    report_: Optional[AutoKnowReport] = field(default=None, init=False)

    @profiled("autoknow.run")
    def run(
        self,
        domain: ProductDomain,
        behavior: Optional[BehaviorLog] = None,
    ) -> AutoKnowReport:
        """Build the text-rich KG; returns the outcome report."""
        from repro.core.ontology import Ontology

        report = AutoKnowReport()
        taxonomy = domain.taxonomy if self.curated_taxonomy else Ontology(name="discovered")
        kg = TextRichKG(taxonomy=taxonomy, name="autoknow")

        # ---- ontology enrichment (behavior -> taxonomy edges) ----------
        if behavior is not None:
            with span("autoknow.taxonomy_enrichment"):
                miner = HypernymMiner()
                mined = miner.mine(domain, behavior)
                report.n_taxonomy_edges_added = enrich_taxonomy(
                    taxonomy, mined, create_parents=not self.curated_taxonomy
                )

        # ---- data enrichment: distantly-supervised TXtract -------------
        with span("autoknow.train_txtract"):
            attributes = tuple(domain.attributes())
            train, _test = train_test_split(
                domain.products, test_fraction=0.0, seed=self.seed
            )
            model = TXtractModel(
                attributes=attributes, n_epochs=self.n_epochs, seed=self.seed
            ).fit(train, supervision="distant")

        # ---- cleaning learned from catalog statistics ------------------
        cleaner = KnowledgeCleaner.from_catalog_statistics(domain)

        # ---- optional imputation of still-missing catalog values -------
        imputer = None
        if self.impute_missing:
            from repro.products.imputation import ValueImputer

            imputer = ValueImputer(min_confidence=self.imputation_confidence).fit(domain)

        imputation_confusion = BinaryConfusion()
        extraction_confusion = BinaryConfusion()
        catalog_confusion = BinaryConfusion()
        final_confusion = BinaryConfusion()
        types_covered = set()
        with span("autoknow.collect", n_products=len(domain.products)):
            for product in domain.products:
                kg.add_topic(
                    product.product_id,
                    product.title_text,
                    product.leaf_type,
                )
                # Catalog triples form the baseline KG content.
                for attribute, value in sorted(product.catalog_values.items()):
                    kg.add_value(
                        product.product_id,
                        AttributeValue(attribute=attribute, value=value, source="catalog"),
                    )
                    report.n_catalog_triples += 1
                    catalog_confusion += _judge(product, attribute, value)
                # Extraction + cleaning adds new knowledge.
                extracted = model.extract(product)
                report.n_extracted_triples += len(extracted)
                for attribute, value in sorted(extracted.items()):
                    extraction_confusion += _judge(product, attribute, value)
                kept = cleaner.clean(extracted, product.product_type)
                report.n_cleaned_triples += len(extracted) - len(kept)
                for attribute, value in sorted(extracted.items()):
                    if kept.get(attribute) != value:
                        obs_lineage.record_rejection(
                            product.product_id,
                            attribute,
                            value,
                            reason="catalog-statistics cleaning",
                            stage="autoknow.cleaning",
                        )
                for attribute, value in sorted(kept.items()):
                    if product.catalog_values.get(attribute, "").lower() == value.lower():
                        continue  # already in the catalog
                    kg.add_value(
                        product.product_id,
                        AttributeValue(
                            attribute=attribute, value=value, confidence=0.9, source="txtract"
                        ),
                    )
                    final_confusion += _judge(product, attribute, value)
                    types_covered.add(product.product_type)
                # Imputation fills attributes neither the catalog nor the
                # profile text provided.
                if imputer is not None:
                    still_missing = [
                        attribute
                        for attribute in sorted(product.true_values)
                        if attribute not in product.catalog_values and attribute not in kept
                    ]
                    for imputation in imputer.impute_all(product, still_missing):
                        kg.add_value(
                            product.product_id,
                            AttributeValue(
                                attribute=imputation.attribute,
                                value=imputation.value,
                                confidence=imputation.confidence,
                                source="imputation",
                            ),
                        )
                        report.n_imputed_triples += 1
                        imputation_confusion += _judge(
                            product, imputation.attribute, imputation.value
                        )

        stats = kg.stats()
        report.n_final_triples = stats["n_value_triples"]
        report.n_types_covered = len(types_covered)
        report.extraction_accuracy = _confusion_precision(extraction_confusion)
        report.catalog_accuracy = _confusion_precision(catalog_confusion)
        report.imputation_accuracy = _confusion_precision(imputation_confusion)
        report.final_accuracy = _confusion_precision(final_confusion)
        obs_metrics.count("autoknow.catalog_triples", report.n_catalog_triples)
        obs_metrics.count("autoknow.extracted_triples", report.n_extracted_triples)
        obs_metrics.count("autoknow.cleaned_triples", report.n_cleaned_triples)
        obs_metrics.count("autoknow.imputed_triples", report.n_imputed_triples)
        obs_metrics.gauge("autoknow.final_triples", report.n_final_triples)
        obs_metrics.gauge("autoknow.final_accuracy", report.final_accuracy)
        if obs_lineage.lineage_enabled():
            obs_quality.capture(kg, name=kg.name)
        self.kg_ = kg
        self.report_ = report
        return report


def _judge(product, attribute: str, value: str) -> BinaryConfusion:
    truth = product.true_values.get(attribute)
    if truth is not None and truth.lower() == value.lower():
        return BinaryConfusion(true_positive=1)
    return BinaryConfusion(false_positive=1)


def _confusion_precision(confusion: BinaryConfusion) -> float:
    total = confusion.true_positive + confusion.false_positive
    if total == 0:
        return 1.0
    return confusion.true_positive / total
