"""Substitutes and complements from behavior logs (Sec. 3.1).

"Such methods are also used to establish the substitutes and complements
between products" — P-Companion-style: co-*view* pairs signal
substitutability (customers comparing alternatives), co-*purchase* pairs
across types signal complementarity (bought together to be used together).
PMI against an independence baseline separates signal from traffic noise.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.behavior import BehaviorLog
from repro.datagen.products import ProductDomain


@dataclass(frozen=True)
class MinedRelation:
    """One mined product-type relation with its PMI score."""

    left_type: str
    right_type: str
    relation: str  # "substitute" | "complement"
    pmi: float
    support: int


@dataclass
class RelationshipMiner:
    """Type-level substitute/complement mining over event pairs."""

    min_support: int = 5
    min_pmi: float = 0.2

    def mine(self, domain: ProductDomain, log: BehaviorLog) -> List[MinedRelation]:
        """Mine both relation kinds from the log."""
        type_of = {product.product_id: product.product_type for product in domain.products}
        relations: List[MinedRelation] = []
        relations.extend(
            self._mine_channel(log.co_views, type_of, relation="substitute", same_type=True)
        )
        relations.extend(
            self._mine_channel(
                log.co_purchases, type_of, relation="complement", same_type=False
            )
        )
        return sorted(relations, key=lambda r: (-r.pmi, r.left_type, r.right_type))

    def _mine_channel(
        self,
        events: Sequence[Tuple[str, str]],
        type_of: Dict[str, str],
        relation: str,
        same_type: bool,
    ) -> List[MinedRelation]:
        pair_counts: Dict[Tuple[str, str], int] = defaultdict(int)
        type_counts: Dict[str, int] = defaultdict(int)
        total = 0
        for left_id, right_id in events:
            left_type, right_type = type_of.get(left_id), type_of.get(right_id)
            if left_type is None or right_type is None:
                continue
            if same_type and left_type != right_type:
                continue
            if not same_type and left_type == right_type:
                continue
            key = tuple(sorted((left_type, right_type)))
            pair_counts[key] += 1
            type_counts[left_type] += 1
            type_counts[right_type] += 1
            total += 1
        mined = []
        for (left_type, right_type), count in pair_counts.items():
            if count < self.min_support or total == 0:
                continue
            p_pair = count / total
            p_left = type_counts[left_type] / (2 * total)
            p_right = type_counts[right_type] / (2 * total)
            pmi = math.log(p_pair / (p_left * p_right)) if p_left * p_right > 0 else 0.0
            if same_type:
                # Within-type pairs always have pair==type support; score by
                # raw support instead of PMI.
                pmi = math.log1p(count)
            if pmi >= self.min_pmi:
                mined.append(
                    MinedRelation(
                        left_type=left_type,
                        right_type=right_type,
                        relation=relation,
                        pmi=pmi,
                        support=count,
                    )
                )
        return mined

    def evaluate_complements(
        self, mined: Sequence[MinedRelation], true_pairs: Sequence[Tuple[str, str]]
    ) -> Dict[str, float]:
        """Precision/recall of mined complements vs the generator's pairs."""
        predicted = {
            tuple(sorted((relation.left_type, relation.right_type)))
            for relation in mined
            if relation.relation == "complement"
        }
        truth = {tuple(sorted(pair)) for pair in true_pairs}
        if not predicted:
            return {"precision": 1.0, "recall": 0.0}
        hits = len(predicted & truth)
        return {
            "precision": hits / len(predicted),
            "recall": hits / len(truth) if truth else 1.0,
        }
