"""TXtract: taxonomy-aware extraction for thousands of types (Sec. 3.3).

"TXtract takes the embedding of the product types as part of the input to
the model, so the extraction is type-aware. Second, it employs multi-task
learning to predict product types in addition to knowledge extraction. ...
it can train one model for 4K product types, while increasing extraction
F-measure by 10% compared to OpenTag as a baseline."

Reproduction: one shared :class:`~repro.products.opentag.OpenTagModel`
conditioned on per-product *type context features* (type, department, and
type-embedding buckets), plus an auxiliary type classifier (the multi-task
head) used to infer the context when the type is not given at inference
time.  The baseline for the T-TXTRACT benchmark is the same tagger with no
type conditioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.products import ProductRecord
from repro.ml.embeddings import hash_embedding
from repro.ml.logistic import LogisticRegression
from repro.ml.metrics import BinaryConfusion
from repro.products.opentag import OpenTagModel


def type_context_features(product_type: str, department: str, n_buckets: int = 8) -> List[str]:
    """Context features encoding the product type.

    The hash-embedding sign buckets are the discrete stand-in for "taking
    the embedding of the product types as part of the input": types with
    similar names share buckets, letting vocabulary transfer between
    neighboring types.
    """
    features = [f"type={product_type}", f"dept={department}"]
    vector = hash_embedding(product_type, dim=n_buckets)
    for dimension, value in enumerate(vector):
        if value > 0:
            features.append(f"tvec{dimension}+")
    return features


@dataclass
class TXtractModel:
    """One type-aware tagger for all product types."""

    attributes: Tuple[str, ...]
    n_epochs: int = 8
    use_predicted_type: bool = False
    seed: int = 0
    tagger_: Optional[OpenTagModel] = field(default=None, init=False, repr=False)
    _type_classifier: Optional[LogisticRegression] = field(default=None, init=False, repr=False)
    _type_labels: List[str] = field(default_factory=list, init=False)
    _vocabulary: Dict[str, int] = field(default_factory=dict, init=False)
    _departments: Dict[str, str] = field(default_factory=dict, init=False)

    def fit(
        self, products: Sequence[ProductRecord], supervision: str = "gold"
    ) -> "TXtractModel":
        """Train the shared tagger plus the auxiliary type classifier."""
        contexts = [
            type_context_features(product.product_type, product.department)
            for product in products
        ]
        self.tagger_ = OpenTagModel(
            attributes=self.attributes, n_epochs=self.n_epochs, seed=self.seed
        )
        self.tagger_.fit(products, supervision=supervision, contexts=contexts)
        self._fit_type_classifier(products)
        for product in products:
            self._departments.setdefault(product.product_type, product.department)
        return self

    def _fit_type_classifier(self, products: Sequence[ProductRecord]) -> None:
        """The multi-task head: predict the product type from the title."""
        self._type_labels = sorted({product.product_type for product in products})
        label_index = {label: i for i, label in enumerate(self._type_labels)}
        self._vocabulary = {}
        rows = []
        for product in products:
            for token in product.title.tokens:
                lowered = token.lower()
                if lowered not in self._vocabulary:
                    self._vocabulary[lowered] = len(self._vocabulary)
        matrix = np.zeros((len(products), max(len(self._vocabulary), 1)))
        targets = np.zeros(len(products), dtype=int)
        for row, product in enumerate(products):
            targets[row] = label_index[product.product_type]
            for token in product.title.tokens:
                column = self._vocabulary.get(token.lower())
                if column is not None:
                    matrix[row, column] = 1.0
        self._type_classifier = LogisticRegression(
            learning_rate=0.8, n_iterations=200, seed=self.seed
        )
        self._type_classifier.fit(matrix, targets)

    def predict_type(self, product: ProductRecord) -> str:
        """Auxiliary-task inference of the product type from the title."""
        if self._type_classifier is None:
            raise RuntimeError("model is not fitted")
        row = np.zeros((1, max(len(self._vocabulary), 1)))
        for token in product.title.tokens:
            column = self._vocabulary.get(token.lower())
            if column is not None:
                row[0, column] = 1.0
        index = int(self._type_classifier.predict(row)[0])
        return self._type_labels[index]

    def _context_for(self, product: ProductRecord) -> List[str]:
        if self.use_predicted_type:
            predicted = self.predict_type(product)
            department = self._departments.get(predicted, product.department)
            return type_context_features(predicted, department)
        return type_context_features(product.product_type, product.department)

    def extract(self, product: ProductRecord) -> Dict[str, str]:
        """Type-conditioned extraction for one product."""
        if self.tagger_ is None:
            raise RuntimeError("model is not fitted")
        return self.tagger_.extract(product, context=self._context_for(product))

    def evaluate(self, products: Sequence[ProductRecord]) -> Dict[str, BinaryConfusion]:
        """Per-attribute value-level confusion on held-out products."""
        if self.tagger_ is None:
            raise RuntimeError("model is not fitted")
        contexts = [self._context_for(product) for product in products]
        return self.tagger_.evaluate(products, contexts=contexts)

    def micro_f1(self, products: Sequence[ProductRecord]) -> float:
        """Micro-averaged F1 over all attributes."""
        total = BinaryConfusion()
        for confusion in self.evaluate(products).values():
            total += confusion
        return total.f1
