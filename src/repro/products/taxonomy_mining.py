"""Taxonomy enrichment from customer behavior (Octet-style, Sec. 3.1).

"If users searching for 'tea' often buy 'green tea', whereas users
searching for 'green tea' seldom end up buying other types of teas, it
hints that 'green tea' is a subtype of tea."

The miner turns that sentence into a score: ``hypernym(child, parent)`` is
supported when (a) purchases after the *parent* query frequently land on
*child*-type products, and (b) purchases after the *child* query rarely
leave the child type.  Mined edges can be folded back into the taxonomy,
which is how AutoKnow "considerably extended the ontology" (Sec. 3.5).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.ontology import Ontology, OntologyError
from repro.datagen.behavior import BehaviorLog
from repro.datagen.products import ProductDomain


@dataclass(frozen=True)
class MinedHypernym:
    """A proposed subtype edge with its evidence scores."""

    child: str
    parent: str
    coverage: float   # P(purchase lands in child | parent query)
    loyalty: float    # P(purchase stays in child | child query)

    @property
    def score(self) -> float:
        """Combined confidence of the hypernym edge."""
        return self.coverage * self.loyalty


@dataclass
class HypernymMiner:
    """Mine subtype edges from search-to-purchase logs."""

    min_coverage: float = 0.08
    min_loyalty: float = 0.7
    min_query_support: int = 10

    def mine(self, domain: ProductDomain, log: BehaviorLog) -> List[MinedHypernym]:
        """Score every (child query, parent query) pair of observed queries."""
        leaf_of_product = {
            product.product_id: product.leaf_type for product in domain.products
        }
        # query -> leaf-type purchase histogram
        histogram: Dict[str, Dict[str, int]] = defaultdict(lambda: defaultdict(int))
        support: Dict[str, int] = defaultdict(int)
        for query, product_id in log.search_purchases:
            leaf = leaf_of_product.get(product_id)
            if leaf is None:
                continue
            histogram[query][leaf] += 1
            support[query] += 1
        queries = [
            query for query, count in support.items() if count >= self.min_query_support
        ]
        mined: List[MinedHypernym] = []
        for child_query in queries:
            child_total = support[child_query]
            # Loyalty: how concentrated the child query's purchases are on
            # its own dominant leaf.
            dominant_leaf, dominant_count = max(
                histogram[child_query].items(), key=lambda item: item[1]
            )
            loyalty = dominant_count / child_total
            if loyalty < self.min_loyalty:
                continue
            for parent_query in queries:
                if parent_query == child_query:
                    continue
                parent_total = support[parent_query]
                coverage = histogram[parent_query].get(dominant_leaf, 0) / parent_total
                # Directionality: the parent must be broader — its purchases
                # must not concentrate on the child's leaf.
                parent_dominant = max(histogram[parent_query].values()) / parent_total
                if coverage >= self.min_coverage and parent_dominant < self.min_loyalty:
                    mined.append(
                        MinedHypernym(
                            child=dominant_leaf,
                            parent=parent_query,
                            coverage=coverage,
                            loyalty=loyalty,
                        )
                    )
        deduplicated: Dict[Tuple[str, str], MinedHypernym] = {}
        for edge in mined:
            key = (edge.child.lower(), edge.parent.lower())
            current = deduplicated.get(key)
            if current is None or edge.score > current.score:
                deduplicated[key] = edge
        return sorted(deduplicated.values(), key=lambda edge: (-edge.score, edge.child))

    def evaluate(
        self, domain: ProductDomain, mined: Sequence[MinedHypernym]
    ) -> Dict[str, float]:
        """Precision/recall of mined edges against the true taxonomy."""
        true_edges = set()
        for product in domain.products:
            true_edges.add((product.leaf_type.lower(), product.product_type.lower()))
        predicted = {(edge.child.lower(), edge.parent.lower()) for edge in mined}
        if not predicted:
            return {"precision": 1.0, "recall": 0.0, "n_mined": 0}
        hits = len(predicted & true_edges)
        return {
            "precision": hits / len(predicted),
            "recall": hits / len(true_edges) if true_edges else 1.0,
            "n_mined": len(predicted),
        }


def enrich_taxonomy(
    taxonomy: Ontology,
    mined: Sequence[MinedHypernym],
    min_score: float = 0.1,
    create_parents: bool = False,
) -> int:
    """Fold mined hypernym edges into a taxonomy; returns edges applied.

    Children unknown to the taxonomy are added under their mined parent;
    existing children are only re-parented if currently at a root (never
    overriding curated structure), and cycles are rejected by the ontology.
    With ``create_parents`` (the from-scratch Octet setting), parents that
    do not exist yet are created as roots first.
    """
    applied = 0
    for edge in mined:
        if edge.score < min_score:
            continue
        parent = _resolve_class(taxonomy, edge.parent)
        if parent is None:
            if not create_parents:
                continue
            taxonomy.add_class(edge.parent)
            parent = edge.parent
        child = _resolve_class(taxonomy, edge.child)
        try:
            if child is None:
                taxonomy.add_class(edge.child, parent=parent)
                applied += 1
            elif taxonomy.parent(child) is None and child != parent:
                taxonomy.move_class(child, parent)
                applied += 1
        except OntologyError:
            continue
    return applied


def _resolve_class(taxonomy: Ontology, name: str) -> Optional[str]:
    if taxonomy.has_class(name):
        return name
    for candidate in taxonomy.classes():
        if candidate.lower() == name.lower():
            return candidate
    return None
