"""Product-level substitute/complement recommendation (P-Companion style).

"Such methods are also used to establish the substitutes and complements
between products [24, 48]." (Sec. 3.1)  P-Companion [24] recommends
*diversified* complementary products: first decide which complementary
*types* fit the query product, then pick products within each type.

This module layers product-level recommendation on top of the type-level
:class:`~repro.products.relationships.RelationshipMiner` output:

* substitutes — same-type products ranked by attribute-value overlap
  (a dark-roast decaf's best substitute is another dark-roast decaf);
* complements — one representative product per mined complementary type
  (the diversification step), ranked by behavioral co-purchase support.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.behavior import BehaviorLog
from repro.datagen.products import ProductDomain, ProductRecord
from repro.products.relationships import MinedRelation, RelationshipMiner


@dataclass(frozen=True)
class Recommendation:
    """One recommended product with its score and reason."""

    product_id: str
    score: float
    reason: str


@dataclass
class CompanionRecommender:
    """Substitutes and diversified complements for a query product."""

    domain: ProductDomain
    relations: Sequence[MinedRelation]
    behavior: Optional[BehaviorLog] = None
    _by_id: Dict[str, ProductRecord] = field(default_factory=dict, init=False)
    _copurchase_count: Dict[str, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        self._by_id = {product.product_id: product for product in self.domain.products}
        counts: Dict[str, int] = defaultdict(int)
        if self.behavior is not None:
            for left, right in self.behavior.co_purchases:
                counts[left] += 1
                counts[right] += 1
        self._copurchase_count = dict(counts)

    @staticmethod
    def build(
        domain: ProductDomain, behavior: BehaviorLog, miner: Optional[RelationshipMiner] = None
    ) -> "CompanionRecommender":
        """Mine type relations from behavior and assemble the recommender."""
        miner = miner or RelationshipMiner()
        relations = miner.mine(domain, behavior)
        return CompanionRecommender(domain=domain, relations=relations, behavior=behavior)

    # ------------------------------------------------------------------

    def substitutes(self, product_id: str, top_k: int = 5) -> List[Recommendation]:
        """Same-type products ranked by attribute agreement."""
        query = self._require(product_id)
        scored: List[Recommendation] = []
        for candidate in self.domain.by_type(query.product_type):
            if candidate.product_id == product_id:
                continue
            score = self._attribute_overlap(query, candidate)
            scored.append(
                Recommendation(
                    product_id=candidate.product_id,
                    score=score,
                    reason=f"same type ({query.product_type}), attribute overlap {score:.2f}",
                )
            )
        scored.sort(key=lambda rec: (-rec.score, rec.product_id))
        return scored[:top_k]

    def complements(self, product_id: str, top_k_per_type: int = 1) -> List[Recommendation]:
        """Diversified complements: best product(s) from each mined
        complementary type."""
        query = self._require(product_id)
        complementary_types = []
        for relation in self.relations:
            if relation.relation != "complement":
                continue
            if relation.left_type == query.product_type:
                complementary_types.append((relation.right_type, relation.pmi))
            elif relation.right_type == query.product_type:
                complementary_types.append((relation.left_type, relation.pmi))
        recommendations: List[Recommendation] = []
        for target_type, pmi in sorted(complementary_types, key=lambda item: -item[1]):
            candidates = sorted(
                self.domain.by_type(target_type),
                key=lambda candidate: (
                    -self._copurchase_count.get(candidate.product_id, 0),
                    candidate.product_id,
                ),
            )
            for candidate in candidates[:top_k_per_type]:
                recommendations.append(
                    Recommendation(
                        product_id=candidate.product_id,
                        score=pmi,
                        reason=f"complementary type {target_type} (pmi {pmi:.2f})",
                    )
                )
        return recommendations

    # ------------------------------------------------------------------

    def _require(self, product_id: str) -> ProductRecord:
        if product_id not in self._by_id:
            raise KeyError(f"unknown product: {product_id!r}")
        return self._by_id[product_id]

    @staticmethod
    def _attribute_overlap(left: ProductRecord, right: ProductRecord) -> float:
        attributes = set(left.true_values) | set(right.true_values)
        if not attributes:
            return 0.0
        agreements = sum(
            1
            for attribute in attributes
            if left.true_values.get(attribute) == right.true_values.get(attribute)
        )
        return agreements / len(attributes)
