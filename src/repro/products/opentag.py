"""OpenTag-style attribute-value extraction from product profiles.

"We resort to product profiles including product names, descriptions, and
bullets, and train Named Entity Recognition (NER) models to detect patterns
that express a particular attribute. Such models, like OpenTag, serve as
the basis for product knowledge collection." (Sec. 3.1)

Supervision comes in two flavors matching Fig. 5:

* **gold** — human span annotations (metered as manual work in the
  production pipeline);
* **distant** — spans located by matching noisy catalog values against the
  profile text (the automated pipeline), which inherits catalog errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.datagen.products import LabeledText, ProductRecord
from repro.ml.metrics import BinaryConfusion
from repro.ml.tagger import BIO, OUTSIDE, SequenceTagger


def gold_bio_tags(text: LabeledText, attributes: Set[str]) -> List[str]:
    """BIO tags from the generator's gold spans, filtered to ``attributes``."""
    spans = [
        (start, end, attribute)
        for start, end, attribute in text.spans
        if attribute in attributes
    ]
    return BIO.encode(list(text.tokens), spans)


def distant_bio_tags(
    text: LabeledText, catalog_values: Dict[str, str], attributes: Set[str]
) -> List[str]:
    """BIO tags by matching catalog values against the token sequence.

    This is distant supervision in the Fig. 5(b) sense: wrong catalog
    values label wrong spans (or none), and values the catalog lacks go
    unlabeled — the quality/coverage trade the automated pipeline accepts.
    """
    tokens_lower = [token.lower() for token in text.tokens]
    spans: List[Tuple[int, int, str]] = []
    for attribute, value in catalog_values.items():
        if attribute not in attributes:
            continue
        value_tokens = value.lower().split()
        if not value_tokens:
            continue
        for start in range(len(tokens_lower) - len(value_tokens) + 1):
            if tokens_lower[start : start + len(value_tokens)] == value_tokens:
                spans.append((start, start + len(value_tokens), attribute))
                break
    return BIO.encode(list(text.tokens), spans)


@dataclass
class OpenTagModel:
    """A sequence tagger over product-profile tokens.

    One instance can cover one attribute or several; TXtract/AdaTag build
    on the same class by passing context features.
    """

    attributes: Tuple[str, ...]
    n_epochs: int = 8
    seed: int = 0
    tagger_: Optional[SequenceTagger] = field(default=None, init=False, repr=False)

    def fit(
        self,
        products: Sequence[ProductRecord],
        supervision: str = "gold",
        contexts: Optional[Sequence[Sequence[str]]] = None,
    ) -> "OpenTagModel":
        """Train on product profiles.

        ``supervision`` is ``"gold"`` (human spans) or ``"distant"``
        (catalog matching).  ``contexts`` supplies per-product context
        features (one list per product; applied to all its texts).
        """
        attribute_set = set(self.attributes)
        sentences: List[List[str]] = []
        tag_sequences: List[List[str]] = []
        context_rows: Optional[List[List[str]]] = [] if contexts is not None else None
        for index, product in enumerate(products):
            for text in product.all_texts():
                if supervision == "gold":
                    tags = gold_bio_tags(text, attribute_set)
                elif supervision == "distant":
                    tags = distant_bio_tags(text, product.catalog_values, attribute_set)
                else:
                    raise ValueError(f"unknown supervision mode {supervision!r}")
                sentences.append(list(text.tokens))
                tag_sequences.append(tags)
                if context_rows is not None:
                    context_rows.append(list(contexts[index]))
        self.tagger_ = SequenceTagger(n_epochs=self.n_epochs, seed=self.seed)
        self.tagger_.fit(sentences, tag_sequences, contexts=context_rows)
        return self

    def extract(
        self, product: ProductRecord, context: Sequence[str] = ()
    ) -> Dict[str, str]:
        """Extract attribute -> value from a product's profile.

        The first prediction per attribute wins (title first, then
        bullets), mirroring profile-priority heuristics in practice.
        """
        if self.tagger_ is None:
            raise RuntimeError("model is not fitted")
        found: Dict[str, str] = {}
        for text in product.all_texts():
            for attribute, value in self.tagger_.extract(list(text.tokens), context):
                if attribute in self.attributes and attribute not in found:
                    found[attribute] = value
        return found

    def evaluate(
        self,
        products: Sequence[ProductRecord],
        contexts: Optional[Sequence[Sequence[str]]] = None,
    ) -> Dict[str, BinaryConfusion]:
        """Value-level confusion per attribute against text-supported truth.

        A product contributes a positive for attribute A only when the true
        value actually appears in its profile (an extractor cannot recover
        what the text never says; PAM exists for that).
        """
        confusions: Dict[str, BinaryConfusion] = {
            attribute: BinaryConfusion() for attribute in self.attributes
        }
        for index, product in enumerate(products):
            context = list(contexts[index]) if contexts is not None else []
            predicted = self.extract(product, context)
            mentioned = mentioned_attributes(product)
            for attribute in self.attributes:
                truth = product.true_values.get(attribute)
                has_truth = attribute in mentioned and truth is not None
                prediction = predicted.get(attribute)
                if prediction is not None and has_truth and prediction.lower() == truth.lower():
                    confusions[attribute] += BinaryConfusion(true_positive=1)
                elif prediction is not None:
                    confusions[attribute] += BinaryConfusion(false_positive=1)
                elif has_truth:
                    confusions[attribute] += BinaryConfusion(false_negative=1)
        return confusions

    def micro_f1(
        self,
        products: Sequence[ProductRecord],
        contexts: Optional[Sequence[Sequence[str]]] = None,
    ) -> float:
        """Micro-averaged F1 over all attributes."""
        total = BinaryConfusion()
        for confusion in self.evaluate(products, contexts).values():
            total += confusion
        return total.f1


def mentioned_attributes(product: ProductRecord) -> Set[str]:
    """Attributes whose true value is present in the product's profile text."""
    return {
        attribute for text in product.all_texts() for _s, _e, attribute in text.spans
    }


def train_test_split(
    products: Sequence[ProductRecord], test_fraction: float = 0.3, seed: int = 0
) -> Tuple[List[ProductRecord], List[ProductRecord]]:
    """Deterministic shuffled split of a product list."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(products))
    n_test = int(len(products) * test_fraction)
    test_indexes = set(order[:n_test].tolist())
    train = [product for index, product in enumerate(products) if index not in test_indexes]
    test = [product for index, product in enumerate(products) if index in test_indexes]
    return train, test
