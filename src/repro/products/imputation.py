"""Missing-value imputation for the product catalog.

AutoKnow's data-enrichment suite [19] includes imputing catalog values the
seller never provided.  The imputer here learns, from the (noisy) catalog:

* per-(type, attribute) value priors — "most Ice Cream sizes are 1 pint";
* pairwise conditionals between attributes of the same product —
  "decaf products are rarely mocha" (the same consistency signal the
  cleaner uses, pointed the other way: instead of *deleting* inconsistent
  values it *predicts* consistent ones);

and fills a missing attribute only when the posterior is confident —
imputed knowledge must clear the same production bar as extracted
knowledge (Sec. 5), so refusing to guess is part of the contract.

Measured against the synthetic domain, imputation tops out around 70-80%
accuracy even at high confidence thresholds — which reproduces the paper's
Sec. 5 judgement that knowledge *inference* "has not achieved the quality
to reliably add inferred knowledge into KGs": :class:`AutoKnow` therefore
ships with ``impute_missing=False`` by default, and the readiness-matrix
benchmark lists imputation among the not-yet-successful techniques.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.products import ProductDomain, ProductRecord


@dataclass(frozen=True)
class Imputation:
    """One imputed value with its confidence."""

    attribute: str
    value: str
    confidence: float


@dataclass
class ValueImputer:
    """Naive-Bayes-style imputer over catalog co-occurrence statistics."""

    min_confidence: float = 0.6
    smoothing: float = 0.5
    # (type, attribute) -> value -> count
    _priors: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float)), init=False, repr=False
    )
    # (type, attribute, evidence_attr, evidence_value) -> value -> count
    _conditionals: Dict[Tuple[str, str, str, str], Dict[str, float]] = field(
        default_factory=lambda: defaultdict(lambda: defaultdict(float)), init=False, repr=False
    )

    def fit(self, domain: ProductDomain) -> "ValueImputer":
        """Learn priors and pairwise conditionals from catalog values."""
        for product in domain.products:
            items = sorted(product.catalog_values.items())
            for attribute, value in items:
                self._priors[(product.product_type, attribute)][value.lower()] += 1.0
            for target_attr, target_value in items:
                for evidence_attr, evidence_value in items:
                    if evidence_attr == target_attr:
                        continue
                    key = (
                        product.product_type,
                        target_attr,
                        evidence_attr,
                        evidence_value.lower(),
                    )
                    self._conditionals[key][target_value.lower()] += 1.0
        return self

    def impute(
        self, product: ProductRecord, attribute: str
    ) -> Optional[Imputation]:
        """Predict a missing attribute for one product, or None.

        Known attributes of the product are the evidence; the posterior is
        the prior reweighted by each pairwise conditional (naive-Bayes
        factorization).  Below ``min_confidence`` the imputer abstains.
        """
        prior = self._priors.get((product.product_type, attribute))
        if not prior:
            return None
        candidates = sorted(prior)
        total_prior = sum(prior.values()) + self.smoothing * len(candidates)
        scores = {
            value: (prior[value] + self.smoothing) / total_prior for value in candidates
        }
        for evidence_attr, evidence_value in sorted(product.catalog_values.items()):
            if evidence_attr == attribute:
                continue
            key = (product.product_type, attribute, evidence_attr, evidence_value.lower())
            conditional = self._conditionals.get(key)
            if not conditional:
                continue
            conditional_total = sum(conditional.values()) + self.smoothing * len(candidates)
            for value in candidates:
                likelihood = (conditional.get(value, 0.0) + self.smoothing) / conditional_total
                scores[value] *= likelihood
        normalizer = sum(scores.values())
        if normalizer <= 0:
            return None
        best_value = max(candidates, key=lambda value: (scores[value], value))
        confidence = scores[best_value] / normalizer
        if confidence < self.min_confidence:
            return None
        return Imputation(attribute=attribute, value=best_value, confidence=confidence)

    def impute_all(
        self, product: ProductRecord, attributes: Sequence[str]
    ) -> List[Imputation]:
        """Impute every missing attribute from the list that clears the bar."""
        imputations = []
        for attribute in attributes:
            if attribute in product.catalog_values:
                continue
            result = self.impute(product, attribute)
            if result is not None:
                imputations.append(result)
        return imputations

    def evaluate(
        self, domain: ProductDomain, attributes: Optional[Sequence[str]] = None
    ) -> Dict[str, float]:
        """Accuracy/coverage of imputations against hidden true values.

        Only products whose catalog *lacks* the attribute but whose world
        truth defines it count — the live imputation setting.
        """
        attributes = attributes or domain.attributes()
        correct = produced = possible = 0
        for product in domain.products:
            for attribute in attributes:
                truth = product.true_values.get(attribute)
                if truth is None or attribute in product.catalog_values:
                    continue
                possible += 1
                result = self.impute(product, attribute)
                if result is None:
                    continue
                produced += 1
                if result.value == truth.lower():
                    correct += 1
        return {
            "coverage": produced / possible if possible else 0.0,
            "accuracy": correct / produced if produced else 1.0,
            "n_imputed": produced,
        }
