"""The two extraction pipelines of Figure 5, with manual work metered.

Fig. 5(a) — production quality via manual effort: understand the domain and
label training data, fine-tune hyper-parameters, post-process with
hand-written rules, and gate behind a pre-publish evaluation.

Fig. 5(b) — repeatability via automation: distant supervision from the
catalog (plus a small manually-labeled benchmark), AutoML tuning, ML-based
cleaning, and the same gate.

Both run the same underlying tagger; what differs is where labels and
tuning come from, and the :class:`ManualWorkLedger` records the difference
— "the time to train and deploy an extraction model can be reduced from a
couple of months to a couple of weeks" (Sec. 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.products import ProductDomain, ProductRecord
from repro.ml.metrics import BinaryConfusion
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled
from repro.products.cleaning import KnowledgeCleaner
from repro.products.opentag import OpenTagModel, train_test_split

#: Manual-work cost (person-hours) of each manual activity, rough but
#: internally consistent; the benchmark reports ratios, not absolutes.
MANUAL_COSTS: Dict[str, float] = {
    "label_product": 0.05,          # annotate one product's spans
    "domain_analysis": 8.0,         # understand the domain & attributes
    "hyperparameter_tuning": 16.0,  # per model, by an ML engineer
    "write_postprocess_rule": 2.0,  # per hand-written cleaning rule
    "prepublish_review": 4.0,       # sampled audit before launch
    "benchmark_label": 0.05,        # label one benchmark instance (5b)
}


@dataclass
class ManualWorkLedger:
    """Accumulates manual-work units by activity."""

    entries: Dict[str, float] = field(default_factory=dict)

    def charge(self, activity: str, count: float = 1.0) -> None:
        """Record ``count`` occurrences of a manual activity."""
        if activity not in MANUAL_COSTS:
            raise KeyError(f"unknown manual activity {activity!r}")
        self.entries[activity] = self.entries.get(activity, 0.0) + count * MANUAL_COSTS[activity]

    @property
    def total_hours(self) -> float:
        """Total metered person-hours."""
        return sum(self.entries.values())


@dataclass
class PipelineResult:
    """Outcome of one pipeline run on one (type, attributes) task."""

    pipeline: str
    product_type: str
    f1: float
    precision: float
    recall: float
    manual_hours: float
    published: bool
    ledger: ManualWorkLedger


@dataclass
class ProductionPipeline:
    """Fig. 5(a): manual labels, manual tuning, rule post-processing."""

    attributes: Tuple[str, ...]
    n_labeled_products: int = 120
    quality_bar: float = 0.9
    seed: int = 0

    @profiled("products.pipeline.production")
    def run(self, domain: ProductDomain, product_type: str) -> PipelineResult:
        """Train, post-process, gate, and account for the manual work."""
        ledger = ManualWorkLedger()
        products = domain.by_type(product_type)
        train, test = train_test_split(products, test_fraction=0.3, seed=self.seed)
        # 1. Understand the domain and generate training data (manual).
        ledger.charge("domain_analysis")
        labeled = train[: self.n_labeled_products]
        ledger.charge("label_product", count=len(labeled))
        # 2. Fine-tune hyper-parameters (manual): emulate by trying a couple
        #    of epoch settings under human supervision.
        ledger.charge("hyperparameter_tuning")
        best_model, best_f1 = None, -1.0
        for n_epochs in (6, 10):
            model = OpenTagModel(
                attributes=self.attributes, n_epochs=n_epochs, seed=self.seed
            ).fit(labeled, supervision="gold")
            f1 = model.micro_f1(labeled)
            if f1 > best_f1:
                best_model, best_f1 = model, f1
        # 3. Post-process with hand-written rule filtering.
        cleaner = KnowledgeCleaner.from_rules(domain)
        ledger.charge("write_postprocess_rule", count=cleaner.n_rules)
        confusion = _evaluate_with_cleaning(best_model, cleaner, test, product_type)
        # 4. Pre-publish evaluation gate (manual audit).
        ledger.charge("prepublish_review")
        published = confusion.f1 >= self.quality_bar
        obs_metrics.observe("products.pipeline.manual_hours", ledger.total_hours)
        return PipelineResult(
            pipeline="production(5a)",
            product_type=product_type,
            f1=confusion.f1,
            precision=confusion.precision,
            recall=confusion.recall,
            manual_hours=ledger.total_hours,
            published=published,
            ledger=ledger,
        )


@dataclass
class AutomatedPipeline:
    """Fig. 5(b): distant supervision, AutoML, ML cleaning."""

    attributes: Tuple[str, ...]
    n_benchmark_labels: int = 30
    quality_bar: float = 0.9
    seed: int = 0

    @profiled("products.pipeline.automated")
    def run(self, domain: ProductDomain, product_type: str) -> PipelineResult:
        """Train from the catalog, auto-tune, ML-clean, gate."""
        ledger = ManualWorkLedger()
        products = domain.by_type(product_type)
        train, test = train_test_split(products, test_fraction=0.3, seed=self.seed)
        # 1. Distant supervision from the catalog; only a small benchmark is
        #    human-labeled ("tens to hundreds", Sec. 3.2).
        ledger.charge("benchmark_label", count=min(self.n_benchmark_labels, len(test)))
        # 2. AutoML replaces manual tuning: pick epochs by benchmark F1.
        best_model, best_f1 = None, -1.0
        benchmark = test[: self.n_benchmark_labels]
        for n_epochs in (4, 6, 10):
            model = OpenTagModel(
                attributes=self.attributes, n_epochs=n_epochs, seed=self.seed
            ).fit(train, supervision="distant")
            f1 = model.micro_f1(benchmark)
            if f1 > best_f1:
                best_model, best_f1 = model, f1
        # 3. ML-based cleaning learned from catalog statistics (no rules
        #    hand-written for this type).
        cleaner = KnowledgeCleaner.from_catalog_statistics(domain)
        confusion = _evaluate_with_cleaning(best_model, cleaner, test, product_type)
        # 4. Same pre-publish gate, still a (cheap) human audit.
        ledger.charge("prepublish_review")
        published = confusion.f1 >= self.quality_bar
        obs_metrics.observe("products.pipeline.manual_hours", ledger.total_hours)
        return PipelineResult(
            pipeline="automated(5b)",
            product_type=product_type,
            f1=confusion.f1,
            precision=confusion.precision,
            recall=confusion.recall,
            manual_hours=ledger.total_hours,
            published=published,
            ledger=ledger,
        )


def _evaluate_with_cleaning(
    model: OpenTagModel,
    cleaner: KnowledgeCleaner,
    test: Sequence[ProductRecord],
    product_type: str,
) -> BinaryConfusion:
    """Value-level evaluation of extract -> clean on held-out products."""
    from repro.products.opentag import mentioned_attributes

    total = BinaryConfusion()
    for product in test:
        predicted = model.extract(product)
        kept = cleaner.clean(predicted, product_type)
        mentioned = mentioned_attributes(product)
        for attribute in model.attributes:
            truth = product.true_values.get(attribute)
            has_truth = attribute in mentioned and truth is not None
            prediction = kept.get(attribute)
            if prediction is not None and has_truth and prediction.lower() == truth.lower():
                total += BinaryConfusion(true_positive=1)
            elif prediction is not None:
                total += BinaryConfusion(false_positive=1)
            elif has_truth:
                total += BinaryConfusion(false_negative=1)
    return total
