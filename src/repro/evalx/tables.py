"""Plain-text result tables printed by every benchmark.

Benchmarks reproduce the paper's figures as tables of the same series; the
formatting here keeps the output diff-friendly and readable in CI logs.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ResultTable:
    """A titled table with named columns."""

    title: str
    columns: Sequence[str]
    rows: List[List[object]] = field(default_factory=list)
    note: str = ""

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def _format_cell(self, value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def render(self) -> str:
        """The table as an aligned plain-text block."""
        header = [str(column) for column in self.columns]
        body = [[self._format_cell(value) for value in row] for row in self.rows]
        widths = [len(column) for column in header]
        for row in body:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [f"== {self.title} =="]
        lines.append("  ".join(column.ljust(widths[i]) for i, column in enumerate(header)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if self.note:
            lines.append(f"note: {self.note}")
        return "\n".join(lines)

    def show(self) -> None:
        """Print the rendered table (benchmarks call this).

        All formatting lives in :meth:`render` / :func:`render_table` —
        this is the only place the module prints, so any caller that wants
        the report as a string (traces, tests, files) renders instead.

        When the ``REPRO_RESULTS_DIR`` environment variable is set, the
        table is additionally written there as a text file (pytest captures
        stdout, so this is how benchmark runs persist their tables).
        """
        print("\n" + self.render())
        directory = os.environ.get("REPRO_RESULTS_DIR")
        if directory:
            os.makedirs(directory, exist_ok=True)
            slug = re.sub(r"[^a-z0-9]+", "_", self.title.lower()).strip("_")[:70]
            path = os.path.join(directory, f"{slug}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(self.render() + "\n")

    def column_values(self, column: str) -> List[object]:
        """All values of one column (for assertions in benches/tests)."""
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        index = list(self.columns).index(column)
        return [row[index] for row in self.rows]


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[object]],
    note: str = "",
) -> str:
    """One-shot table rendering, returned as a string (callers print it).

    The functional face of :class:`ResultTable` for code that reports
    without owning a table object — the trace CLI, tests capturing report
    output, files.
    """
    table = ResultTable(title=title, columns=list(columns), note=note)
    for row in rows:
        table.add_row(*row)
    return table.render()
