"""Run reports backing ``repro report <EXPERIMENT_ID>``.

A report turns one traced in-process run (:func:`repro.evalx.tracerun.
run_trace`) into three artifacts under ``results/``:

* ``report_<id>.md`` — the human-readable report: the span tree, counter
  and histogram tables, per-graph quality snapshots, sampled lineage
  chains, and (when a baseline exists) the quality diff;
* ``report_<id>.json`` — the stable JSON document
  (:func:`repro.obs.export.build_document`) that the *next* run loads as
  its baseline;
* ``report_<id>.prom`` — the Prometheus text exposition of the run's
  metrics and quality gauges.

Regression detection pairs the run's quality snapshots with the
baseline's by name and diffs them under
:class:`repro.obs.quality.RegressionThresholds`; span timings are never
compared (latency is machine-dependent, data quality is not), which is
what makes a back-to-back rerun report zero regressions.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.evalx.tables import render_table
from repro.evalx.tracerun import TraceResult
from repro.obs import export as obs_export
from repro.obs.quality import QualityDiff, QualitySnapshot, RegressionThresholds


def render_span_tree(spans: Sequence[Mapping[str, object]]) -> List[str]:
    """Indented tree lines from flat span records (``parent_id`` nesting).

    Siblings render in start order; spans whose parent never finished
    (should not happen) are treated as roots rather than dropped.
    """
    known_ids = {str(record.get("span_id")) for record in spans}
    children: Dict[Optional[str], List[Mapping[str, object]]] = {}
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and str(parent) not in known_ids:
            parent = None
        children.setdefault(parent if parent is None else str(parent), []).append(record)
    for siblings in children.values():
        siblings.sort(
            key=lambda r: (float(r.get("started_unix", 0.0)), str(r.get("span_id")))
        )
    lines: List[str] = []

    def walk(record: Mapping[str, object], depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{record['name']}"
            f"  wall={float(record['wall_seconds']):.4f}s"
            f"  cpu={float(record['cpu_seconds']):.4f}s"
        )
        for child in children.get(str(record.get("span_id")), []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def diff_against_baseline(
    current_quality: Sequence[Mapping[str, object]],
    baseline_quality: Sequence[Mapping[str, object]],
    thresholds: Optional[RegressionThresholds] = None,
) -> List[QualityDiff]:
    """Pair snapshots by name and diff current against baseline.

    Snapshots present only on one side are skipped (a new graph in the
    pipeline is not a regression; a vanished one shows up as the missing
    metrics of whatever snapshot still pairs).
    """
    baseline_by_name = {
        str(record.get("name")): record for record in baseline_quality
    }
    diffs: List[QualityDiff] = []
    for record in current_quality:
        base = baseline_by_name.get(str(record.get("name")))
        if base is None:
            continue
        diffs.append(
            QualitySnapshot.from_dict(dict(record)).diff(
                QualitySnapshot.from_dict(dict(base)), thresholds
            )
        )
    return diffs


class ReportInputError(ValueError):
    """A missing, truncated, or unparseable report/trace artifact.

    Raised with a one-line, actionable message; the CLI prints it and
    exits non-zero instead of dumping a traceback at the operator.
    """


def load_baseline(path: str) -> Optional[Dict[str, object]]:
    """A previously written report JSON document, or None when absent.

    A file that exists but does not parse (a truncated write, a merge
    conflict) raises :class:`ReportInputError` rather than a raw
    ``JSONDecodeError`` traceback.
    """
    if not os.path.exists(path):
        return None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except ValueError as exc:
        raise ReportInputError(
            f"baseline {path} is not valid JSON ({exc}); delete it to rebaseline "
            f"or pass --baseline pointing at a good report"
        ) from exc
    except OSError as exc:
        raise ReportInputError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(document, dict):
        raise ReportInputError(
            f"baseline {path} is not a report document (expected a JSON object)"
        )
    return document


def load_trace_file(path: str) -> Dict[str, object]:
    """Parse a ``repro trace`` JSONL file: span records plus the metrics tail.

    Returns ``{"spans": [...], "metrics": {...}}``.  Raises
    :class:`ReportInputError` — with the offending line number — when the
    file is missing, any line fails to parse (a truncated write cuts the
    last line mid-object), or the final metrics record is absent.
    """
    if not os.path.exists(path):
        raise ReportInputError(
            f"trace file {path} not found; run `repro trace <ID> -o {path}` first"
        )
    spans: List[Dict[str, object]] = []
    metrics: Optional[Dict[str, object]] = None
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ReportInputError(
                        f"trace file {path} is truncated or corrupt at line "
                        f"{line_number}; re-run `repro trace` to regenerate it"
                    ) from exc
                kind = record.get("kind") if isinstance(record, dict) else None
                if kind == "span":
                    spans.append(record)
                elif kind == "metrics":
                    metrics = record
    except OSError as exc:
        raise ReportInputError(f"cannot read trace file {path}: {exc}") from exc
    if metrics is None:
        raise ReportInputError(
            f"trace file {path} has no final metrics record (truncated write?); "
            f"re-run `repro trace` to regenerate it"
        )
    return {"spans": spans, "metrics": metrics}


@dataclass
class RunReport:
    """One traced run plus its baseline comparison, ready to render."""

    result: TraceResult
    diffs: List[QualityDiff] = field(default_factory=list)
    baseline_path: Optional[str] = None

    @property
    def has_regressions(self) -> bool:
        return any(diff.has_regressions for diff in self.diffs)

    @property
    def n_regressions(self) -> int:
        return sum(len(diff.regressions) for diff in self.diffs)

    # ---- rendering ------------------------------------------------------

    def to_document(self) -> Dict[str, object]:
        """The stable JSON document (next run's baseline)."""
        baseline_diff: Optional[Dict[str, object]] = None
        if self.diffs:
            baseline_diff = {
                "baseline_path": self.baseline_path,
                "n_regressions": self.n_regressions,
                "diffs": [diff.to_dict() for diff in self.diffs],
            }
        return obs_export.build_document(
            experiment_id=self.result.experiment_id,
            spans=self.result.spans,
            metrics_snapshot=self.result.snapshot,
            quality_snapshots=self.result.quality,
            lineage_samples=self.result.lineage,
            baseline_diff=baseline_diff,
            slo=self.result.slo or None,
        )

    def to_markdown(self) -> str:
        """The human-readable report."""
        result = self.result
        sections: List[str] = [f"# Run report: {result.experiment_id}", ""]

        sections += ["## Span tree", "", "```"]
        sections += render_span_tree(result.spans) or ["(no spans recorded)"]
        sections += ["```", ""]

        counters = result.snapshot.get("counters", {})
        if counters:
            sections += ["## Counters", "", "```"]
            sections.append(
                render_table(
                    title=f"{result.experiment_id} counters",
                    columns=["counter", "value"],
                    rows=[[name, value] for name, value in counters.items()],
                )
            )
            sections += ["```", ""]

        histograms = result.snapshot.get("histograms", {})
        if histograms:
            sections += ["## Histograms", "", "```"]
            sections.append(
                render_table(
                    title=f"{result.experiment_id} histograms",
                    columns=["histogram", "count", "mean", "p50", "p95", "max"],
                    rows=[
                        [
                            name,
                            int(summary.get("count", 0)),
                            summary.get("mean", 0.0),
                            summary.get("p50", 0.0),
                            summary.get("p95", 0.0),
                            summary.get("max", 0.0),
                        ]
                        for name, summary in histograms.items()
                    ],
                )
            )
            sections += ["```", ""]

        slo = result.slo
        if slo and slo.get("routes"):
            sections += ["## Serving SLO", "", "```"]
            sections.append(
                render_table(
                    title=(
                        f"{result.experiment_id} per-route RED "
                        f"(window {slo.get('window_s', 0)}s)"
                    ),
                    columns=[
                        "route", "req", "rps", "err", "shed", "degr",
                        "p50ms", "p95ms", "burn", "burning",
                    ],
                    rows=[
                        [
                            route,
                            block.get("requests", 0),
                            block.get("rate_rps", 0.0),
                            block.get("errors", 0),
                            block.get("shed", 0),
                            block.get("degraded", 0),
                            block.get("p50_ms", 0.0),
                            block.get("p95_ms", 0.0),
                            block.get("budget_burn_rate", 0.0),
                            "yes" if block.get("burning") else "no",
                        ]
                        for route, block in sorted(slo["routes"].items())  # type: ignore[union-attr]
                    ],
                    note=(
                        f"worst burn rate {slo.get('worst_burn_rate', 0.0)}; "
                        + (
                            "error budget burning"
                            if slo.get("burning")
                            else "within error budget"
                        )
                    ),
                )
            )
            sections += ["```", ""]

        sections += ["## Quality snapshots", ""]
        if result.quality:
            for record in result.quality:
                snapshot = QualitySnapshot.from_dict(dict(record))
                sections.append(f"### {snapshot.name}")
                sections.append("")
                sections.append("```")
                sections.append(
                    render_table(
                        title=f"quality: {snapshot.name}",
                        columns=["metric", "value"],
                        rows=[
                            [metric, value]
                            for metric, value in sorted(snapshot.scalar_metrics().items())
                        ],
                    )
                )
                sections.append("```")
                sections.append("")
        else:
            sections += ["(no quality snapshots recorded)", ""]

        sections += ["## Lineage samples", ""]
        if result.lineage:
            for record in result.lineage:
                triple = (
                    f"({record.get('subject')}, {record.get('predicate')}, "
                    f"{record.get('object')})"
                )
                verdict = record.get("verdict")
                sections.append(f"### {triple}" + (f" — {verdict}" if verdict else ""))
                sections.append("")
                sections.append("```")
                for event in record.get("events", []):  # type: ignore[union-attr]
                    detail = " ".join(
                        f"{key}={value}"
                        for key, value in sorted(dict(event.get("detail", {})).items())
                    )
                    sections.append(
                        f"[{event.get('kind')}] {event.get('stage')} {detail}".rstrip()
                    )
                sections.append("```")
                sections.append("")
        else:
            sections += ["(no lineage chains recorded)", ""]

        sections += ["## Baseline comparison", ""]
        if self.diffs:
            sections.append(f"Baseline: `{self.baseline_path}`")
            sections.append("")
            for diff in self.diffs:
                rows = diff.rows(only_changed=True)
                sections.append("```")
                sections.append(
                    render_table(
                        title=f"quality diff: {diff.snapshot_name}",
                        columns=["metric", "baseline", "current", "delta", "status"],
                        rows=rows or [["(all metrics unchanged)", "-", "-", "-", "ok"]],
                        note=f"{len(diff.regressions)} regression(s)",
                    )
                )
                sections.append("```")
                sections.append("")
            verdict = (
                f"**{self.n_regressions} regression(s) detected.**"
                if self.has_regressions
                else "**No regressions against the baseline.**"
            )
            sections += [verdict, ""]
        else:
            sections += ["(no baseline — this run becomes the baseline)", ""]

        return "\n".join(sections)

    def to_prometheus(self) -> str:
        """The run's metrics + quality gauges in Prometheus text format."""
        return obs_export.render_prometheus(quality_snapshots=self.result.quality)


def build_report(
    result: TraceResult,
    baseline: Optional[Mapping[str, object]] = None,
    baseline_path: Optional[str] = None,
    thresholds: Optional[RegressionThresholds] = None,
) -> RunReport:
    """Assemble a :class:`RunReport`, diffing against ``baseline`` if given."""
    diffs: List[QualityDiff] = []
    if baseline is not None:
        baseline_quality = baseline.get("quality") or []
        diffs = diff_against_baseline(result.quality, baseline_quality, thresholds)
    return RunReport(result=result, diffs=diffs, baseline_path=baseline_path)


def write_report(
    report: RunReport,
    directory: str,
    basename: Optional[str] = None,
) -> Dict[str, str]:
    """Write the ``.md``/``.json``/``.prom`` artifacts; returns their paths.

    The Prometheus export renders from the *global* registry, so call this
    before anything resets it.
    """
    os.makedirs(directory, exist_ok=True)
    basename = basename or f"report_{report.result.experiment_id.lower().replace('-', '_')}"
    paths = {
        "markdown": os.path.join(directory, f"{basename}.md"),
        "json": os.path.join(directory, f"{basename}.json"),
        "prometheus": os.path.join(directory, f"{basename}.prom"),
    }
    with open(paths["markdown"], "w", encoding="utf-8") as handle:
        handle.write(report.to_markdown())
    with open(paths["json"], "w", encoding="utf-8") as handle:
        handle.write(obs_export.dump_document(report.to_document()))
    with open(paths["prometheus"], "w", encoding="utf-8") as handle:
        handle.write(report.to_prometheus())
    return paths
