"""``repro bench`` — the core performance trajectory harness.

The ROADMAP's north star is a system that runs "as fast as the hardware
allows"; this module plants the measurement stake every perf PR is judged
against.  It runs parameterized workloads over the hot paths of KG
construction — batch ingestion, merge-heavy entity linkage, the query
mix, and Bayesian fusion — and appends one trajectory entry (keyed by git
SHA) to ``BENCH_core.json`` at the repo root.

Two comparisons are recorded per entry:

* **speedup_vs_naive** — each workload also runs a *naive* reference
  implementation (full-scan ``merge_entities``, one-at-a-time
  ``add_triple`` ingestion, per-call-sorted scans) on identical data in
  the same process, so the fast-path win is visible inside a single
  entry, independent of history;
* **the trajectory gate** — the new entry's throughput is compared to
  the most recent previous entry of the same mode (quick/full) and the
  run fails when any workload regresses by more than ``tolerance``
  (default 20%).

Wall-times and throughputs are recorded through the existing
:mod:`repro.obs.metrics` registry (a private instance, so benchmark runs
never pollute the process-global registry) and the registry snapshot is
embedded in the trajectory entry.

The naive reference implementations double as the *equivalence oracle*:
``tests/test_perf_equivalence.py`` asserts that fast and naive paths
produce byte-identical query results, provenance, and lineage ledgers.
"""

from __future__ import annotations

import json
import os
import random
import sys
import tempfile
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.query import PathQuery, TriplePattern, conjunctive_query
from repro.core.triple import Provenance, Triple
from repro.integrate.fusion import AccuFusion, ValueClaim
from repro.obs import lineage as obs_lineage
from repro.obs import profiling, runs
from repro.obs.metrics import MetricsRegistry

#: Trajectory document version (bump on incompatible schema changes).
SCHEMA_VERSION = 1

#: Default trajectory file name, kept at the repo root so CI can upload it.
TRAJECTORY_BASENAME = "BENCH_core.json"

#: Allowed relative throughput drop vs the previous same-mode entry.
DEFAULT_TOLERANCE = 0.20


# ---------------------------------------------------------------------------
# naive reference implementations (the pre-optimization algorithms)


def naive_merge_entities(graph: KnowledgeGraph, keep_id: str, drop_id: str) -> int:
    """Full-scan entity merge: the O(|T|) algorithm the index walk replaced.

    Scans the whole triple set twice per merge.  Kept as the benchmark
    baseline *and* the equivalence oracle: its final graph state,
    provenance, and lineage records must match ``merge_entities`` exactly.
    """
    keep = graph.entity(keep_id)
    drop = graph.entity(drop_id)
    if keep_id == drop_id:
        raise ValueError(f"cannot merge entity {keep_id!r} into itself")
    rewritten = 0
    for triple in [t for t in graph._triples if t.subject == drop_id]:
        records = graph._provenance.get(triple, [])
        graph.remove_triple(triple)
        replacement = triple.replace_subject(keep_id)
        graph.add_triple(replacement)
        for record in records:
            graph._provenance[replacement].append(record)
        rewritten += 1
    for triple in [t for t in graph._triples if t.object == drop_id]:
        records = graph._provenance.get(triple, [])
        graph.remove_triple(triple)
        replacement = triple.replace_object(keep_id)
        graph.add_triple(replacement)
        for record in records:
            graph._provenance[replacement].append(record)
        rewritten += 1
    for alias in drop.all_names():
        keep.aliases.add(alias)
        graph._name_index[alias.lower()].discard(drop_id)
        graph._name_index[alias.lower()].add(keep_id)
    keep.aliases.discard(keep.name)
    del graph._entities[drop_id]
    obs_lineage.record_merge(
        keep_id, drop_id, n_rewritten=rewritten, stage="graph.merge_entities"
    )
    return rewritten


def naive_ingest(
    graph: KnowledgeGraph, items: Sequence[Tuple[Triple, Optional[Provenance]]]
) -> int:
    """One-at-a-time ingestion: the per-call bookkeeping path."""
    n_new = 0
    for triple, provenance in items:
        if graph.add_triple(triple, provenance=provenance):
            n_new += 1
    return n_new


def fast_ingest(
    graph: KnowledgeGraph, items: Sequence[Tuple[Triple, Optional[Provenance]]]
) -> int:
    """Batch ingestion via ``add_triples_batch`` when the graph has it.

    Falls back to the naive loop, so the harness runs (and records a
    truthful baseline) against pre-batch-API code.
    """
    batch = getattr(graph, "add_triples_batch", None)
    if batch is None:
        return naive_ingest(graph, items)
    return batch(items)


# ---------------------------------------------------------------------------
# synthetic workload data (seeded, so every run times identical work)


def _build_graph(
    n_entities: int,
    n_triples: int,
    seed: int = 7,
    with_provenance: bool = True,
) -> KnowledgeGraph:
    """A seeded scale-free-ish KG: entity edges plus attribute triples."""
    graph = _empty_graph(n_entities)
    for triple, provenance in make_triples(
        n_entities, n_triples, seed=seed, with_provenance=with_provenance
    ):
        graph.add_triple(triple, provenance=provenance)
    return graph


def _empty_graph(n_entities: int, backend: str = "dict") -> KnowledgeGraph:
    ontology = Ontology()
    ontology.add_class("Thing")
    graph = KnowledgeGraph(ontology=ontology, name="bench", backend=backend)
    for index in range(n_entities):
        graph.add_entity(f"e{index}", f"Entity {index}", "Thing")
    return graph


#: Predicates mix entity-valued relations and literal attributes.
_RELATIONS = ("related_to", "part_of", "derived_from")
_ATTRIBUTES = ("label", "score", "year")


def make_triples(
    n_entities: int,
    n_triples: int,
    seed: int = 7,
    with_provenance: bool = True,
) -> List[Tuple[Triple, Optional[Provenance]]]:
    """Deterministic (triple, provenance) pairs over ``e0..e{n-1}``."""
    rng = random.Random(seed)
    sources = [f"src{j}" for j in range(5)]
    items: List[Tuple[Triple, Optional[Provenance]]] = []
    for _ in range(n_triples):
        subject = f"e{rng.randrange(n_entities)}"
        if rng.random() < 0.6:
            predicate = rng.choice(_RELATIONS)
            obj: object = f"e{rng.randrange(n_entities)}"
        else:
            predicate = rng.choice(_ATTRIBUTES)
            obj = (
                rng.randrange(1900, 2030)
                if predicate == "year"
                else f"value-{rng.randrange(2000)}"
            )
        provenance = (
            Provenance(source=rng.choice(sources), confidence=round(rng.random(), 3))
            if with_provenance
            else None
        )
        items.append((Triple(subject, predicate, obj), provenance))
    return items


def make_claims(n_items: int, n_sources: int = 4, seed: int = 11) -> List[ValueClaim]:
    """Conflicting per-item claims for the fusion workload."""
    rng = random.Random(seed)
    claims: List[ValueClaim] = []
    for index in range(n_items):
        truth = f"v{rng.randrange(50)}"
        for source_index in range(n_sources):
            value = truth if rng.random() < 0.7 else f"v{rng.randrange(50)}"
            claims.append(
                ValueClaim(
                    subject=f"item{index}",
                    attribute="attr",
                    value=value,
                    source=f"s{source_index}",
                )
            )
    return claims


# ---------------------------------------------------------------------------
# workloads


@dataclass(frozen=True)
class WorkloadResult:
    """One workload's measurement within a trajectory entry."""

    name: str
    wall_s: float
    n_ops: int
    naive_wall_s: Optional[float] = None
    #: Workload-specific detail merged into the trajectory entry (e.g.
    #: the full partition-count scaling curve for ``build_scaling``).
    extra: Optional[Dict[str, object]] = None

    @property
    def ops_per_s(self) -> float:
        return self.n_ops / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def speedup_vs_naive(self) -> Optional[float]:
        if self.naive_wall_s is None or self.wall_s <= 0:
            return None
        return self.naive_wall_s / self.wall_s

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "wall_s": round(self.wall_s, 6),
            "n_ops": self.n_ops,
            "ops_per_s": round(self.ops_per_s, 3),
        }
        if self.naive_wall_s is not None:
            record["naive_wall_s"] = round(self.naive_wall_s, 6)
            record["speedup_vs_naive"] = round(self.speedup_vs_naive, 3)
        if self.extra:
            record.update(self.extra)
        return record


@dataclass(frozen=True)
class WorkloadScale:
    """Knobs for one workload size (full vs ``--quick``)."""

    n_entities: int
    n_triples: int
    n_merges: int
    n_queries: int
    n_fusion_items: int


FULL_SCALE = WorkloadScale(
    n_entities=1500, n_triples=24000, n_merges=300, n_queries=400, n_fusion_items=500
)
QUICK_SCALE = WorkloadScale(
    n_entities=200, n_triples=2000, n_merges=40, n_queries=60, n_fusion_items=60
)


def _bench_ingest(scale: WorkloadScale) -> WorkloadResult:
    """Batch ingestion (with provenance) vs the one-at-a-time loop."""
    items = make_triples(scale.n_entities, scale.n_triples)

    graph = _empty_graph(scale.n_entities)
    start = time.perf_counter()
    fast_ingest(graph, items)
    wall = time.perf_counter() - start

    graph_naive = _empty_graph(scale.n_entities)
    start = time.perf_counter()
    naive_ingest(graph_naive, items)
    naive_wall = time.perf_counter() - start

    if len(graph) != len(graph_naive):  # pragma: no cover - equivalence guard
        raise RuntimeError("fast and naive ingestion disagree on graph size")
    return WorkloadResult(
        "ingest_batch", wall, n_ops=scale.n_triples, naive_wall_s=naive_wall
    )


def _merge_pairs(scale: WorkloadScale, seed: int = 13) -> List[Tuple[str, str]]:
    """Disjoint (keep, drop) pairs: every entity appears at most once."""
    rng = random.Random(seed)
    ids = [f"e{i}" for i in range(scale.n_entities)]
    rng.shuffle(ids)
    return [
        (ids[2 * k], ids[2 * k + 1])
        for k in range(min(scale.n_merges, len(ids) // 2))
    ]


def _bench_linkage_merge(scale: WorkloadScale) -> WorkloadResult:
    """Merge-heavy linkage: index-walk merges vs full-scan merges."""
    base = _build_graph(scale.n_entities, scale.n_triples)
    pairs = _merge_pairs(scale)

    graph = base.copy()
    start = time.perf_counter()
    for keep_id, drop_id in pairs:
        graph.merge_entities(keep_id, drop_id)
    wall = time.perf_counter() - start

    graph_naive = base.copy()
    start = time.perf_counter()
    for keep_id, drop_id in pairs:
        naive_merge_entities(graph_naive, keep_id, drop_id)
    naive_wall = time.perf_counter() - start

    if len(graph) != len(graph_naive):  # pragma: no cover - equivalence guard
        raise RuntimeError("fast and naive merges disagree on graph size")
    return WorkloadResult(
        "linkage_merge", wall, n_ops=len(pairs), naive_wall_s=naive_wall
    )


def _bench_query_mix(scale: WorkloadScale) -> WorkloadResult:
    """Full scans, pattern matches, conjunctive joins, and path searches."""
    graph = _build_graph(scale.n_entities, scale.n_triples, with_provenance=False)
    rng = random.Random(17)
    subjects = [f"e{rng.randrange(scale.n_entities)}" for _ in range(scale.n_queries)]
    patterns = [
        TriplePattern("?x", "related_to", "?y"),
        TriplePattern("?y", "part_of", "?z"),
    ]
    path_query = PathQuery(graph, max_length=3)

    n_ops = 0
    start = time.perf_counter()
    for index, subject in enumerate(subjects):
        graph.query(subject=subject)
        graph.query(predicate="related_to", obj=subject)
        n_ops += 2
        if index % 10 == 0:
            len(graph.query())  # the all-wildcard scan (cached-view path)
            n_ops += 1
        if index % 20 == 0:
            conjunctive_query(graph, patterns)
            path_query.paths(subject, f"e{(index * 7) % scale.n_entities}", max_paths=5)
            n_ops += 2
    wall = time.perf_counter() - start
    return WorkloadResult("query_mix", wall, n_ops=n_ops)


def _bench_fusion(scale: WorkloadScale) -> WorkloadResult:
    """AccuFusion EM over conflicting multi-source claims."""
    claims = make_claims(scale.n_fusion_items)
    fusion = AccuFusion(n_iterations=6)
    start = time.perf_counter()
    results = fusion.fuse(claims)
    wall = time.perf_counter() - start
    return WorkloadResult("fusion_accu", wall, n_ops=len(results))


def dict_triple_storage_bytes(graph: KnowledgeGraph) -> int:
    """Approximate heap bytes of the dict backend's triple storage.

    Counts what :meth:`~repro.core.store.ColumnarTripleStore.memory_bytes`
    counts on the columnar side: the primary container (the triple set
    plus each Triple object), the three nested SPO/POS/OSP indexes, and
    every distinct term payload once (by object identity — interning means
    shared strings are one object).
    """
    graph._ensure_indexes()
    total = sys.getsizeof(graph._triples)
    seen_terms: set = set()
    for triple in graph._triples:
        total += sys.getsizeof(triple) + sys.getsizeof(triple.__dict__)
        for term in (triple.subject, triple.predicate, triple.object):
            if id(term) not in seen_terms:
                seen_terms.add(id(term))
                total += sys.getsizeof(term)
    for index in (graph._spo, graph._pos, graph._osp):
        total += sys.getsizeof(index)
        for inner in index.values():
            total += sys.getsizeof(inner)
            for leaf in inner.values():
                total += sys.getsizeof(leaf)
    return total


def _bench_load_snapshot(scale: WorkloadScale) -> WorkloadResult:
    """Binary snapshot boot vs re-running storage construction.

    The naive baseline re-ingests the same pre-generated (triple,
    provenance) items one call at a time into a fresh graph — the
    storage-rebuild core of a pipeline re-run, with datagen/extraction
    excluded so the comparison is conservative.  The fast path parses the
    ``.rkgs`` file into a columnar graph (provenance thaw deferred, as a
    serving boot would leave it).
    """
    from repro.core import codec

    items = make_triples(scale.n_entities, scale.n_triples)
    source = _empty_graph(scale.n_entities, backend="columnar")
    fast_ingest(source, items)
    with tempfile.TemporaryDirectory() as tmp_dir:
        path = os.path.join(tmp_dir, "bench.rkgs")
        codec.save_graph(source, path, include_lineage=False)

        start = time.perf_counter()
        loaded = codec.load_graph(path, backend="columnar")
        wall = time.perf_counter() - start

    graph_naive = _empty_graph(scale.n_entities)
    start = time.perf_counter()
    naive_ingest(graph_naive, items)
    naive_wall = time.perf_counter() - start

    if len(loaded) != len(graph_naive):  # pragma: no cover - equivalence guard
        raise RuntimeError("snapshot load and rebuild disagree on graph size")
    return WorkloadResult(
        "load_snapshot", wall, n_ops=scale.n_triples, naive_wall_s=naive_wall
    )


def _bench_bytes_per_triple(scale: WorkloadScale) -> WorkloadResult:
    """Triple-storage memory: columnar columns vs dict sets + indexes.

    Encoded on the throughput axis so the trajectory gate applies:
    ``wall_s`` holds columnar MB (so ``ops_per_s`` is triples stored per
    columnar MB — more is better), ``naive_wall_s`` holds dict-backend MB
    (so ``speedup_vs_naive`` is the memory-reduction factor).
    """
    items = make_triples(scale.n_entities, scale.n_triples, with_provenance=False)

    graph_columnar = _empty_graph(scale.n_entities, backend="columnar")
    fast_ingest(graph_columnar, items)
    graph_columnar._store.compact()
    columnar_mb = graph_columnar._store.memory_bytes() / 1e6

    graph_dict = _empty_graph(scale.n_entities)
    fast_ingest(graph_dict, items)
    dict_mb = dict_triple_storage_bytes(graph_dict) / 1e6

    if len(graph_columnar) != len(graph_dict):  # pragma: no cover - equivalence guard
        raise RuntimeError("columnar and dict backends disagree on graph size")
    return WorkloadResult(
        "bytes_per_triple",
        wall_s=columnar_mb,
        n_ops=len(graph_columnar),
        naive_wall_s=dict_mb,
    )


def _bench_wal_replay(scale: WorkloadScale) -> WorkloadResult:
    """WAL recovery (segment replay into a fresh graph) vs re-ingestion.

    The naive baseline is per-call re-ingestion into the *same* columnar
    backend the recovered service runs on — what a restart without a log
    would actually have to do (and it still gets the datagen for free).
    """
    from repro.core import codec

    items = make_triples(scale.n_entities, scale.n_triples)
    with tempfile.TemporaryDirectory() as tmp_dir:
        wal = codec.TripleWAL(tmp_dir)
        graph = _empty_graph(scale.n_entities, backend="columnar")
        graph.attach_wal(wal)
        # Entity records must be in the log too: recovery starts empty.
        for entity in list(graph.entities()):
            wal.append(
                {
                    "op": "entity",
                    "id": entity.entity_id,
                    "name": entity.name,
                    "class": entity.entity_class,
                    "aliases": sorted(entity.aliases),
                }
            )
        fast_ingest(graph, items)
        wal.close()

        recovery = codec.TripleWAL(tmp_dir)
        start = time.perf_counter()
        recovered = recovery.recover(backend="columnar")
        wall = time.perf_counter() - start
        recovery.close()

    graph_naive = _empty_graph(scale.n_entities, backend="columnar")
    start = time.perf_counter()
    naive_ingest(graph_naive, items)
    naive_wall = time.perf_counter() - start

    if len(recovered) != len(graph_naive):  # pragma: no cover - equivalence guard
        raise RuntimeError("WAL recovery and rebuild disagree on graph size")
    return WorkloadResult(
        "wal_replay", wall, n_ops=scale.n_triples, naive_wall_s=naive_wall
    )


def _bench_build_scaling(scale: WorkloadScale) -> WorkloadResult:
    """Partition-parallel construction throughput at 1, 2, 4, and 8 shards.

    ``wall_s`` is the 4-partition build, ``naive_wall_s`` the single-shard
    reference, so ``speedup_vs_naive`` reads directly as the scaling
    factor at 4 partitions (the ISSUE target: >=2.5x on a 4-core runner).
    The full curve — wall and records/s per partition count — plus the
    machine's core count lands in the entry via ``extra``, so a curve
    measured on a 1-core CI box is never mistaken for a scaling failure.
    Every curve point is checked observably identical to the single-shard
    build before its timing counts.
    """
    from repro.core.partition import fixture_sources, partitioned_pipeline

    n_people = max(20, scale.n_entities // 10)
    n_movies = max(15, scale.n_entities // 15)
    sources = fixture_sources(n_people=n_people, n_movies=n_movies, seed=11)
    n_records = sum(len(source) for source in sources)

    curve: Dict[str, object] = {}
    walls: Dict[int, float] = {}
    reference_state: Optional[Tuple[int, List[Triple]]] = None
    for partitions in (1, 2, 4, 8):
        pipeline, context = partitioned_pipeline(sources, name="build_scaling")
        start = time.perf_counter()
        context = pipeline.run(context, partitions=partitions)
        wall = time.perf_counter() - start
        walls[partitions] = wall

        graph = context.artifacts["kg"]
        state = (len(graph), sorted(graph.query(), key=lambda t: t._sort_key()))
        if reference_state is None:
            reference_state = state
        elif state != reference_state:  # pragma: no cover - equivalence guard
            raise RuntimeError(
                f"{partitions}-partition build diverges from single-shard"
            )
        curve[str(partitions)] = {
            "wall_s": round(wall, 6),
            "records_per_s": round(n_records / wall, 3) if wall > 0 else 0.0,
        }

    return WorkloadResult(
        "build_scaling",
        walls[4],
        n_ops=n_records,
        naive_wall_s=walls[1],
        extra={
            "scaling_curve": curve,
            "cpu_count": os.cpu_count() or 1,
            "n_records": n_records,
        },
    )


def _bench_stream_ingest(scale: WorkloadScale) -> WorkloadResult:
    """Streaming construction vs the one-shot batch build over the same
    sources.

    ``wall_s`` is the full delta drain including cadenced live snapshot
    publishes, ``naive_wall_s`` the batch build, and the staleness /
    catch-up-lag percentiles land in ``extra`` — the freshness numbers the
    ISSUE pins into BENCH_core.json.  After timing, the stream finalizes
    and its canonical state must match the batch build (equivalence
    guard), so a regression here can never hide behind a wrong answer.
    """
    import tempfile

    from repro.core.codec import TripleWAL
    from repro.core.partition import fixture_sources, partitioned_pipeline
    from repro.serve.snapshot import SnapshotStore
    from repro.stream import (
        StreamIngestor,
        StreamPublisher,
        WALFollower,
        micro_batches,
    )

    n_people = max(20, scale.n_entities // 10)
    n_movies = max(15, scale.n_entities // 15)
    sources = fixture_sources(n_people=n_people, n_movies=n_movies, seed=11)
    n_records = sum(len(source) for source in sources)

    pipeline, context = partitioned_pipeline(sources, name="stream_ingest")
    start = time.perf_counter()
    context = pipeline.run(context, partitions=1)
    naive_wall = time.perf_counter() - start
    batch_graph = context.artifacts["kg"]
    reference = (
        len(batch_graph),
        sorted(batch_graph.query(), key=lambda t: t._sort_key()),
    )

    deltas = micro_batches(sources, max(1, n_records // 12))
    with tempfile.TemporaryDirectory() as wal_dir:
        wal = TripleWAL(wal_dir)
        ingestor = StreamIngestor(wal=wal)
        publisher = StreamPublisher(SnapshotStore(), WALFollower(wal_dir))
        pending = n_records
        start = time.perf_counter()
        for position, delta in enumerate(deltas):
            ingestor.ingest(delta)
            pending -= len(delta)
            if position % 2 == 1:
                publisher.publish(queue_records=pending)
        publisher.publish(queue_records=0)
        wall = time.perf_counter() - start

        outcome = ingestor.finalize()
    graph = outcome.graph
    state = (len(graph), sorted(graph.query(), key=lambda t: t._sort_key()))
    if state != reference:  # pragma: no cover - equivalence guard
        raise RuntimeError("streamed build diverges from the batch build")

    freshness = publisher.freshness()
    return WorkloadResult(
        "stream_ingest",
        wall,
        n_ops=n_records,
        naive_wall_s=naive_wall,
        extra={
            "n_deltas": len(deltas),
            "n_relinks": ingestor.n_relinks,
            "n_publishes": publisher.n_publishes,
            "staleness_p50_s": round(freshness["staleness_p50_s"], 6),
            "staleness_p95_s": round(freshness["staleness_p95_s"], 6),
            "catchup_p50_records": freshness["catchup_p50_records"],
            "catchup_p95_records": freshness["catchup_p95_records"],
        },
    )


def _bench_stream_scale(scale: WorkloadScale) -> WorkloadResult:
    """Large synthetic stream: records/s and peak RSS at >=100k entities.

    Names use per-entity unique tokens so blocking stays bounded (the
    real-world analogue: a well-chosen blocking key); every tenth entity
    arrives twice from a second source, so linkage, fusion conflicts, and
    WAL-logged merges all run at scale rather than being optimized away.
    """
    import tempfile

    from repro.datagen.sources import SourceRecord, StructuredSource
    from repro.serve.snapshot import SnapshotStore
    from repro.core.codec import TripleWAL
    from repro.stream import (
        StreamIngestor,
        StreamPublisher,
        WALFollower,
        micro_batches,
    )

    n_entities = 100_000 if scale.n_entities >= 1000 else 4_000
    primary = StructuredSource(name="feed-a")
    secondary = StructuredSource(name="feed-b")
    for index in range(n_entities):
        fields = {
            "name": f"stream{index} uniq{index}",
            "birth_year": 1900 + index % 120,
            "city": f"city {index % 500}",
        }
        primary.records.append(
            SourceRecord(
                record_id=f"a:{index}",
                source="feed-a",
                entity_class="Person",
                fields=dict(fields),
                world_id=f"w{index}",
            )
        )
        if index % 10 == 0:
            conflicting = dict(fields)
            conflicting["birth_year"] = fields["birth_year"] + 1
            secondary.records.append(
                SourceRecord(
                    record_id=f"b:{index}",
                    source="feed-b",
                    entity_class="Person",
                    fields=conflicting,
                    world_id=f"w{index}",
                )
            )
    sources = [primary, secondary]
    n_records = len(primary) + len(secondary)

    deltas = micro_batches(sources, max(1, n_records // 20), order_seed=3)
    publish_every = max(1, len(deltas) // 4)
    with tempfile.TemporaryDirectory() as wal_dir:
        wal = TripleWAL(wal_dir)
        ingestor = StreamIngestor(wal=wal)
        publisher = StreamPublisher(SnapshotStore(), WALFollower(wal_dir))
        start = time.perf_counter()
        for position, delta in enumerate(deltas):
            ingestor.ingest(delta)
            if (position + 1) % publish_every == 0:
                publisher.publish()
        wall = time.perf_counter() - start

    return WorkloadResult(
        "stream_scale",
        wall,
        n_ops=n_records,
        extra={
            "n_stream_records": n_records,
            "n_entities": n_entities,
            "n_deltas": len(deltas),
            "n_relinks": ingestor.n_relinks,
            "n_publishes": publisher.n_publishes,
            "records_per_s": round(n_records / wall, 3) if wall > 0 else 0.0,
            "peak_rss_mb": round(profiling.rusage()["peak_rss_kb"] / 1024, 1),
        },
    )


WORKLOADS: Dict[str, Callable[[WorkloadScale], WorkloadResult]] = {
    "ingest_batch": _bench_ingest,
    "linkage_merge": _bench_linkage_merge,
    "query_mix": _bench_query_mix,
    "fusion_accu": _bench_fusion,
    "load_snapshot": _bench_load_snapshot,
    "bytes_per_triple": _bench_bytes_per_triple,
    "wal_replay": _bench_wal_replay,
    "build_scaling": _bench_build_scaling,
    "stream_ingest": _bench_stream_ingest,
    "stream_scale": _bench_stream_scale,
}


# ---------------------------------------------------------------------------
# the trajectory file


@dataclass
class BenchRun:
    """All workload results of one bench invocation plus its metrics."""

    quick: bool
    results: Dict[str, WorkloadResult]
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)

    def to_entry(self) -> Dict[str, object]:
        """The JSON trajectory entry for this run."""
        return {
            "git_sha": current_git_sha(),
            "timestamp": round(time.time(), 3),
            "quick": self.quick,
            "workloads": {
                name: result.to_dict() for name, result in sorted(self.results.items())
            },
            "metrics": self.registry.snapshot(),
            # Peak RSS etc. so memory regressions are visible in the
            # trajectory next to the throughput numbers.
            "resources": profiling.rusage(),
        }


def current_git_sha() -> str:
    """The repo HEAD SHA, or ``"unknown"`` outside a git checkout."""
    return runs.git_sha()


def run_bench(
    quick: bool = False,
    workloads: Optional[Sequence[str]] = None,
    repeats: Optional[int] = None,
) -> BenchRun:
    """Run the selected workloads; best-of-``repeats`` wall time wins.

    Timing through a private :class:`MetricsRegistry`: one histogram of
    per-repeat wall seconds and one throughput gauge per workload.
    """
    scale = QUICK_SCALE if quick else FULL_SCALE
    repeats = repeats if repeats is not None else (1 if quick else 3)
    selected = list(workloads) if workloads else list(WORKLOADS)
    unknown = [name for name in selected if name not in WORKLOADS]
    if unknown:
        raise ValueError(f"unknown workload(s): {', '.join(sorted(unknown))}")
    run = BenchRun(quick=quick, results={})
    for name in selected:
        best: Optional[WorkloadResult] = None
        for _ in range(max(repeats, 1)):
            result = WORKLOADS[name](scale)
            run.registry.histogram(f"bench.{name}.wall_seconds").observe(result.wall_s)
            if result.naive_wall_s is not None:
                run.registry.histogram(f"bench.{name}.naive_wall_seconds").observe(
                    result.naive_wall_s
                )
            if best is None or result.wall_s < best.wall_s:
                best = result
        assert best is not None
        run.registry.gauge(f"bench.{name}.ops_per_s").set(best.ops_per_s)
        run.registry.counter(f"bench.{name}.ops").inc(best.n_ops)
        run.results[name] = best
    return run


def load_trajectory(path: str) -> Dict[str, object]:
    """The trajectory document at ``path`` (a fresh one when absent)."""
    if not os.path.exists(path):
        return {"schema": SCHEMA_VERSION, "entries": []}
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if document.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported trajectory schema {document.get('schema')!r} in {path}"
        )
    if not isinstance(document.get("entries"), list):
        raise ValueError(f"malformed trajectory file {path}: no entries list")
    return document


def append_entry(path: str, entry: Dict[str, object]) -> Dict[str, object]:
    """Append one entry to the trajectory file; returns the document."""
    document = load_trajectory(path)
    document["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


@dataclass(frozen=True)
class Regression:
    """One workload whose throughput dropped beyond the tolerance."""

    workload: str
    previous_ops_per_s: float
    current_ops_per_s: float

    @property
    def drop(self) -> float:
        if self.previous_ops_per_s <= 0:
            return 0.0
        return 1.0 - self.current_ops_per_s / self.previous_ops_per_s

    def describe(self) -> str:
        return (
            f"{self.workload}: {self.previous_ops_per_s:.1f} -> "
            f"{self.current_ops_per_s:.1f} ops/s ({self.drop:.1%} drop)"
        )


def previous_entry(
    document: Dict[str, object], quick: bool
) -> Optional[Dict[str, object]]:
    """The most recent earlier entry of the same mode (quick vs full).

    Quick runs use smaller scales, so cross-mode throughput comparisons
    would gate on noise, not regressions.
    """
    for entry in reversed(document.get("entries", [])):
        if bool(entry.get("quick")) == quick:
            return entry
    return None


def check_regressions(
    entry: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[Regression]:
    """Workloads in ``entry`` slower than ``baseline`` beyond ``tolerance``."""
    if baseline is None:
        return []
    regressions: List[Regression] = []
    baseline_workloads = baseline.get("workloads", {})
    for name, record in sorted(entry.get("workloads", {}).items()):
        previous = baseline_workloads.get(name)
        if not previous:
            continue
        previous_rate = float(previous.get("ops_per_s", 0.0))
        current_rate = float(record.get("ops_per_s", 0.0))
        if previous_rate > 0 and current_rate < previous_rate * (1.0 - tolerance):
            regressions.append(Regression(name, previous_rate, current_rate))
    return regressions
