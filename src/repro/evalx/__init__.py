"""Experiment infrastructure: result tables, the registry, traced runs."""

from repro.evalx.tables import ResultTable, render_table
from repro.evalx.registry import EXPERIMENTS, Experiment

__all__ = ["ResultTable", "render_table", "EXPERIMENTS", "Experiment"]
