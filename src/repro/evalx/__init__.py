"""Experiment infrastructure: result tables and the experiment registry."""

from repro.evalx.tables import ResultTable
from repro.evalx.registry import EXPERIMENTS, Experiment

__all__ = ["ResultTable", "EXPERIMENTS", "Experiment"]
