"""``repro loadgen`` — the serving load-test harness.

Drives a serving endpoint (the in-process client or the HTTP client from
:mod:`repro.serve.server` — both expose the same ``(status, body)``
contract) with a deterministic request mix over the served entities, in
one of two loops:

* **closed loop** — ``concurrency`` workers issue requests back-to-back;
  throughput is what the service can sustain, latency is per-request
  service time.  The classic "how fast can it go" measurement.
* **open loop** — requests arrive on a fixed schedule at ``rps``
  regardless of completions, which is how real traffic behaves: when the
  service falls behind, arrivals queue and measured latency includes the
  queueing delay.  This is the loop that exercises the admission
  controller's degradation ladder honestly.

Each run produces a :class:`LoadgenReport` — throughput, p50/p95/p99
latency (overall and per route), status and degradation counts — and
appends one trajectory entry to ``BENCH_serve.json`` through the same
machinery :mod:`repro.evalx.bench` uses for ``BENCH_core.json``, so the
serving trajectory gates regressions exactly like the core one.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.evalx.bench import (
    append_entry,
    check_regressions,
    current_git_sha,
    load_trajectory,
    previous_entry,
    Regression,
)
from repro.obs.metrics import MetricsRegistry

#: Default trajectory file for serving runs (repo root, next to BENCH_core).
TRAJECTORY_BASENAME = "BENCH_serve.json"

#: Route mix weights: read-heavy, like real KG serving traffic (Sec. 1).
DEFAULT_MIX: Dict[str, float] = {"lookup": 0.45, "query": 0.20, "paths": 0.15, "ask": 0.20}

#: A run is "quick" (CI smoke scale) at or under this duration.
QUICK_DURATION_S = 5.0


# ---------------------------------------------------------------------------
# request planning


@dataclass(frozen=True)
class PlannedRequest:
    """One request in the deterministic plan: a route and its kwargs."""

    route: str
    kwargs: Dict[str, object]


def build_request_plan(
    entity_sample: Sequence[Dict[str, object]],
    n_requests: int,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 31,
) -> List[PlannedRequest]:
    """A seeded request plan over the served vocabulary.

    Drawing from a bounded entity sample means repeats are frequent —
    deliberately, so the read-through cache sees realistic re-ask rates.
    The plan is fully determined by ``(entity_sample, n_requests, mix,
    seed)``: the shard-invariance tests replay the identical plan against
    1-shard and 4-shard services.
    """
    usable = [e for e in entity_sample if e.get("predicates")]
    if not usable:
        raise ValueError("entity sample has no entities with predicates to query")
    mix = dict(mix) if mix else dict(DEFAULT_MIX)
    total_weight = sum(mix.values())
    if total_weight <= 0:
        raise ValueError(f"request mix weights must sum to > 0, got {mix}")
    routes = sorted(mix)
    weights = [mix[route] / total_weight for route in routes]
    rng = random.Random(seed)
    plan: List[PlannedRequest] = []
    for _ in range(n_requests):
        route = rng.choices(routes, weights=weights)[0]
        entity = rng.choice(usable)
        predicate = rng.choice(entity["predicates"])  # type: ignore[arg-type]
        if route == "lookup":
            kwargs: Dict[str, object] = {
                "subject": entity["entity_id"],
                "predicate": predicate,
            }
        elif route == "ask":
            kwargs = {"subject": str(entity["name"]), "predicate": predicate}
        elif route == "paths":
            other = rng.choice(usable)
            kwargs = {
                "start": entity["entity_id"],
                "goal": other["entity_id"],
                "max_length": 3,
                "max_paths": 10,
            }
        else:  # query
            if rng.random() < 0.5:
                kwargs = {"patterns": [[entity["entity_id"], predicate, "?o"]]}
            else:
                kwargs = {"patterns": [["?s", predicate, "?o"]]}
        plan.append(PlannedRequest(route=route, kwargs=kwargs))
    return plan


# ---------------------------------------------------------------------------
# measurement


@dataclass
class RequestOutcome:
    """What one issued request came back with."""

    route: str
    status_code: int
    latency_ms: float
    cached: bool = False
    degraded: Optional[str] = None


def _percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sequence."""
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, int(fraction * len(sorted_values))))
    return sorted_values[index]


@dataclass
class LoadgenReport:
    """One load-test run's results (and its trajectory entry)."""

    mode: str
    duration_s: float
    target_rps: Optional[float]
    concurrency: int
    outcomes: List[RequestOutcome] = field(default_factory=list)
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: "on"/"off" for obs-overhead comparison runs, None for plain runs.
    obs: Optional[str] = None

    @property
    def n_requests(self) -> int:
        return len(self.outcomes)

    @property
    def throughput_rps(self) -> float:
        return self.n_requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def n_server_errors(self) -> int:
        """5xx-equivalents (the overload acceptance gate: must be zero)."""
        return sum(1 for outcome in self.outcomes if outcome.status_code >= 500)

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            key = str(outcome.status_code)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def degraded_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for outcome in self.outcomes:
            if outcome.degraded:
                counts[outcome.degraded] = counts.get(outcome.degraded, 0) + 1
        return counts

    def latency_summary(self, route: Optional[str] = None) -> Dict[str, float]:
        """p50/p95/p99/mean latency (ms), overall or for one route."""
        values = sorted(
            outcome.latency_ms
            for outcome in self.outcomes
            if route is None or outcome.route == route
        )
        if not values:
            return {"n": 0, "mean_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0}
        return {
            "n": len(values),
            "mean_ms": round(sum(values) / len(values), 3),
            "p50_ms": round(_percentile(values, 0.50), 3),
            "p95_ms": round(_percentile(values, 0.95), 3),
            "p99_ms": round(_percentile(values, 0.99), 3),
        }

    def cache_hit_count(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.cached)

    def to_entry(self) -> Dict[str, object]:
        """A ``BENCH_serve.json`` trajectory entry.

        Per-route blocks carry ``ops_per_s`` so the bench machinery's
        regression gate applies unchanged; latency percentiles ride
        along for the report.
        """
        routes = sorted({outcome.route for outcome in self.outcomes})
        workloads: Dict[str, object] = {}
        for route in routes:
            summary = self.latency_summary(route)
            n_ops = int(summary["n"])
            workloads[f"route_{route}"] = {
                "n_ops": n_ops,
                "ops_per_s": round(n_ops / self.duration_s, 3) if self.duration_s else 0.0,
                "p50_ms": summary["p50_ms"],
                "p95_ms": summary["p95_ms"],
                "p99_ms": summary["p99_ms"],
            }
        overall = self.latency_summary()
        workloads["overall"] = {
            "n_ops": self.n_requests,
            "ops_per_s": round(self.throughput_rps, 3),
            "p50_ms": overall["p50_ms"],
            "p95_ms": overall["p95_ms"],
            "p99_ms": overall["p99_ms"],
        }
        return {
            "git_sha": current_git_sha(),
            "timestamp": round(time.time(), 3),
            "quick": self.duration_s <= QUICK_DURATION_S,
            "obs": self.obs,
            "mode": self.mode,
            "target_rps": self.target_rps,
            "concurrency": self.concurrency,
            "duration_s": round(self.duration_s, 3),
            "workloads": workloads,
            "status_counts": self.status_counts(),
            "degraded": self.degraded_counts(),
            "n_server_errors": self.n_server_errors,
            "cache_hits": self.cache_hit_count(),
            "metrics": self.registry.snapshot(),
        }


# ---------------------------------------------------------------------------
# the two loops


def _issue(client, planned: PlannedRequest) -> RequestOutcome:
    """Send one planned request; all failures become outcomes, not raises."""
    started = time.perf_counter()
    try:
        status_code, body = getattr(client, planned.route)(**planned.kwargs)
    except Exception:
        # Transport failure (connection refused, timeout): count as a
        # client-side error so the run keeps going and the report shows it.
        return RequestOutcome(
            route=planned.route,
            status_code=599,
            latency_ms=(time.perf_counter() - started) * 1000.0,
        )
    latency_ms = (time.perf_counter() - started) * 1000.0
    body = body if isinstance(body, dict) else {}
    return RequestOutcome(
        route=planned.route,
        status_code=status_code,
        latency_ms=latency_ms,
        cached=bool(body.get("cached")),
        degraded=body.get("degraded"),
    )


def _run_closed_loop(
    client,
    plan: Sequence[PlannedRequest],
    duration_s: float,
    concurrency: int,
    outcomes: List[RequestOutcome],
    lock: threading.Lock,
) -> None:
    """Workers issue back-to-back requests, cycling the plan, until time."""
    deadline = time.monotonic() + duration_s
    cursor = {"next": 0}

    def worker() -> None:
        while time.monotonic() < deadline:
            with lock:
                index = cursor["next"]
                cursor["next"] = index + 1
            outcome = _issue(client, plan[index % len(plan)])
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=worker, daemon=True, name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _run_open_loop(
    client,
    plan: Sequence[PlannedRequest],
    duration_s: float,
    rps: float,
    concurrency: int,
    outcomes: List[RequestOutcome],
    lock: threading.Lock,
) -> None:
    """Arrivals on a fixed schedule; queueing delay is part of latency.

    The scheduler stamps each request's *scheduled* arrival; workers
    drain a queue, so when the service is slower than the arrival rate
    the backlog (and the measured latency) grows — exactly the overload
    signal the admission ladder is there to absorb.
    """
    work: "queue.Queue[Optional[Tuple[PlannedRequest, float]]]" = queue.Queue()
    deadline = time.monotonic() + duration_s
    interval = 1.0 / rps

    def worker() -> None:
        while True:
            item = work.get()
            if item is None:
                return
            planned, scheduled_at = item
            outcome = _issue(client, planned)
            # Open-loop latency counts from the scheduled arrival, not
            # from when a worker got free: queueing is the point.
            queued_ms = max(0.0, time.monotonic() - scheduled_at) * 1000.0
            outcome.latency_ms = max(outcome.latency_ms, queued_ms)
            with lock:
                outcomes.append(outcome)

    threads = [
        threading.Thread(target=worker, daemon=True, name=f"loadgen-{i}")
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()

    index = 0
    next_arrival = time.monotonic()
    while time.monotonic() < deadline:
        now = time.monotonic()
        if now < next_arrival:
            time.sleep(min(next_arrival - now, 0.01))
            continue
        work.put((plan[index % len(plan)], next_arrival))
        index += 1
        next_arrival += interval
    for _ in threads:
        work.put(None)
    for thread in threads:
        thread.join()


def run_loadgen(
    client,
    entity_sample: Optional[Sequence[Dict[str, object]]] = None,
    duration_s: float = 10.0,
    mode: str = "closed",
    rps: float = 100.0,
    concurrency: int = 8,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 31,
) -> LoadgenReport:
    """Run one load test against ``client``; returns the report.

    ``client`` is anything with the four route methods returning
    ``(status_code, body)`` — :class:`repro.serve.server.InProcessClient`
    or :class:`repro.serve.server.HTTPClient`.  ``entity_sample`` defaults
    to what the endpoint's own ``/stats`` advertises.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    if duration_s <= 0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    if entity_sample is None:
        status_code, stats = client.stats()
        if status_code != 200:
            raise RuntimeError(f"/stats returned {status_code}; cannot build request plan")
        entity_sample = stats.get("entity_sample", [])
    plan_size = max(64, int(duration_s * (rps if mode == "open" else 200)))
    plan = build_request_plan(entity_sample, n_requests=plan_size, mix=mix, seed=seed)

    outcomes: List[RequestOutcome] = []
    lock = threading.Lock()
    started = time.perf_counter()
    if mode == "closed":
        _run_closed_loop(client, plan, duration_s, concurrency, outcomes, lock)
    else:
        _run_open_loop(client, plan, duration_s, rps, concurrency, outcomes, lock)
    wall = time.perf_counter() - started

    report = LoadgenReport(
        mode=mode,
        duration_s=wall,
        target_rps=rps if mode == "open" else None,
        concurrency=concurrency,
        outcomes=outcomes,
    )
    for outcome in outcomes:
        report.registry.histogram(f"loadgen.{outcome.route}.seconds").observe(
            outcome.latency_ms / 1000.0
        )
        report.registry.counter(f"loadgen.status.{outcome.status_code}").inc()
    report.registry.gauge("loadgen.throughput_rps").set(report.throughput_rps)
    return report


# ---------------------------------------------------------------------------
# observability overhead measurement


def measure_obs_overhead(
    build_service,
    duration_s: float = 5.0,
    concurrency: int = 1,
    mix: Optional[Dict[str, float]] = None,
    seed: int = 31,
    max_p95_overhead: float = 0.05,
    rounds: int = 3,
    transport: str = "http",
) -> Dict[str, object]:
    """Loadgen with observability off vs on; compare paired p95s.

    ``build_service`` is a zero-argument callable returning a *fresh*
    :class:`~repro.serve.service.KGService` — each run gets its own
    service so every side starts with cold caches and full token buckets
    (a shared service would hand the second run a warmed cache and call
    it speedup).  The observability ledger (tracer, registry, SLO
    windows) is reset around each run and the prior enabled-state is
    restored.

    Three things make the measurement honest and robust on a noisy
    machine:

    * **the HTTP transport** (the default) — overhead is gated relative
      to what a *client* sees, and clients talk to the server, not to
      Python function calls.  The in-process client's ~50µs round trip
      exists to factor transport out of functional tests; against it no
      per-request bookkeeping in pure Python can look small.
      ``transport="inprocess"`` remains for socket-free smoke runs.
    * **single-worker closed loop** (the default ``concurrency=1``) —
      back-to-back requests on one thread make latency service time plus
      one transport round trip.  A multi-worker closed loop measures
      GIL/queueing contention and an open loop measures thread-wake
      jitter (~1ms on a small VM); both swamp the cost being gated and
      make p95 swing 2x run-to-run with zero code change.
    * **paired interleaved rounds, trimmed and pooled** — off/on run
      adjacent in time, ``rounds`` times, so a host that throttles
      mid-measurement (CPU burst credits, a neighbor) degrades nearby
      runs together instead of landing entirely on one label.  The gated
      overhead compares the p95 of each side's samples *pooled across
      rounds* — a single round's p95 rests on a few dozen tail samples
      and swings ±20% run-to-run — and, when ``rounds >= 3``, each side
      first drops its own worst round: a preemption burst lands inside
      one round, and trimming it symmetrically keeps one stall from
      deciding the gate.

    Returns the median round's two reports (for trajectory recording),
    the pooled p95s, the per-round overheads (for transparency), and
    whether the pooled overhead stayed under ``max_p95_overhead`` (the
    <5% acceptance gate).
    """
    from repro.obs import profiling
    from repro.serve.server import HTTPClient, InProcessClient, start_server

    if rounds < 1:
        raise ValueError(f"rounds must be >= 1, got {rounds}")
    if transport not in ("http", "inprocess"):
        raise ValueError(f"transport must be 'http' or 'inprocess', got {transport!r}")
    previous_enabled = profiling.enabled()
    round_reports: List[Dict[str, LoadgenReport]] = []
    try:
        for round_index in range(rounds):
            pair: Dict[str, LoadgenReport] = {}
            for label in ("off", "on"):
                profiling.disable()  # fixture construction is not the measurement
                service = build_service()
                server = None
                if transport == "http":
                    server, _thread = start_server(service)
                    client = HTTPClient(
                        f"http://127.0.0.1:{server.server_address[1]}"
                    )
                else:
                    client = InProcessClient(service)
                profiling.reset_all()
                if label == "on":
                    profiling.enable()
                try:
                    report = run_loadgen(
                        client,
                        duration_s=duration_s,
                        mode="closed",
                        concurrency=concurrency,
                        mix=mix,
                        seed=seed,
                    )
                finally:
                    if server is not None:
                        server.shutdown()
                report.obs = label
                pair[label] = report
            round_reports.append(pair)
    finally:
        profiling.reset_all()
        if previous_enabled:
            profiling.enable()
        else:
            profiling.disable()

    overheads: List[float] = []
    for pair in round_reports:
        p95_off = pair["off"].latency_summary()["p95_ms"]
        p95_on = pair["on"].latency_summary()["p95_ms"]
        overheads.append((p95_on - p95_off) / p95_off if p95_off > 0 else 0.0)
    ranked = sorted(range(rounds), key=lambda i: overheads[i])
    median = round_reports[ranked[rounds // 2]]

    def pooled_p95(label: str) -> float:
        per_round = [
            pair[label].latency_summary()["p95_ms"] for pair in round_reports
        ]
        keep = set(range(rounds))
        if rounds >= 3:
            keep.discard(max(keep, key=lambda i: per_round[i]))
        values = sorted(
            outcome.latency_ms
            for index in keep
            for outcome in round_reports[index][label].outcomes
        )
        return round(_percentile(values, 0.95), 3)

    p95_off = pooled_p95("off")
    p95_on = pooled_p95("on")
    overhead = (p95_on - p95_off) / p95_off if p95_off > 0 else 0.0
    return {
        "off": median["off"],
        "on": median["on"],
        "p95_off_ms": p95_off,
        "p95_on_ms": p95_on,
        "p95_overhead": round(overhead, 4),
        "round_overheads": [round(value, 4) for value in overheads],
        "max_p95_overhead": max_p95_overhead,
        "passed": overhead <= max_p95_overhead,
    }


# ---------------------------------------------------------------------------
# trajectory recording (shared by the CLI and the CI smoke job)


def record_trajectory(
    report: LoadgenReport, path: str, tolerance: float = 0.20
) -> Tuple[Dict[str, object], List[Regression]]:
    """Append the report to ``path``; returns (entry, regressions).

    Regressions compare per-route throughput against the most recent
    previous entry of the same quick/full mode, with the same tolerance
    semantics as the core bench trajectory.
    """
    entry = report.to_entry()
    document = load_trajectory(path)
    baseline = previous_entry(document, bool(entry["quick"]))
    append_entry(path, entry)
    return entry, check_regressions(entry, baseline, tolerance=tolerance)
