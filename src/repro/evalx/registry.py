"""Registry mapping the paper's figures/claims to runnable experiments.

One row per entry of the DESIGN.md per-experiment index.  Benchmarks look
themselves up here so the paper linkage stays in one place, and the Sec. 5
production-readiness bench iterates the registry to build its matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.lifecycle import CycleStage


@dataclass(frozen=True)
class Experiment:
    """One reproducible experiment tied to a paper artifact."""

    experiment_id: str
    paper_reference: str
    claim: str
    bench_module: str
    stage: CycleStage


EXPERIMENTS: Dict[str, Experiment] = {
    experiment.experiment_id: experiment
    for experiment in (
        Experiment(
            "FIG2",
            "Figure 2 (Sec. 2.2)",
            "Random-forest entity linkage reaches ~99% P/R with enough labels; "
            "active learning reaches the same quality with orders of magnitude fewer labels.",
            "benchmarks/test_fig2_entity_linkage.py",
            CycleStage.REPEATABILITY,
        ),
        Experiment(
            "FIG3",
            "Figure 3 (Sec. 2.3)",
            "ClosedIE (distantly supervised) exceeds 90% accuracy; OpenIE adds knowledge "
            "volume at much lower accuracy; wrapper induction >95% but needs per-site annotation.",
            "benchmarks/test_fig3_semistructured_extraction.py",
            CycleStage.SCALABILITY,
        ),
        Experiment(
            "FIG4",
            "Figure 4 (Sec. 2.5 / 3.5)",
            "Entity-based and text-rich construction architectures run end-to-end.",
            "benchmarks/test_fig4_architectures.py",
            CycleStage.REPEATABILITY,
        ),
        Experiment(
            "FIG4A",
            "Figure 4(a) (Sec. 2.5)",
            "The entity-based construction architecture (linkage + fusion over "
            "structured sources) runs end-to-end.",
            "benchmarks/test_fig4_architectures.py",
            CycleStage.REPEATABILITY,
        ),
        Experiment(
            "FIG4B",
            "Figure 4(b) (Sec. 3.5)",
            "The text-rich (AutoKnow-style) construction architecture runs end-to-end.",
            "benchmarks/test_fig4_architectures.py",
            CycleStage.REPEATABILITY,
        ),
        Experiment(
            "FIG5",
            "Figure 5 (Sec. 3.2)",
            "The automated pipeline cuts manual work by an order of magnitude at "
            "comparable extraction quality.",
            "benchmarks/test_fig5_pipeline_cost.py",
            CycleStage.REPEATABILITY,
        ),
        Experiment(
            "T-WEB",
            "Sec. 2.4 numbers",
            "Semi-structured sources dominate high-confidence web extraction "
            "(94M of KV's 100M triples); text extraction is noisy; fusion calibrates.",
            "benchmarks/test_web_scale_fusion.py",
            CycleStage.UBIQUITY,
        ),
        Experiment(
            "T-LINKPRED",
            "Sec. 2.4 fusion methods",
            "PRA and embedding link prediction separate true from corrupted triples.",
            "benchmarks/test_link_prediction.py",
            CycleStage.UBIQUITY,
        ),
        Experiment(
            "T-OPENTAG",
            "Sec. 3.1/3.2",
            "Raw NER extraction lands at 85-95%; pipeline post-processing lifts it above 95%.",
            "benchmarks/test_opentag_quality.py",
            CycleStage.QUALITY,
        ),
        Experiment(
            "T-TXTRACT",
            "Sec. 3.3",
            "One type-aware model beats the pooled OpenTag baseline across all types.",
            "benchmarks/test_txtract_multitype.py",
            CycleStage.SCALABILITY,
        ),
        Experiment(
            "T-ADATAG",
            "Sec. 3.3",
            "One attribute-conditioned model beats one-model-per-attribute.",
            "benchmarks/test_adatag_multiattribute.py",
            CycleStage.SCALABILITY,
        ),
        Experiment(
            "T-PAM",
            "Sec. 3.4",
            "Multi-modal extraction beats text-only and recovers values unseen in text.",
            "benchmarks/test_pam_multimodal.py",
            CycleStage.UBIQUITY,
        ),
        Experiment(
            "T-AUTOKNOW",
            "Sec. 3.5",
            "The self-driving pipeline multiplies catalog knowledge across all types "
            "while extending the taxonomy.",
            "benchmarks/test_autoknow_scale.py",
            CycleStage.SCALABILITY,
        ),
        Experiment(
            "T-LLMQA",
            "Sec. 4 study",
            "LM QA: ~20% hallucination, ~50% missing; head accuracy ~50% vs tail ~15%; "
            "head hallucination stays ~20%.",
            "benchmarks/test_llm_qa_hallucination.py",
            CycleStage.FEASIBILITY,
        ),
        Experiment(
            "T-DUAL",
            "Sec. 4 'the future'",
            "Dual routing (triples + LM) beats either pure strategy, including on "
            "post-training (recent) knowledge.",
            "benchmarks/test_dual_neural_kg.py",
            CycleStage.FEASIBILITY,
        ),
        Experiment(
            "T-GROWTH",
            "Sec. 2.5",
            "Each construction stage grows the KG; extraction adds long-tail knowledge "
            "curated sources miss.",
            "benchmarks/test_kg_growth.py",
            CycleStage.SCALABILITY,
        ),
        Experiment(
            "T-OBS",
            "Sec. 5",
            "Request-scoped observability (span trees, rolling RED/SLO windows, "
            "error-budget burn) makes the serving degradation ladder visible at "
            "<5% p95 latency overhead.",
            "benchmarks/test_obs_overhead.py",
            CycleStage.UBIQUITY,
        ),
        Experiment(
            "T-SERVE",
            "Sec. 1 / Sec. 5",
            "A published KG snapshot serves lookups, paths, conjunctive queries, and "
            "dual-routed QA behind admission control; overload degrades (LM shed, "
            "stale cache) instead of erroring.",
            "benchmarks/test_serve_latency.py",
            CycleStage.UBIQUITY,
        ),
        Experiment(
            "T-SUCCESS",
            "Sec. 5",
            "Techniques split into industry successes vs not-yet by the ready+essential test.",
            "benchmarks/test_production_readiness.py",
            CycleStage.UBIQUITY,
        ),
    )
}
