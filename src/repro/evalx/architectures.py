"""The two construction architectures of Figure 4, assembled end-to-end.

Fig. 4(a) — entity-based KG construction: knowledge transformation from a
curated source, knowledge integration of a second structured source
(schema alignment -> blocking -> RF linkage -> merge -> fusion), then
knowledge extraction from semi-structured websites seeded by the KG built
so far.

Fig. 4(b) — text-rich KG construction: taxonomy enrichment from behavior,
one-size-fits-all distantly-supervised extraction, ML cleaning, assembly —
delegated to :class:`repro.products.autoknow.AutoKnow` and wrapped in
pipeline stages for uniform reporting.

Both return a :class:`~repro.core.pipeline.PipelineContext` whose metrics
feed the FIG4 / T-GROWTH benchmarks and the architecture examples.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.pipeline import ConstructionPipeline, PipelineContext
from repro.core.triple import Provenance, Triple
from repro.datagen.behavior import BehaviorLog
from repro.datagen.products import ProductDomain
from repro.datagen.sources import SourceRecord, StructuredSource, default_source_pair
from repro.datagen.web import generate_web_corpus
from repro.datagen.world import World
from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
from repro.integrate.fusion import AccuFusion, claims_from_sources
from repro.integrate.linkage import EntityLinker, build_linkage_task
from repro.integrate.schema_alignment import canonicalize_record, oracle_alignment
from repro.products.autoknow import AutoKnow
from repro.transform.mapping import SchemaMapping, cast_number
from repro.transform.relational import RelationalTransformer

#: Canonical attribute set used by the entity-based architecture.
_MOVIE_ATTRIBUTES = ("release_year", "genre", "runtime", "directed_by")
_PERSON_ATTRIBUTES = ("birth_year", "birth_place")


def _movie_mapping(source_name: str, field_map: Dict[str, str]) -> SchemaMapping:
    mapping = SchemaMapping(
        source_name=source_name,
        entity_class="Movie",
        name_field=field_map.get("name", "name"),
    )
    mapping.map_field(field_map.get("release_year", "release_year"), "release_year", cast=cast_number)
    mapping.map_field(field_map.get("genre", "genre"), "genre")
    mapping.map_field(field_map.get("runtime", "runtime"), "runtime", cast=cast_number)
    mapping.map_field(field_map.get("directed_by", "directed_by"), "directed_by", is_entity_reference=True)
    return mapping


def _person_mapping(source_name: str, field_map: Dict[str, str]) -> SchemaMapping:
    mapping = SchemaMapping(
        source_name=source_name,
        entity_class="Person",
        name_field=field_map.get("name", "name"),
    )
    mapping.map_field(field_map.get("birth_year", "birth_year"), "birth_year", cast=cast_number)
    mapping.map_field(field_map.get("birth_place", "birth_place"), "birth_place")
    return mapping


def build_entity_based_kg(
    world: World,
    label_budget: int = 400,
    n_sites: int = 3,
    pages_per_site: int = 25,
    seed: int = 0,
) -> PipelineContext:
    """Run the Fig. 4(a) architecture against a synthetic world.

    The returned context carries the KG under ``artifacts["kg"]``, the
    entity -> world-id evaluation map under ``artifacts["world_of"]``
    (evaluation-only), and per-stage metrics.
    """
    pipeline = ConstructionPipeline("entity_based_fig4a")
    context = PipelineContext()
    context.artifacts["world"] = world
    pipeline.add_function("transform_curated", _stage_transform_curated)
    pipeline.add_function("integrate_second_source", _make_integration_stage(label_budget, seed))
    pipeline.add_function("fuse_values", _stage_fuse_values)
    pipeline.add_function(
        "extract_semistructured", _make_web_extraction_stage(n_sites, pages_per_site, seed)
    )
    result = pipeline.run(context)
    result.artifacts["pipeline"] = pipeline
    return result


# ----------------------------------------------------------------------
# Fig. 4(a) stages


def _stage_transform_curated(context: PipelineContext) -> None:
    """Stage 1 (Sec. 2.1): transform the Wikipedia-like source."""
    world: World = context.require("world")
    curated, second = default_source_pair(world, seed=11)
    graph = KnowledgeGraph(ontology=world.truth.ontology, name="built_kg")
    transformer = RelationalTransformer(graph=graph)
    transformer.register(
        _movie_mapping(curated.name, curated.field_map),
        reference_classes={"directed_by": "Person"},
    )
    transformer.register(_person_mapping(curated.name, curated.field_map))
    ingested = transformer.transform_source(curated)
    world_of: Dict[str, str] = {}
    for record in curated.records:
        entity_id = transformer.record_entity_.get(record.record_id)
        if entity_id is not None:
            world_of[entity_id] = record.world_id
    context.artifacts.update(
        {
            "kg": graph,
            "world_of": world_of,
            "curated_source": curated,
            "second_source": second,
            "curated_entity_of_record": dict(transformer.record_entity_),
        }
    )
    context.metrics["transform.records_ingested"] = ingested
    context.metrics["transform.triples"] = len(graph)


def _make_integration_stage(label_budget: int, seed: int):
    def stage(context: PipelineContext) -> None:
        """Stage 2 (Sec. 2.2): link and merge the second source."""
        world: World = context.require("world")
        graph: KnowledgeGraph = context.require("kg")
        curated: StructuredSource = context.require("curated_source")
        second: StructuredSource = context.require("second_source")
        world_of: Dict[str, str] = context.require("world_of")
        entity_of_record: Dict[str, str] = context.require("curated_entity_of_record")
        curated_alignment = oracle_alignment(curated)
        second_alignment = oracle_alignment(second)
        triples_before = len(graph)
        matched_records: Dict[str, str] = {}  # second record_id -> kg entity id
        for entity_class in ("Movie", "Person"):
            task = build_linkage_task(
                curated, second, entity_class, curated_alignment, second_alignment
            )
            if len(task.pairs) == 0:
                continue
            linker = EntityLinker(n_estimators=20, seed=seed)
            budget = min(label_budget, len(task.pairs))
            # Train on a metered subset of oracle labels.
            import numpy as np

            rng = np.random.default_rng(seed)
            chosen = rng.choice(len(task.pairs), size=budget, replace=False)
            labels = [task.oracle(int(index)) for index in chosen]
            if len(set(labels)) < 2:
                continue
            linker.fit(task.features[chosen], labels)
            predictions = linker.predict(task.features, pairs=task.pairs)
            for decided, (left_index, right_index) in zip(predictions, task.pairs):
                if not decided:
                    continue
                left_record = task.left_records[left_index]
                right_record = task.right_records[right_index]
                kg_entity = entity_of_record.get(left_record.record_id)
                if kg_entity is not None and graph.has_entity(kg_entity):
                    matched_records[right_record.record_id] = kg_entity
        # Matched second-source records enrich existing entities; unmatched
        # ones become new (torso/long-tail) entities.
        new_entities = 0
        enriched = 0
        for record in second.records:
            canonical = canonicalize_record(record, second_alignment)
            kg_entity = matched_records.get(record.record_id)
            if kg_entity is None:
                kg_entity = f"{second.name}:{record.record_id}"
                name = str(canonical.get("name", "")) or record.record_id
                graph.add_entity(kg_entity, name, record.entity_class)
                world_of[kg_entity] = record.world_id
                new_entities += 1
            else:
                enriched += 1
            attributes = (
                _MOVIE_ATTRIBUTES if record.entity_class == "Movie" else _PERSON_ATTRIBUTES
            )
            for attribute in attributes:
                value = canonical.get(attribute)
                if value is None or isinstance(value, list):
                    continue
                if attribute == "directed_by":
                    continue  # entity references resolved during fusion
                graph.add_triple(
                    Triple(kg_entity, attribute, value),
                    provenance=Provenance(source=second.name),
                )
        context.metrics["integrate.matched"] = float(len(matched_records))
        context.metrics["integrate.new_entities"] = float(new_entities)
        context.metrics["integrate.enriched_entities"] = float(enriched)
        context.metrics["integrate.triples_added"] = float(len(graph) - triples_before)

    return stage


def _stage_fuse_values(context: PipelineContext) -> None:
    """Stage 3 (Sec. 2.2): resolve conflicting values across the sources."""
    graph: KnowledgeGraph = context.require("kg")
    resolved = 0
    fusion = AccuFusion(n_iterations=6)
    # Build claims from the KG's own provenance: one claim per (triple,
    # provenance source).
    from repro.integrate.fusion import ValueClaim

    claims = []
    for attributed in graph.attributed_triples():
        triple = attributed.triple
        if isinstance(triple.object, str) and graph.has_entity(triple.object):
            continue  # fuse literals only
        claims.append(
            ValueClaim(
                subject=triple.subject,
                attribute=triple.predicate,
                value=triple.object,
                source=attributed.provenance.source,
            )
        )
    results = fusion.fuse(claims)
    for result in results:
        existing = graph.objects(result.subject, result.attribute)
        losers = [value for value in existing if value != result.value]
        for value in losers:
            graph.remove_triple(Triple(result.subject, result.attribute, value))
            resolved += 1
    context.metrics["fuse.conflicts_resolved"] = float(resolved)
    context.metrics["fuse.triples"] = float(len(graph))


def _make_web_extraction_stage(n_sites: int, pages_per_site: int, seed: int):
    def stage(context: PipelineContext) -> None:
        """Stage 4 (Sec. 2.3): extract from semi-structured websites."""
        world: World = context.require("world")
        graph: KnowledgeGraph = context.require("kg")
        sites = generate_web_corpus(
            world, n_sites=n_sites, pages_per_site=pages_per_site, seed=100 + seed
        )
        seed_knowledge = SeedKnowledge.from_graph(
            graph, attributes=_MOVIE_ATTRIBUTES + _PERSON_ATTRIBUTES
        )
        supervisor = DistantSupervisor(seed_knowledge)
        from repro.integrate.disambiguation import EntityDisambiguator

        disambiguator = EntityDisambiguator(graph)
        added = 0
        sites_trained = 0
        for site in sites:
            try:
                extractor = CeresExtractor(site_name=site.name, seed=seed).fit(
                    [page.root for page in site.pages], supervisor
                )
            except ValueError:
                continue  # no overlap with the KG: skip the site
            sites_trained += 1
            for page in site.pages:
                extracted = extractor.extract_triples(page.root)
                # Disambiguate the topic once per page, using everything
                # extracted from the page as context (homonym titles are
                # common; Sec. 2.2's "entity disambiguation").
                page_context = {
                    attributed.triple.predicate: attributed.triple.object
                    for attributed in extracted
                }
                for attributed in extracted:
                    topic_entities = graph.find_by_name(attributed.triple.subject)
                    if not topic_entities:
                        continue
                    subject_id = disambiguator.resolve(
                        attributed.triple.subject, context=page_context
                    )
                    if subject_id is None:
                        subject_id = topic_entities[0].entity_id
                    value = attributed.triple.object
                    # Literal normalization: numeric strings to ints.
                    if isinstance(value, str) and value.isdigit():
                        value = int(value)
                    triple = Triple(subject_id, attributed.triple.predicate, value)
                    if triple not in graph:
                        graph.add_triple(triple, provenance=attributed.provenance)
                        added += 1
        context.metrics["extract.sites_trained"] = float(sites_trained)
        context.metrics["extract.triples_added"] = float(added)
        context.metrics["extract.final_triples"] = float(len(graph))

    return stage


def evaluate_entity_kg_accuracy(context: PipelineContext) -> float:
    """Fraction of literal KG triples matching the ground-truth world."""
    world: World = context.require("world")
    graph: KnowledgeGraph = context.require("kg")
    world_of: Dict[str, str] = context.require("world_of")
    correct = total = 0
    for triple in graph.triples():
        if isinstance(triple.object, str) and graph.has_entity(triple.object):
            continue
        world_id = world_of.get(triple.subject)
        if world_id is None:
            continue
        truth = world.truth.objects(world_id, triple.predicate)
        if not truth:
            continue
        total += 1
        if any(str(value).lower() == str(triple.object).lower() for value in truth):
            correct += 1
    return correct / total if total else 0.0


# ----------------------------------------------------------------------
# Fig. 4(b)


def build_text_rich_kg(
    domain: ProductDomain,
    behavior: Optional[BehaviorLog] = None,
    n_epochs: int = 5,
    seed: int = 0,
) -> PipelineContext:
    """Run the Fig. 4(b) architecture over a product domain."""
    pipeline = ConstructionPipeline("text_rich_fig4b")
    context = PipelineContext()
    context.artifacts["domain"] = domain
    context.artifacts["behavior"] = behavior

    def stage_autoknow(ctx: PipelineContext) -> None:
        autoknow = AutoKnow(n_epochs=n_epochs, seed=seed)
        report = autoknow.run(ctx.require("domain"), behavior=ctx.artifacts.get("behavior"))
        ctx.artifacts["kg"] = autoknow.kg_
        ctx.artifacts["report"] = report
        ctx.metrics["autoknow.catalog_triples"] = float(report.n_catalog_triples)
        ctx.metrics["autoknow.final_triples"] = float(report.n_final_triples)
        ctx.metrics["autoknow.types_covered"] = float(report.n_types_covered)
        ctx.metrics["autoknow.taxonomy_edges_added"] = float(report.n_taxonomy_edges_added)
        ctx.metrics["autoknow.final_accuracy"] = report.final_accuracy

    pipeline.add_function("autoknow", stage_autoknow)
    result = pipeline.run(context)
    result.artifacts["pipeline"] = pipeline
    return result
