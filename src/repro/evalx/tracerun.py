"""In-process traced experiment runs backing ``repro trace <EXPERIMENT_ID>``.

``repro run`` shells out to pytest for benchmark-grade numbers; tracing
needs the opposite — the experiment's workload executed *in this process*
with observability enabled so spans and metrics land on the global tracer
and registry.  This module maps experiment ids to compact in-process
workloads (scaled-down versions of the corresponding benchmark, sized to
finish in seconds) and runs them under a root span.

The result carries everything the CLI writes out: the finished spans (one
JSONL object each), the metrics-registry snapshot, and aggregate per-span
rows for the summary table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs import profiling
from repro.obs import quality as obs_quality
from repro.obs.lineage import get_ledger
from repro.obs.metrics import get_registry
from repro.obs.slo import get_slo_tracker
from repro.obs.tracing import get_tracer, span


@dataclass
class TraceResult:
    """Everything a traced experiment run produced."""

    experiment_id: str
    spans: List[Dict[str, object]] = field(default_factory=list)
    snapshot: Dict[str, Dict[str, object]] = field(default_factory=dict)
    quality: List[Dict[str, object]] = field(default_factory=list)
    lineage: List[Dict[str, object]] = field(default_factory=list)
    slo: Dict[str, object] = field(default_factory=dict)

    def span_summary_rows(self) -> List[List[object]]:
        """Aggregate rows (name, calls, wall total/mean, cpu total) by span name."""
        totals: Dict[str, Dict[str, float]] = {}
        order: List[str] = []
        for record in self.spans:
            name = str(record["name"])
            if name not in totals:
                totals[name] = {"calls": 0, "wall": 0.0, "cpu": 0.0}
                order.append(name)
            totals[name]["calls"] += 1
            totals[name]["wall"] += float(record["wall_seconds"])
            totals[name]["cpu"] += float(record["cpu_seconds"])
        rows = []
        for name in sorted(order, key=lambda n: -totals[n]["wall"]):
            entry = totals[name]
            rows.append(
                [
                    name,
                    int(entry["calls"]),
                    round(entry["wall"], 4),
                    round(entry["wall"] / entry["calls"], 4),
                    round(entry["cpu"], 4),
                ]
            )
        return rows


# ---------------------------------------------------------------------------
# Workloads: compact in-process versions of the benchmarks.


def _small_world():
    from repro.datagen.world import WorldConfig, build_world

    return build_world(WorldConfig(n_people=120, n_movies=80, n_songs=40, seed=7))


def _small_domain():
    from repro.datagen.products import ProductDomainConfig, build_product_domain

    return build_product_domain(ProductDomainConfig(n_products=120, seed=13))


def _small_behavior(domain):
    from repro.datagen.behavior import generate_behavior

    return generate_behavior(
        domain,
        n_search_sessions=400,
        n_coview_sessions=150,
        n_copurchase_sessions=120,
        seed=17,
    )


def _workload_fig2() -> None:
    """Entity linkage: build the task, train the forest, predict."""
    import numpy as np

    from repro.datagen.sources import default_source_pair
    from repro.integrate.linkage import EntityLinker, build_linkage_task
    from repro.integrate.schema_alignment import oracle_alignment

    world = _small_world()
    left, right = default_source_pair(world, seed=11)
    task = build_linkage_task(
        left, right, "Movie", oracle_alignment(left), oracle_alignment(right)
    )
    rng = np.random.default_rng(0)
    budget = min(300, len(task.pairs))
    chosen = rng.choice(len(task.pairs), size=budget, replace=False)
    labels = [task.oracle(int(index)) for index in chosen]
    linker = EntityLinker(n_estimators=15, seed=0).fit(task.features[chosen], labels)
    linker.predict(task.features, pairs=task.pairs)


def _workload_fig4() -> None:
    """Both Fig. 4 architectures end-to-end (scaled down)."""
    _workload_fig4a()
    _workload_fig4b()


def _workload_fig4a() -> None:
    """The Fig. 4(a) entity-based architecture only."""
    from repro.evalx.architectures import build_entity_based_kg

    build_entity_based_kg(_small_world(), label_budget=200, n_sites=2, pages_per_site=10)


def _workload_fig4b() -> None:
    """The Fig. 4(b) text-rich (AutoKnow-style) architecture only."""
    from repro.evalx.architectures import build_text_rich_kg

    domain = _small_domain()
    build_text_rich_kg(domain, _small_behavior(domain), n_epochs=2)


def _workload_fig5() -> None:
    """Production vs automated extraction pipelines on one product type."""
    from repro.products.pipelines import AutomatedPipeline, ProductionPipeline

    domain = _small_domain()
    attributes = ("flavor", "roast", "caffeine", "size")
    ProductionPipeline(attributes=attributes, seed=2).run(domain, "Coffee")
    AutomatedPipeline(attributes=attributes, seed=2).run(domain, "Coffee")


def _workload_autoknow() -> None:
    """The self-driving AutoKnow collection pipeline."""
    from repro.products.autoknow import AutoKnow

    domain = _small_domain()
    AutoKnow(n_epochs=2, seed=0).run(domain, behavior=_small_behavior(domain))


def _workload_web_fusion() -> None:
    """Wrapper + Ceres extraction over a web corpus, graphically fused."""
    from repro.datagen.web import generate_web_corpus
    from repro.extract.distant import CeresExtractor, DistantSupervisor, SeedKnowledge
    from repro.extract.wrapper import WrapperInducer, annotate_by_truth
    from repro.fuse.graphical import ExtractionObservation, GraphicalFusion

    world = _small_world()
    sites = generate_web_corpus(world, n_sites=2, pages_per_site=10, seed=100)
    observations = []
    for site in sites:
        # Wrapper induction from a couple of annotated pages.
        annotated = []
        for page in site.pages[:3]:
            annotations = annotate_by_truth(page.root, page.closed_truth)
            if annotations:
                annotated.append((page.root, annotations))
        if annotated:
            wrapper = WrapperInducer(site_name=site.name).induce(annotated)
            for page in site.pages:
                for attribute, value in wrapper.extract(page.root).items():
                    observations.append(
                        ExtractionObservation(
                            subject=page.topic_name,
                            attribute=attribute,
                            value=value,
                            source=site.name,
                            extractor="wrapper",
                        )
                    )
        # Distantly supervised Ceres over the same pages.
        seed_kg = SeedKnowledge()
        for page in site.pages[:5]:
            seed_kg.facts[page.topic_name.lower()] = dict(page.closed_truth)
        try:
            extractor = CeresExtractor(site_name=site.name).fit(
                [page.root for page in site.pages], DistantSupervisor(seed_kg)
            )
        except ValueError:
            continue
        for page in site.pages:
            for attribute, (value, _confidence) in extractor.extract(page.root).items():
                observations.append(
                    ExtractionObservation(
                        subject=page.topic_name,
                        attribute=attribute,
                        value=value,
                        source=site.name,
                        extractor="ceres",
                    )
                )
    GraphicalFusion(n_iterations=6).fuse(observations)


def _workload_serve() -> None:
    """Online serving: publish a snapshot, drive the four routes under load.

    A small token bucket plus a replayed request plan makes all the
    serving signals appear in one compact run: per-route latency spans,
    cache hits on the repeat pass, and LM-shed/stale degradations once
    the bucket drains — so ``repro report T-SERVE`` shows the ladder.
    """
    from repro.evalx.loadgen import build_request_plan
    from repro.serve.admission import AdmissionController
    from repro.serve.server import InProcessClient
    from repro.serve.service import build_fixture_service

    admission = AdmissionController(rate=150.0, burst=60.0, max_concurrent=8)
    service = build_fixture_service(
        "WORLD", n_shards=2, scale="quick", admission=admission
    )
    # Keep every request's span tree: a traced run exists to be looked
    # at, so the production 1% head-sample would defeat the point.
    service.trace_sample = 1.0
    client = InProcessClient(service)
    plan = build_request_plan(service.entity_sample(), n_requests=150, seed=31)
    for planned in plan * 2:  # the repeat pass exercises the read-through cache
        getattr(client, planned.route)(**planned.kwargs)
    service.stats()  # records the final cache hit ratio gauge


def _workload_obs() -> None:
    """The observability layer itself: traced serving plus the live surfaces.

    Drives the four routes through a degrading service with full trace
    sampling, then exercises everything ``/statusz`` and ``/metrics``
    serve — the SLO summary (burn rates flip once the small bucket
    drains) and the Prometheus render — so the report shows the whole
    request-scoped pipeline end to end.
    """
    from repro.evalx.loadgen import build_request_plan
    from repro.obs.export import render_prometheus
    from repro.serve.admission import AdmissionController
    from repro.serve.server import InProcessClient
    from repro.serve.service import build_fixture_service

    admission = AdmissionController(rate=120.0, burst=40.0, max_concurrent=8)
    service = build_fixture_service(
        "WORLD", n_shards=2, scale="quick", admission=admission
    )
    service.trace_sample = 1.0
    client = InProcessClient(service)
    plan = build_request_plan(service.entity_sample(), n_requests=150, seed=33)
    for planned in plan:
        getattr(client, planned.route)(**planned.kwargs)
    service.statusz()
    render_prometheus()


#: Experiment id -> in-process workload.  ``repro trace`` accepts these ids.
TRACE_WORKLOADS: Dict[str, Callable[[], None]] = {
    "FIG2": _workload_fig2,
    "FIG4": _workload_fig4,
    "FIG4A": _workload_fig4a,
    "FIG4B": _workload_fig4b,
    "FIG5": _workload_fig5,
    "T-AUTOKNOW": _workload_autoknow,
    "T-GROWTH": _workload_fig4,
    "T-OBS": _workload_obs,
    "T-SERVE": _workload_serve,
    "T-WEB": _workload_web_fusion,
}


def run_trace(
    experiment_id: str,
    workload: Optional[Callable[[], None]] = None,
    progress_log: Optional[str] = None,
    progress_tty: bool = False,
) -> TraceResult:
    """Run one experiment's workload with observability on; collect the trace.

    All global observability state (tracer, registry, lineage ledger, and
    quality snapshots) is reset before the run and the previous
    enabled-state is restored afterwards, so tracing one experiment never
    contaminates another run in the same process.  ``progress_log`` /
    ``progress_tty`` attach the live build-progress heartbeat (a JSONL
    file / a stderr line) for the duration of the run; they must be wired
    here because the pre-run reset detaches any earlier configuration.
    """
    experiment_id = experiment_id.upper()
    if workload is None:
        workload = TRACE_WORKLOADS.get(experiment_id)
    if workload is None:
        raise KeyError(
            f"no trace workload for experiment {experiment_id!r}; "
            f"traceable ids: {', '.join(sorted(TRACE_WORKLOADS))}"
        )
    previous_enabled = profiling.enabled()
    tracer = get_tracer()
    registry = get_registry()
    profiling.reset_all()
    watching_progress = progress_log is not None or progress_tty
    if watching_progress:
        from repro.obs import progress as obs_progress

        obs_progress.configure(log_path=progress_log, to_tty=progress_tty)
    profiling.enable()
    try:
        with span(f"experiment.{experiment_id}", experiment=experiment_id):
            workload()
        slo_summary = get_slo_tracker().summary(registry)
        served_any = any(
            block.get("requests", 0)
            for block in slo_summary.get("routes", {}).values()  # type: ignore[union-attr]
        )
        return TraceResult(
            experiment_id=experiment_id,
            spans=[finished.to_dict() for finished in tracer.spans()],
            snapshot=registry.snapshot(),
            quality=[snapshot.to_dict() for snapshot in obs_quality.snapshots()],
            lineage=[chain.to_dict() for chain in get_ledger().sample_chains(5)],
            slo=slo_summary if served_any else {},
        )
    finally:
        if watching_progress:
            obs_progress.get_progress().close()
        if not previous_enabled:
            profiling.disable()
