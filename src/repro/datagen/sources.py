"""Derived structured sources — the knowledge-integration workload.

"Each of these sources organizes its data in a different way" (Sec. 2.2).
A :class:`StructuredSource` is a view of the ground-truth world with three
kinds of heterogeneity injected, matching the taxonomy in the paper:

* **schema heterogeneity** — a per-source field-name map, optionally
  splitting ``name`` into ``first_name``/``last_name``;
* **entity heterogeneity** — popularity-dependent coverage plus surface-form
  variation of names (initials, reordering, typos, case);
* **value heterogeneity** — numeric jitter, stale values, and missing
  fields.

Each record secretly remembers the world entity it derives from
(``world_id``), which is how oracle labels for Fig. 2 are produced without
human annotators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen import names
from repro.datagen.world import World


@dataclass(frozen=True)
class SourceConfig:
    """Heterogeneity knobs for one derived source."""

    name: str
    entity_classes: Tuple[str, ...] = ("Movie", "Person")
    coverage_base: float = 0.95
    coverage_floor: float = 0.25
    split_person_name: bool = False
    field_map: Optional[Dict[str, str]] = None
    name_variation_rate: float = 0.3
    value_noise_rate: float = 0.1
    missing_rate: float = 0.1
    seed: int = 0


@dataclass
class SourceRecord:
    """One row of a structured source.

    ``world_id`` is hidden ground truth used only by oracles/evaluation —
    a real pipeline never reads it.
    """

    record_id: str
    source: str
    entity_class: str
    fields: Dict[str, object]
    world_id: str

    def get(self, field_name: str, default=None):
        """Field accessor mirroring dict semantics."""
        return self.fields.get(field_name, default)


@dataclass
class StructuredSource:
    """A bag of records sharing one source schema."""

    name: str
    records: List[SourceRecord] = field(default_factory=list)
    field_map: Dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.records)

    def by_class(self, entity_class: str) -> List[SourceRecord]:
        """Records of one entity class."""
        return [record for record in self.records if record.entity_class == entity_class]

    def canonical_field(self, source_field: str) -> Optional[str]:
        """Reverse-map a source field name to the canonical attribute."""
        for canonical, mapped in self.field_map.items():
            if mapped == source_field:
                return canonical
        return None

    def field_names(self) -> List[str]:
        """All field names appearing in any record."""
        seen = set()
        for record in self.records:
            seen.update(record.fields)
        return sorted(seen)


_CANONICAL_FIELDS = {
    "Person": ("name", "birth_year", "birth_place"),
    "Movie": ("name", "release_year", "genre", "runtime", "directed_by"),
    "Song": ("name", "genre", "performed_by"),
}


def derive_source(world: World, config: SourceConfig) -> StructuredSource:
    """Materialize a noisy structured source from the ground-truth world."""
    rng = np.random.default_rng(config.seed)
    field_map = dict(config.field_map or {})
    source = StructuredSource(name=config.name, field_map=field_map)
    counter = 0
    for entity_class in config.entity_classes:
        for entity in world.truth.entities(entity_class):
            coverage = world.popularity.coverage_probability(
                entity.entity_id, base=config.coverage_base, floor=config.coverage_floor
            )
            if rng.random() > coverage:
                continue
            canonical = world.record_for(entity.entity_id)
            fields = _render_fields(canonical, entity_class, config, field_map, rng)
            counter += 1
            source.records.append(
                SourceRecord(
                    record_id=f"{config.name}:{counter:06d}",
                    source=config.name,
                    entity_class=entity_class,
                    fields=fields,
                    world_id=entity.entity_id,
                )
            )
    return source


def _render_fields(
    canonical: Dict[str, object],
    entity_class: str,
    config: SourceConfig,
    field_map: Dict[str, str],
    rng: np.random.Generator,
) -> Dict[str, object]:
    fields: Dict[str, object] = {}
    for attribute in _CANONICAL_FIELDS.get(entity_class, ()):
        value = canonical.get(attribute)
        if value is None:
            continue
        if attribute != "name" and rng.random() < config.missing_rate:
            continue
        if attribute == "name":
            value = _vary_name(str(value), config, rng)
            if entity_class == "Person" and config.split_person_name:
                parts = str(value).replace(",", "").split()
                fields[field_map.setdefault("first_name", "first_name")] = parts[0]
                fields[field_map.setdefault("last_name", "last_name")] = (
                    " ".join(parts[1:]) if len(parts) > 1 else parts[0]
                )
                continue
        else:
            value = _noise_value(value, config, rng)
        target_field = field_map.setdefault(attribute, attribute)
        fields[target_field] = value
    return fields


def _vary_name(name: str, config: SourceConfig, rng: np.random.Generator) -> str:
    if rng.random() < config.name_variation_rate:
        return names.name_variant(rng, name)
    return name


def _noise_value(value, config: SourceConfig, rng: np.random.Generator):
    if rng.random() >= config.value_noise_rate:
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        jitter = int(rng.integers(1, 4)) * (1 if rng.random() < 0.5 else -1)
        return type(value)(value + jitter)
    if isinstance(value, list):
        if len(value) > 1 and rng.random() < 0.5:
            drop = int(rng.integers(0, len(value)))
            return [item for index, item in enumerate(value) if index != drop]
        return value
    if isinstance(value, str):
        return names.typo(rng, value)
    return value


def default_source_pair(world: World, seed: int = 11) -> Tuple[StructuredSource, StructuredSource]:
    """The Fig. 2 workload: a Freebase-like and an IMDb-like source.

    Both cover movies and people; the IMDb-like source splits person names,
    renames fields, covers deeper into the tail, and is noisier.
    """
    freebase_like = derive_source(
        world,
        SourceConfig(
            name="freebase",
            entity_classes=("Movie", "Person"),
            coverage_base=0.98,
            coverage_floor=0.45,
            name_variation_rate=0.15,
            value_noise_rate=0.05,
            missing_rate=0.05,
            seed=seed,
        ),
    )
    imdb_like = derive_source(
        world,
        SourceConfig(
            name="imdb",
            entity_classes=("Movie", "Person"),
            coverage_base=0.95,
            coverage_floor=0.6,
            split_person_name=True,
            field_map={
                "name": "title",
                "release_year": "year",
                "directed_by": "director",
                "runtime": "length_minutes",
                "birth_year": "born",
                "birth_place": "origin",
            },
            name_variation_rate=0.35,
            value_noise_rate=0.12,
            missing_rate=0.12,
            seed=seed + 1,
        ),
    )
    return freebase_like, imdb_like


def true_match(left: SourceRecord, right: SourceRecord) -> bool:
    """Oracle: do two records describe the same world entity?"""
    return left.world_id == right.world_id


def conflicting_sources(
    world: World,
    n_sources: int = 5,
    base_accuracy: Sequence[float] = (0.98, 0.95, 0.9, 0.8, 0.65),
    seed: int = 23,
) -> List[StructuredSource]:
    """Sources of graded reliability for data-fusion experiments (Sec. 2.2/2.4).

    ``base_accuracy[i]`` is the probability source ``i`` reports a correct
    value for any field; errors are sampled independently, which is the
    single-truth / independent-errors regime classic fusion assumes.
    """
    sources = []
    for index in range(n_sources):
        accuracy = base_accuracy[index % len(base_accuracy)]
        noise_rate = 1.0 - accuracy
        sources.append(
            derive_source(
                world,
                SourceConfig(
                    name=f"src{index}",
                    entity_classes=("Movie", "Person"),
                    coverage_base=0.9,
                    coverage_floor=0.5,
                    name_variation_rate=0.0,
                    value_noise_rate=noise_rate,
                    missing_rate=0.05,
                    seed=seed + index,
                ),
            )
        )
    return sources
