"""The synthetic product domain — the Sec. 3 (text-rich KG) workload.

Reproduces the properties the paper says make products hard:

* a deep taxonomy with *overlapping* types ("fashion swimwear vs two-piece
  swimwear") — here, leaf types under multiple departments share vocabulary;
* fuzzy, overlapping attribute values ("mocha vs cappuccino as flavors");
* non-named topic entities with long, verbose titles that concatenate type
  and attributes;
* a noisy catalog ("Catalog data could be noisy") usable for distant
  supervision but not as gold truth;
* ambiguous surface forms whose attribute depends on product type
  ("vanilla" is a *flavor* for coffee but a *scent* for shampoo) — the
  signal that makes type-aware models (TXtract) win;
* an image channel carrying values the text omits — the PAM signal.

Every product records its true attribute values, its noisy catalog values,
its profile text with gold token spans, and its image tokens, so all of the
Sec. 3 extraction/cleaning techniques can be trained and scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.ontology import Ontology

# ----------------------------------------------------------------------
# domain specification

#: department -> type -> leaf subtypes
TAXONOMY_SPEC: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "Grocery": {
        "Coffee": ("Ground Coffee", "Whole Bean Coffee", "Instant Coffee"),
        "Tea": ("Green Tea", "Black Tea", "Herbal Tea"),
        "Snacks": ("Chips", "Cookies", "Granola Bars"),
        "Ice Cream": ("Dairy Ice Cream", "Sorbet", "Frozen Yogurt"),
    },
    "Beauty": {
        "Shampoo": ("Moisturizing Shampoo", "Volumizing Shampoo"),
        "Lotion": ("Body Lotion", "Face Lotion"),
        "Lipstick": ("Matte Lipstick", "Gloss Lipstick"),
    },
    "Electronics": {
        "Headphones": ("Over-Ear Headphones", "In-Ear Headphones"),
        "Speakers": ("Bluetooth Speakers", "Bookshelf Speakers"),
    },
    "Home": {
        "Candles": ("Scented Candles", "Pillar Candles"),
        "Mugs": ("Ceramic Mugs", "Travel Mugs"),
    },
}

#: type -> attribute -> value vocabulary.  Note deliberate cross-type
#: ambiguity: "vanilla"/"caramel" appear as Coffee/Ice-Cream *flavor* and as
#: Shampoo/Candle *scent*; "light"/"dark" are Coffee *roast* and
#: Headphones/Mugs *color* tokens.
ATTRIBUTE_SPEC: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "Coffee": {
        "flavor": ("mocha", "hazelnut", "vanilla", "caramel", "cinnamon"),
        "roast": ("light roast", "medium roast", "dark roast"),
        "caffeine": ("caffeinated", "decaf"),
        "size": ("12 oz", "16 oz", "32 oz"),
    },
    "Tea": {
        "flavor": ("jasmine", "mint", "lemon", "chamomile", "vanilla"),
        "form": ("loose leaf", "tea bags"),
        "caffeine": ("caffeinated", "decaf"),
        "size": ("20 count", "50 count"),
    },
    "Snacks": {
        "flavor": ("bbq", "sour cream", "chocolate chip", "sea salt", "honey"),
        "dietary": ("gluten-free", "sugar-free", "vegan"),
        "size": ("6 oz", "10 oz"),
    },
    "Ice Cream": {
        "flavor": ("vanilla", "chocolate", "strawberry", "mocha", "caramel"),
        "dietary": ("sugar-free", "dairy-free"),
        "size": ("1 pint", "1 quart"),
    },
    "Shampoo": {
        "scent": ("lavender", "coconut", "vanilla", "eucalyptus", "citrus"),
        "hair_type": ("curly hair", "fine hair", "oily hair"),
        "size": ("8 fl oz", "16 fl oz"),
    },
    "Lotion": {
        "scent": ("lavender", "shea", "citrus", "unscented"),
        "skin_type": ("dry skin", "sensitive skin"),
        "size": ("8 fl oz", "12 fl oz"),
    },
    "Lipstick": {
        "color": ("ruby red", "coral", "nude", "plum"),
        "finish": ("matte", "glossy", "satin"),
    },
    "Headphones": {
        "color": ("black", "white", "light gray", "navy"),
        "connectivity": ("wireless", "wired"),
        "battery": ("20 hours", "40 hours"),
    },
    "Speakers": {
        "color": ("black", "walnut", "white"),
        "connectivity": ("bluetooth", "wired"),
    },
    "Candles": {
        "scent": ("vanilla", "sandalwood", "pine", "caramel"),
        "burn_time": ("40 hours", "60 hours"),
    },
    "Mugs": {
        "color": ("dark blue", "white", "light green"),
        "capacity": ("12 oz", "16 oz"),
    },
}

#: Hard consistency rules for knowledge cleaning: (type, attribute, value)
#: combinations that cannot be true — "spicy is unlikely to be the flavor of
#: icecreams" (Sec. 3.2).
FORBIDDEN_VALUES: Tuple[Tuple[str, str, str], ...] = (
    ("Ice Cream", "flavor", "bbq"),
    ("Ice Cream", "flavor", "sour cream"),
    ("Coffee", "flavor", "bbq"),
    ("Tea", "flavor", "bbq"),
    ("Shampoo", "scent", "bbq"),
)

#: Mutually-exclusive value pairs within one product — "snack with sugar in
#: the ingredient is unlikely to be sugar-free".
CONTRADICTIONS: Tuple[Tuple[Tuple[str, str], Tuple[str, str]], ...] = (
    (("dietary", "sugar-free"), ("flavor", "chocolate chip")),
    (("dietary", "sugar-free"), ("flavor", "honey")),
    (("caffeine", "decaf"), ("flavor", "mocha")),
)

#: Complementary type pairs for substitutes/complements mining (Sec. 3.1).
COMPLEMENT_TYPES: Tuple[Tuple[str, str], ...] = (
    ("Coffee", "Mugs"),
    ("Tea", "Mugs"),
    ("Headphones", "Speakers"),
    ("Candles", "Lotion"),
)

BRANDS: Tuple[str, ...] = (
    "Onus", "Verdant", "Peakline", "Hearthway", "Solstice", "Brio",
    "Marlowe", "Tundra", "Cascade", "Juniper", "Ember", "Atlas",
)

_TITLE_FILLERS: Tuple[str, ...] = (
    "premium", "classic", "artisan", "everyday", "signature", "deluxe",
)

#: Bullet templates.  Attributes that share vocabulary across types
#: deliberately share *templates* too (flavor/scent both use "notes of
#: {value}"; roast/color both use "a {value} you will love"), so local
#: context alone cannot disambiguate — exactly the ambiguity TXtract's type
#: conditioning is meant to resolve (Sec. 3.3).
_SENSORY_TEMPLATES: Tuple[str, ...] = (
    "notes of {value} in every detail",
    "a hint of {value} throughout",
    "classic {value} character",
)
_APPEARANCE_TEMPLATES: Tuple[str, ...] = (
    "a {value} you will love",
    "crafted with {value} in mind",
)
_BULLET_TEMPLATES: Dict[str, Tuple[str, ...]] = {
    "flavor": _SENSORY_TEMPLATES,
    "scent": _SENSORY_TEMPLATES,
    "roast": _APPEARANCE_TEMPLATES,
    "color": _APPEARANCE_TEMPLATES,
    "caffeine": ("fully {value} blend", "a {value} option for any time"),
    "size": ("generous {value} package", "comes in a {value} size"),
    "form": ("packed as {value}", "convenient {value} format"),
    "dietary": ("certified {value} recipe", "proudly {value}"),
    "hair_type": ("formulated for {value}", "ideal for {value}"),
    "skin_type": ("gentle on {value}", "made for {value}"),
    "finish": ("smooth {value} finish", "long-lasting {value} look"),
    "connectivity": ("easy {value} setup", "reliable {value} connection"),
    "battery": ("up to {value} of playtime", "long {value} battery life"),
    "burn_time": ("burns for {value}", "up to {value} burn time"),
    "capacity": ("holds {value}", "roomy {value} capacity"),
}

#: Distractor bullet templates: they mention a *value-looking* phrase in a
#: non-assertive context ("pairs well with caramel desserts" does not mean
#: the product's flavor is caramel).  These are unlabeled, creating the
#: false-positive pressure that keeps raw NER quality in the 85-95% band
#: the paper reports (Sec. 3.2).
_DISTRACTOR_TEMPLATES: Tuple[str, ...] = (
    "pairs well with {value} desserts",
    "inspired by {value} classics",
    "a gift for {value} lovers",
)


# ----------------------------------------------------------------------
# records

@dataclass(frozen=True)
class LabeledText:
    """Tokenized text with gold attribute spans ``(start, end, attribute)``."""

    tokens: Tuple[str, ...]
    spans: Tuple[Tuple[int, int, str], ...]


@dataclass
class ProductRecord:
    """One product with every layer of ground truth and noise."""

    product_id: str
    leaf_type: str
    product_type: str
    department: str
    title: LabeledText
    bullets: List[LabeledText]
    true_values: Dict[str, str]
    catalog_values: Dict[str, str]
    image_tokens: List[str]

    @property
    def title_text(self) -> str:
        """The title as a plain string."""
        return " ".join(self.title.tokens)

    def all_texts(self) -> List[LabeledText]:
        """Title plus bullets — the 'product profile' of Sec. 3.1."""
        return [self.title] + list(self.bullets)


@dataclass(frozen=True)
class ProductDomainConfig:
    """Sizes and noise rates of the product domain."""

    n_products: int = 400
    seed: int = 21
    catalog_missing_rate: float = 0.3
    catalog_error_rate: float = 0.1
    text_mention_rate: float = 0.85
    distractor_rate: float = 0.45
    partial_mention_rate: float = 0.15
    title_typo_rate: float = 0.05
    image_mention_rate: float = 0.6
    image_distractor_count: int = 3


@dataclass
class ProductDomain:
    """The full generated domain: taxonomy + products."""

    taxonomy: Ontology
    products: List[ProductRecord]
    config: ProductDomainConfig

    def by_type(self, product_type: str) -> List[ProductRecord]:
        """Products whose (non-leaf) type matches."""
        return [product for product in self.products if product.product_type == product_type]

    def types(self) -> List[str]:
        """All non-leaf product types present."""
        return sorted({product.product_type for product in self.products})

    def attributes(self) -> List[str]:
        """All attributes used anywhere in the domain."""
        attributes = set()
        for spec in ATTRIBUTE_SPEC.values():
            attributes.update(spec)
        return sorted(attributes)

    def attribute_values(self, attribute: str) -> List[str]:
        """The union vocabulary of an attribute across types."""
        values = set()
        for spec in ATTRIBUTE_SPEC.values():
            values.update(spec.get(attribute, ()))
        return sorted(values)


def build_taxonomy() -> Ontology:
    """The deep product taxonomy of Fig. 1(b)."""
    taxonomy = Ontology(name="product_taxonomy")
    taxonomy.add_class("Product")
    for department, types in TAXONOMY_SPEC.items():
        taxonomy.add_class(department, parent="Product")
        for product_type, leaves in types.items():
            taxonomy.add_class(product_type, parent=department)
            for leaf in leaves:
                taxonomy.add_class(leaf, parent=product_type)
    return taxonomy


def build_product_domain(config: Optional[ProductDomainConfig] = None) -> ProductDomain:
    """Generate the deterministic product domain."""
    config = config or ProductDomainConfig()
    rng = np.random.default_rng(config.seed)
    taxonomy = build_taxonomy()
    leaf_index: List[Tuple[str, str, str]] = []  # (department, type, leaf)
    for department, types in TAXONOMY_SPEC.items():
        for product_type, leaves in types.items():
            for leaf in leaves:
                leaf_index.append((department, product_type, leaf))
    products: List[ProductRecord] = []
    for index in range(config.n_products):
        department, product_type, leaf = leaf_index[int(rng.integers(0, len(leaf_index)))]
        products.append(_generate_product(index, department, product_type, leaf, config, rng))
    return ProductDomain(taxonomy=taxonomy, products=products, config=config)


def _sample_true_values(
    product_type: str, rng: np.random.Generator, style_strength: float = 0.75
) -> Dict[str, str]:
    """Sample a coherent attribute assignment for one product.

    A latent *style* correlates attributes (premium lines pair dark roasts
    with mocha, budget lines pair light roasts with vanilla, ...), the
    structure real catalogs have and the reason value imputation from
    attribute co-occurrence works at all.
    """
    style = int(rng.integers(0, 2))
    values: Dict[str, str] = {}
    for attribute, vocabulary in ATTRIBUTE_SPEC[product_type].items():
        allowed = [
            value
            for value in vocabulary
            if (product_type, attribute, value) not in FORBIDDEN_VALUES
        ]
        if len(allowed) > 1 and rng.random() < style_strength:
            half = max(1, len(allowed) // 2)
            pool = allowed[:half] if style == 0 else allowed[half:]
        else:
            pool = allowed
        values[attribute] = pool[int(rng.integers(0, len(pool)))]
    # Enforce contradiction-free truth: replace the second member with a
    # value that conflicts with nothing currently assigned (a replacement
    # drawn naively could itself trigger a different contradiction).
    for (attr_a, value_a), (attr_b, value_b) in CONTRADICTIONS:
        if values.get(attr_a) == value_a and values.get(attr_b) == value_b:
            blocked = {value_b}
            for (other_a, other_va), (other_b, other_vb) in CONTRADICTIONS:
                if other_b == attr_b and values.get(other_a) == other_va:
                    blocked.add(other_vb)
                if other_a == attr_b and values.get(other_b) == other_vb:
                    blocked.add(other_va)
            vocabulary = [
                value
                for value in ATTRIBUTE_SPEC[product_type][attr_b]
                if value not in blocked
            ]
            if vocabulary:
                values[attr_b] = vocabulary[int(rng.integers(0, len(vocabulary)))]
    return values


def _labeled_segments(segments: List[Tuple[str, Optional[str]]]) -> LabeledText:
    """Assemble token/span structure from (text, attribute-or-None) pieces."""
    tokens: List[str] = []
    spans: List[Tuple[int, int, str]] = []
    for text, attribute in segments:
        piece_tokens = text.split()
        if not piece_tokens:
            continue
        start = len(tokens)
        tokens.extend(piece_tokens)
        if attribute is not None:
            spans.append((start, len(tokens), attribute))
    return LabeledText(tokens=tuple(tokens), spans=tuple(spans))


def _mention_form(
    value: str, config: ProductDomainConfig, rng: np.random.Generator
) -> str:
    """The surface form a value takes in text.

    Multi-word values are occasionally mentioned by their head word only
    ("dark" for "dark roast") — a classic source of boundary/normalization
    errors that pipeline post-processing has to repair (Sec. 3.2).
    """
    words = value.split()
    if len(words) > 1 and rng.random() < config.partial_mention_rate:
        return words[0]
    return value


def _maybe_typo(
    token: str, config: ProductDomainConfig, rng: np.random.Generator
) -> str:
    if len(token) > 3 and rng.random() < config.title_typo_rate:
        position = int(rng.integers(1, len(token) - 1))
        return token[:position] + token[position + 1 :]
    return token


def _generate_product(
    index: int,
    department: str,
    product_type: str,
    leaf: str,
    config: ProductDomainConfig,
    rng: np.random.Generator,
) -> ProductRecord:
    true_values = _sample_true_values(product_type, rng)
    mentioned = {
        attribute: _mention_form(value, config, rng)
        for attribute, value in true_values.items()
        if rng.random() < config.text_mention_rate
    }

    # Title: "<Brand> <filler> <value segments> <leaf type>".
    brand = BRANDS[int(rng.integers(0, len(BRANDS)))]
    segments: List[Tuple[str, Optional[str]]] = [(brand, None)]
    if rng.random() < 0.5:
        segments.append((_TITLE_FILLERS[int(rng.integers(0, len(_TITLE_FILLERS)))], None))
    title_attributes = [
        attribute for attribute in sorted(mentioned) if attribute not in ("size",)
    ]
    rng.shuffle(title_attributes)
    for attribute in title_attributes[:3]:
        segments.append((_maybe_typo(mentioned[attribute], config, rng), attribute))
    segments.append((leaf, None))
    if "size" in mentioned:
        segments.append((mentioned["size"], "size"))
    title = _labeled_segments(segments)

    # Bullets: one sentence per mentioned attribute.
    bullets: List[LabeledText] = []
    for attribute in sorted(mentioned):
        templates = _BULLET_TEMPLATES.get(attribute)
        if not templates:
            continue
        template = templates[int(rng.integers(0, len(templates)))]
        before, _, after = template.partition("{value}")
        bullets.append(
            _labeled_segments(
                [(before, None), (mentioned[attribute], attribute), (after, None)]
            )
        )
    # Distractor bullet: a value-looking phrase in non-assertive context
    # (never labeled), drawn from the cross-type vocabulary of a sensory
    # attribute so it collides with real value surface forms.
    if rng.random() < config.distractor_rate:
        distractor_pool = sorted(
            {
                value
                for spec in ATTRIBUTE_SPEC.values()
                for attr in ("flavor", "scent")
                for value in spec.get(attr, ())
                if value != true_values.get("flavor") and value != true_values.get("scent")
            }
        )
        if distractor_pool:
            distractor = distractor_pool[int(rng.integers(0, len(distractor_pool)))]
            template = _DISTRACTOR_TEMPLATES[int(rng.integers(0, len(_DISTRACTOR_TEMPLATES)))]
            before, _, after = template.partition("{value}")
            bullets.append(
                _labeled_segments([(before, None), (distractor, None), (after, None)])
            )

    # Catalog: missing + wrong values (the distant-supervision noise source).
    catalog_values: Dict[str, str] = {}
    for attribute, value in true_values.items():
        if rng.random() < config.catalog_missing_rate:
            continue
        if rng.random() < config.catalog_error_rate:
            vocabulary = [
                candidate
                for candidate in ATTRIBUTE_SPEC[product_type][attribute]
                if candidate != value
            ]
            if vocabulary:
                catalog_values[attribute] = vocabulary[int(rng.integers(0, len(vocabulary)))]
                continue
        catalog_values[attribute] = value

    # Image channel: tokens derived from true values (even unmentioned ones)
    # plus distractor tokens — PAM's extra signal.
    image_tokens: List[str] = []
    for attribute, value in true_values.items():
        if rng.random() < config.image_mention_rate:
            image_tokens.append(f"img:{value.split()[0]}")
    for _ in range(config.image_distractor_count):
        image_tokens.append(f"img:bg{int(rng.integers(0, 10))}")
    rng.shuffle(image_tokens)

    return ProductRecord(
        product_id=f"B{index:06d}",
        leaf_type=leaf,
        product_type=product_type,
        department=department,
        title=title,
        bullets=bullets,
        true_values=true_values,
        catalog_values=catalog_values,
        image_tokens=image_tokens,
    )
