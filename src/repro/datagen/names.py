"""Deterministic name/text vocabularies for the synthetic world.

Kept in one module so every generator draws from the same surface-form
space; entity-name collisions (two people sharing a name) are a *feature* —
they create the disambiguation difficulty Sec. 2.2 calls out.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

FIRST_NAMES: Sequence[str] = (
    "Ava", "Ben", "Clara", "Daniel", "Elena", "Felix", "Grace", "Hugo",
    "Iris", "James", "Karen", "Liam", "Mara", "Noah", "Olive", "Peter",
    "Quinn", "Rosa", "Samuel", "Tessa", "Umar", "Vera", "Wesley", "Xenia",
    "Yusuf", "Zoe", "Arthur", "Bianca", "Carlos", "Diana", "Ethan", "Fiona",
    "Gavin", "Hanna", "Ivan", "Julia", "Kevin", "Lucia", "Marcus", "Nina",
    "Oscar", "Paula", "Ralph", "Sofia", "Tomas", "Ursula", "Victor", "Wendy",
)

LAST_NAMES: Sequence[str] = (
    "Anderson", "Brooks", "Carter", "Donovan", "Ellis", "Foster", "Garcia",
    "Hayes", "Ingram", "Jennings", "Keller", "Lawson", "Mercer", "Norton",
    "Osborne", "Porter", "Quintero", "Reyes", "Sawyer", "Thornton", "Underwood",
    "Vasquez", "Whitfield", "Xiong", "Yates", "Zimmerman", "Abbott", "Barnes",
    "Calloway", "Drummond", "Everhart", "Finch", "Granger", "Holloway",
    "Irving", "Jacobs", "Kendrick", "Lockhart", "Monroe", "Nichols",
)

MOVIE_ADJECTIVES: Sequence[str] = (
    "Silent", "Crimson", "Endless", "Hidden", "Broken", "Golden", "Frozen",
    "Burning", "Forgotten", "Midnight", "Electric", "Savage", "Gentle",
    "Hollow", "Distant", "Fading", "Rising", "Falling", "Shattered", "Velvet",
)

MOVIE_NOUNS: Sequence[str] = (
    "Horizon", "River", "Empire", "Garden", "Station", "Harbor", "Letter",
    "Shadow", "Promise", "Voyage", "Kingdom", "Mirror", "Canyon", "Orchard",
    "Lantern", "Compass", "Bridge", "Archive", "Summit", "Tide",
)

SONG_WORDS: Sequence[str] = (
    "Echoes", "Gravity", "Wildfire", "Daydream", "Thunder", "Paper", "Neon",
    "Satellite", "Monsoon", "Harvest", "Ivory", "Quicksand", "Avalanche",
    "Firefly", "Postcard", "Serenade", "Mosaic", "Vertigo", "Oasis", "Prism",
)

CITIES: Sequence[str] = (
    "Seattle", "Portland", "Austin", "Denver", "Boston", "Chicago", "Atlanta",
    "Nashville", "Phoenix", "Detroit", "Toronto", "Vancouver", "Dublin",
    "Lisbon", "Prague", "Vienna", "Oslo", "Helsinki", "Auckland", "Kyoto",
)

GENRES: Sequence[str] = (
    "drama", "comedy", "thriller", "documentary", "romance", "science fiction",
    "horror", "animation", "western", "musical",
)

MUSIC_GENRES: Sequence[str] = (
    "rock", "pop", "jazz", "folk", "electronic", "classical", "hip hop",
    "country", "blues", "soul",
)


def pick(rng: np.random.Generator, options: Sequence[str]) -> str:
    """Uniform draw from a vocabulary."""
    return options[int(rng.integers(0, len(options)))]


def person_name(rng: np.random.Generator) -> str:
    """A ``First Last`` person name; collisions happen by design."""
    return f"{pick(rng, FIRST_NAMES)} {pick(rng, LAST_NAMES)}"


def movie_title(rng: np.random.Generator) -> str:
    """A two-to-three word movie title."""
    if rng.random() < 0.3:
        return f"The {pick(rng, MOVIE_ADJECTIVES)} {pick(rng, MOVIE_NOUNS)}"
    return f"{pick(rng, MOVIE_ADJECTIVES)} {pick(rng, MOVIE_NOUNS)}"


def song_title(rng: np.random.Generator) -> str:
    """A one-to-two word song title."""
    if rng.random() < 0.4:
        return pick(rng, SONG_WORDS)
    return f"{pick(rng, SONG_WORDS)} {pick(rng, MOVIE_NOUNS)}"


def typo(rng: np.random.Generator, text: str) -> str:
    """One character-level corruption: drop, swap, or duplicate."""
    if len(text) < 3:
        return text
    position = int(rng.integers(1, len(text) - 1))
    operation = int(rng.integers(0, 3))
    if operation == 0:
        return text[:position] + text[position + 1 :]
    if operation == 1 and position + 1 < len(text):
        return text[:position] + text[position + 1] + text[position] + text[position + 2 :]
    return text[:position] + text[position] + text[position:]


def name_variant(rng: np.random.Generator, name: str) -> str:
    """A plausible alternative surface form of a person/title name.

    Used to inject entity heterogeneity: "different data sources may
    represent the same real-world entity with slightly different names"
    (Sec. 2.2).
    """
    parts = name.split()
    roll = rng.random()
    if roll < 0.25 and len(parts) >= 2:
        # Initialize the first name: "Xin Dong" -> "X. Dong".
        return f"{parts[0][0]}. {' '.join(parts[1:])}"
    if roll < 0.45 and len(parts) >= 2:
        # Last-name-first ordering.
        return f"{parts[-1]}, {' '.join(parts[:-1])}"
    if roll < 0.65:
        return typo(rng, name)
    if roll < 0.8:
        return name.lower()
    return name.upper()
