"""Synthetic data substrate.

The paper's experiments ran on proprietary assets: Freebase/IMDb dumps,
Amazon's product catalog and customer behavior logs, crawls of
semi-structured websites, and commercial LLMs.  None of those are available
offline, so this subpackage builds controlled synthetic equivalents:

* a ground-truth *world* of entities (movies, people, songs) with Zipfian
  popularity (:mod:`repro.datagen.world`, :mod:`repro.datagen.popularity`);
* *structured sources* derived from the world with schema, entity, and value
  heterogeneity dialed in (:mod:`repro.datagen.sources`) — the Fig. 2
  linkage workload;
* *semi-structured websites* rendered from templates over source records
  (:mod:`repro.datagen.web`) — the Fig. 3 extraction workload;
* a *product domain* with a deep noisy taxonomy, verbose profiles, noisy
  catalog values and an image-signal channel (:mod:`repro.datagen.products`)
  — the Sec. 3 workload;
* *customer behavior logs* (:mod:`repro.datagen.behavior`) for taxonomy
  enrichment.

Everything is deterministic given a seed; DESIGN.md records why each
substitution preserves the behavior the paper measures.
"""

from repro.datagen.popularity import PopularityModel, popularity_band
from repro.datagen.world import World, WorldConfig, build_world
from repro.datagen.sources import SourceConfig, SourceRecord, StructuredSource, derive_source
from repro.datagen.products import ProductDomain, ProductDomainConfig, ProductRecord, build_product_domain
from repro.datagen.behavior import BehaviorLog, generate_behavior
from repro.datagen.web import SemiStructuredSite, WebsiteConfig, generate_site

__all__ = [
    "PopularityModel",
    "popularity_band",
    "World",
    "WorldConfig",
    "build_world",
    "SourceConfig",
    "SourceRecord",
    "StructuredSource",
    "derive_source",
    "ProductDomain",
    "ProductDomainConfig",
    "ProductRecord",
    "build_product_domain",
    "BehaviorLog",
    "generate_behavior",
    "SemiStructuredSite",
    "WebsiteConfig",
    "generate_site",
]
