"""Verbalization of world facts into natural-language sentences.

Two consumers share these templates:

* the text-extraction channel of web-scale harvesting (Sec. 2.4 — the
  NELL / Knowledge Vault text channel), which needs sentences mentioning
  entity pairs;
* the synthetic LLM training corpus (Sec. 4), which needs fact mentions
  whose frequency follows entity popularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen.world import World

#: predicate -> sentence templates with {s} (subject) and {o} (object).
TEMPLATES: Dict[str, Tuple[str, ...]] = {
    "directed_by": (
        "{s} was directed by {o} .",
        "{o} directed the film {s} .",
        "{s} , a film by {o} , drew large audiences .",
    ),
    "stars": (
        "{s} stars {o} .",
        "{o} appeared in {s} .",
        "{o} gave a memorable performance in {s} .",
    ),
    "release_year": (
        "{s} was released in {o} .",
        "{s} premiered in {o} .",
    ),
    "genre": (
        "{s} is a {o} title .",
        "critics filed {s} under {o} .",
    ),
    "birth_place": (
        "{s} was born in {o} .",
        "{s} grew up in {o} .",
    ),
    "birth_year": (
        "{s} was born in the year {o} .",
    ),
    "performed_by": (
        "{s} is a song by {o} .",
        "{o} performed {s} .",
    ),
    "featured_in": (
        "{s} was featured in {o} .",
        "the soundtrack of {o} includes {s} .",
    ),
    "runtime": (
        "{s} runs for {o} minutes .",
    ),
}

#: Relation-free connective phrases: noise that separates entity pairs
#: without asserting a KG relation (the distant-supervision trap).
NOISE_TEMPLATES: Tuple[str, ...] = (
    "{s} was mentioned alongside {o} in the press .",
    "{s} and {o} trended on the same day .",
    "fans compared {s} with {o} .",
)


@dataclass(frozen=True)
class TextMention:
    """A sentence with its hidden ground truth."""

    sentence: str
    subject_text: str
    object_text: str
    predicate: Optional[str]  # None for noise sentences

    @property
    def is_noise(self) -> bool:
        """True when the sentence asserts no KG relation."""
        return self.predicate is None


#: Templates verbalizing taxonomy (hypernym) statements.  Type relations
#: are stated constantly and systematically in ordinary text, which is why
#: "taxonomy is what LLMs are good at capturing" (Sec. 4).
TAXONOMY_TEMPLATES: Tuple[str, ...] = (
    "{child} is a kind of {parent} .",
    "{child} , like any {parent} , sells briskly .",
    "shoppers browsing {parent} often pick {child} .",
)


def _surface(world: World, value) -> str:
    if isinstance(value, str) and world.truth.has_entity(value):
        return world.truth.entity(value).name
    return str(value)


def generate_taxonomy_corpus(
    pairs: Sequence[Tuple[str, str]],
    repetitions: int = 4,
    seed: int = 99,
) -> List[TextMention]:
    """Verbalize (child, parent) taxonomy pairs as text mentions.

    Each pair is mentioned ``repetitions`` times through varied templates —
    the abundance that makes parametric models reliable on type relations
    while individual tail facts stay scarce.
    """
    rng = np.random.default_rng(seed)
    mentions: List[TextMention] = []
    for child, parent in pairs:
        for _ in range(repetitions):
            template = TAXONOMY_TEMPLATES[int(rng.integers(0, len(TAXONOMY_TEMPLATES)))]
            mentions.append(
                TextMention(
                    sentence=template.format(child=child, parent=parent),
                    subject_text=child,
                    object_text=parent,
                    predicate="hypernym",
                )
            )
    return mentions


def generate_text_corpus(
    world: World,
    n_sentences: int = 1200,
    noise_rate: float = 0.3,
    popularity_weighted: bool = True,
    seed: int = 51,
) -> List[TextMention]:
    """Sentences verbalizing world facts, plus relation-free noise.

    With ``popularity_weighted`` the subject entity of each sentence is
    sampled by popularity — head facts get talked about much more, the key
    mechanism behind the Sec. 4 head/tail accuracy gap.
    """
    rng = np.random.default_rng(seed)
    facts: List[Tuple[str, str, object]] = [
        triple.as_tuple()
        for triple in world.truth.triples()
        if triple.predicate in TEMPLATES
    ]
    facts_by_subject: Dict[str, List[Tuple[str, str, object]]] = {}
    for subject, predicate, obj in facts:
        facts_by_subject.setdefault(subject, []).append((subject, predicate, obj))
    subjects = sorted(facts_by_subject)
    mentions: List[TextMention] = []
    entity_names = [entity.name for entity in world.truth.entities()]
    while len(mentions) < n_sentences:
        if rng.random() < noise_rate:
            left = entity_names[int(rng.integers(0, len(entity_names)))]
            right = entity_names[int(rng.integers(0, len(entity_names)))]
            if left == right:
                continue
            template = NOISE_TEMPLATES[int(rng.integers(0, len(NOISE_TEMPLATES)))]
            mentions.append(
                TextMention(
                    sentence=template.format(s=left, o=right),
                    subject_text=left,
                    object_text=right,
                    predicate=None,
                )
            )
            continue
        if popularity_weighted:
            subject = world.popularity.sample(rng, 1)[0]
            if subject not in facts_by_subject:
                continue
        else:
            subject = subjects[int(rng.integers(0, len(subjects)))]
        subject_facts = facts_by_subject[subject]
        _s, predicate, obj = subject_facts[int(rng.integers(0, len(subject_facts)))]
        templates = TEMPLATES[predicate]
        template = templates[int(rng.integers(0, len(templates)))]
        subject_text = _surface(world, subject)
        object_text = _surface(world, obj)
        mentions.append(
            TextMention(
                sentence=template.format(s=subject_text, o=object_text),
                subject_text=subject_text,
                object_text=object_text,
                predicate=predicate,
            )
        )
    return mentions
