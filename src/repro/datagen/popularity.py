"""Zipfian popularity — the head/torso/tail structure behind the paper.

Popularity drives everything the paper measures against entity rank:
source coverage ("oftentimes about torso to long-tail entities"), LLM
accuracy ("questions regarding entities in the bottom 33% popularity" drop
from ~50% to ~15%, Sec. 4), and the value of web extraction for long-tail
knowledge (Sec. 2.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

#: The paper's study buckets entities into popularity thirds (Sec. 4).
BANDS = ("head", "torso", "tail")


def popularity_band(rank: int, n_total: int) -> str:
    """Classify a 0-based popularity rank into head/torso/tail thirds."""
    if n_total <= 0:
        raise ValueError("n_total must be positive")
    if not 0 <= rank < n_total:
        raise ValueError(f"rank {rank} out of range for {n_total} items")
    third = n_total / 3.0
    if rank < third:
        return "head"
    if rank < 2 * third:
        return "torso"
    return "tail"


@dataclass
class PopularityModel:
    """Assigns Zipf-distributed popularity weights to a set of item ids.

    ``weight(item)`` is proportional to ``1 / rank^alpha``, normalized to
    sum to 1; ``alpha`` around 1.0 matches web-entity popularity curves.
    """

    item_ids: Sequence[str]
    alpha: float = 1.0
    seed: int = 0
    _weights: Dict[str, float] = field(default_factory=dict, init=False)
    _ranks: Dict[str, int] = field(default_factory=dict, init=False)

    def __post_init__(self) -> None:
        if not self.item_ids:
            raise ValueError("popularity model needs at least one item")
        rng = np.random.default_rng(self.seed)
        order = list(self.item_ids)
        rng.shuffle(order)
        raw = np.array([1.0 / (rank + 1) ** self.alpha for rank in range(len(order))])
        normalized = raw / raw.sum()
        for rank, item in enumerate(order):
            self._ranks[item] = rank
            self._weights[item] = float(normalized[rank])

    def weight(self, item_id: str) -> float:
        """Normalized popularity weight of an item."""
        if item_id not in self._weights:
            raise KeyError(f"unknown item: {item_id!r}")
        return self._weights[item_id]

    def rank(self, item_id: str) -> int:
        """0-based popularity rank (0 = most popular)."""
        if item_id not in self._ranks:
            raise KeyError(f"unknown item: {item_id!r}")
        return self._ranks[item_id]

    def band(self, item_id: str) -> str:
        """head/torso/tail third of the item."""
        return popularity_band(self.rank(item_id), len(self._ranks))

    def items_in_band(self, band: str) -> List[str]:
        """All item ids falling in a popularity band."""
        if band not in BANDS:
            raise ValueError(f"unknown band {band!r}; expected one of {BANDS}")
        return sorted(
            (item for item in self._ranks if self.band(item) == band),
            key=lambda item: self._ranks[item],
        )

    def sample(self, rng: np.random.Generator, size: int) -> List[str]:
        """Sample items proportional to popularity (with replacement).

        This is how the synthetic LLM training corpus gets its
        frequency-skewed fact mentions (Sec. 4 reproduction).
        """
        items = sorted(self._weights, key=lambda item: self._ranks[item])
        probabilities = np.array([self._weights[item] for item in items])
        chosen = rng.choice(len(items), size=size, p=probabilities)
        return [items[index] for index in chosen]

    def coverage_probability(self, item_id: str, base: float, floor: float = 0.02) -> float:
        """Probability a source covers the item, rising with popularity.

        ``base`` is the coverage of the most popular item; coverage decays
        with log-rank, bottoming out at ``floor`` — sources "supplement
        Wikipedia, oftentimes about torso to long-tail entities" (Sec. 2.2),
        so different sources pass different ``base``/``floor``.
        """
        rank = self._ranks[item_id]
        decay = 1.0 / (1.0 + np.log1p(rank))
        return float(max(floor, base * decay))
