"""Web tables and HTML-annotation pages — the remaining Knowledge Vault
content types (Sec. 2.4).

"KV extracts knowledge from four types of web contents: texts,
semi-structured data, web tables, and HTML annotations (e.g., according to
schema.org)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen import names
from repro.datagen.world import World
from repro.extract.dom import DomNode, element, text_node

#: Canonical attribute -> possible table-header labels.
TABLE_HEADER_STYLES: Dict[str, Tuple[str, ...]] = {
    "name": ("Title", "Name", "Work"),
    "release_year": ("Year", "Released", "Release"),
    "genre": ("Genre", "Kind"),
    "directed_by": ("Director", "Directed By"),
    "birth_year": ("Born", "Birth"),
    "birth_place": ("Birthplace", "Home Town"),
}

#: schema.org-like itemprop vocabulary per canonical attribute.
SCHEMA_ORG_PROPS: Dict[str, str] = {
    "directed_by": "director",
    "release_year": "datePublished",
    "genre": "genre",
    "birth_year": "birthDate",
    "birth_place": "birthPlace",
    "runtime": "duration",
}


@dataclass
class WebTable:
    """A relational web table about one entity class."""

    table_id: str
    entity_class: str
    header: List[str]
    canonical_columns: List[Optional[str]]  # hidden truth per column
    rows: List[List[str]]
    row_world_ids: List[str]


def generate_web_tables(
    world: World,
    n_tables: int = 8,
    rows_per_table: int = 12,
    cell_noise_rate: float = 0.08,
    seed: int = 61,
) -> List[WebTable]:
    """Generate entity tables with styled headers and noisy cells."""
    rng = np.random.default_rng(seed)
    class_columns = {
        "Movie": ("name", "release_year", "genre", "directed_by"),
        "Person": ("name", "birth_year", "birth_place"),
    }
    tables: List[WebTable] = []
    for table_index in range(n_tables):
        entity_class = ("Movie", "Person")[table_index % 2]
        columns = class_columns[entity_class]
        style = table_index % 2
        header = [
            TABLE_HEADER_STYLES[column][style % len(TABLE_HEADER_STYLES[column])]
            for column in columns
        ]
        entity_ids = world.entity_ids(entity_class)
        chosen = rng.choice(
            len(entity_ids), size=min(rows_per_table, len(entity_ids)), replace=False
        )
        rows: List[List[str]] = []
        row_world_ids: List[str] = []
        for entity_index in chosen:
            entity_id = entity_ids[int(entity_index)]
            record = world.record_for(entity_id)
            row = []
            for column in columns:
                value = record.get(column, "")
                if isinstance(value, list):
                    value = value[0] if value else ""
                text = str(value)
                if text and rng.random() < cell_noise_rate:
                    text = names.typo(rng, text)
                row.append(text)
            rows.append(row)
            row_world_ids.append(entity_id)
        tables.append(
            WebTable(
                table_id=f"table{table_index}",
                entity_class=entity_class,
                header=header,
                canonical_columns=list(columns),
                rows=rows,
                row_world_ids=row_world_ids,
            )
        )
    return tables


@dataclass
class AnnotatedPage:
    """A page whose value elements carry schema.org-like itemprops."""

    url: str
    root: DomNode
    topic_world_id: str
    truth: Dict[str, str]  # canonical attribute -> value text


def generate_annotated_pages(
    world: World,
    n_pages: int = 30,
    wrong_prop_rate: float = 0.08,
    seed: int = 71,
) -> List[AnnotatedPage]:
    """Pages with microdata annotations, occasionally mis-annotated.

    Annotation errors (a value tagged with the wrong itemprop) are the
    reason annotation harvesting still needs knowledge fusion downstream.
    """
    rng = np.random.default_rng(seed)
    prop_names = sorted(SCHEMA_ORG_PROPS.values())
    class_attributes = {
        "Movie": ("directed_by", "release_year", "genre", "runtime"),
        "Person": ("birth_year", "birth_place"),
    }
    pages: List[AnnotatedPage] = []
    for page_index in range(n_pages):
        entity_class = ("Movie", "Person")[page_index % 2]
        entity_ids = world.entity_ids(entity_class)
        entity_id = entity_ids[int(rng.integers(0, len(entity_ids)))]
        record = world.record_for(entity_id)
        root = element("html")
        body = root.append(element("body"))
        scope = body.append(
            element("div", {"itemscope": "", "itemtype": entity_class.lower()})
        )
        heading = scope.append(element("h1", {"itemprop": "name"}))
        heading.append(text_node(str(record["name"])))
        truth: Dict[str, str] = {}
        for attribute in class_attributes[entity_class]:
            value = record.get(attribute)
            if value is None:
                continue
            if isinstance(value, list):
                value = value[0]
            prop = SCHEMA_ORG_PROPS[attribute]
            if rng.random() < wrong_prop_rate:
                prop = prop_names[int(rng.integers(0, len(prop_names)))]
            else:
                truth[attribute] = str(value)
            span = scope.append(element("span", {"itemprop": prop}))
            span.append(text_node(str(value)))
        pages.append(
            AnnotatedPage(
                url=f"https://annotated.example.com/{page_index}",
                root=root,
                topic_world_id=entity_id,
                truth=truth,
            )
        )
    return pages
