"""Synthetic customer behavior logs.

"We can mine their relationships (hypernyms, synonyms, etc.) from customer
shopping behaviors, such as search, co-view, and co-purchase. For example,
if users searching for 'tea' often buy 'green tea', whereas users searching
for 'green tea' seldom end up buying other types of teas, it hints that
'green tea' is a subtype of tea." (Sec. 3.1)

The generator encodes exactly that asymmetry: a query for a *broad* type
resolves to purchases across its subtypes, while a query for a *leaf* type
resolves almost entirely within the leaf.  Co-view sessions stay within a
type (substitutes); co-purchase baskets bridge complementary types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datagen.products import COMPLEMENT_TYPES, ProductDomain, ProductRecord


@dataclass
class BehaviorLog:
    """Search, co-view, and co-purchase events."""

    search_purchases: List[Tuple[str, str]] = field(default_factory=list)
    co_views: List[Tuple[str, str]] = field(default_factory=list)
    co_purchases: List[Tuple[str, str]] = field(default_factory=list)

    def purchases_for_query(self, query: str) -> List[str]:
        """Product ids purchased after a given search query."""
        return [product_id for q, product_id in self.search_purchases if q == query]

    def queries(self) -> List[str]:
        """Distinct search queries observed."""
        return sorted({query for query, _product in self.search_purchases})


def generate_behavior(
    domain: ProductDomain,
    n_search_sessions: int = 1500,
    n_coview_sessions: int = 600,
    n_copurchase_sessions: int = 400,
    leaf_query_rate: float = 0.5,
    noise_rate: float = 0.05,
    seed: int = 31,
) -> BehaviorLog:
    """Generate a behavior log from the product domain."""
    rng = np.random.default_rng(seed)
    log = BehaviorLog()
    by_leaf: Dict[str, List[ProductRecord]] = {}
    by_type: Dict[str, List[ProductRecord]] = {}
    for product in domain.products:
        by_leaf.setdefault(product.leaf_type, []).append(product)
        by_type.setdefault(product.product_type, []).append(product)
    leaves = sorted(by_leaf)
    types = sorted(by_type)

    # --- search -> purchase -------------------------------------------------
    for _ in range(n_search_sessions):
        if rng.random() < noise_rate:
            # Noise: query and purchase are unrelated.
            query_pool = leaves + types
            query = query_pool[int(rng.integers(0, len(query_pool)))].lower()
            product = domain.products[int(rng.integers(0, len(domain.products)))]
            log.search_purchases.append((query, product.product_id))
            continue
        if rng.random() < leaf_query_rate:
            # Leaf query: purchases stay inside the leaf.
            leaf = leaves[int(rng.integers(0, len(leaves)))]
            pool = by_leaf[leaf]
            query = leaf.lower()
        else:
            # Broad query: purchases spread across the type's leaves.
            product_type = types[int(rng.integers(0, len(types)))]
            pool = by_type[product_type]
            query = product_type.lower()
        product = pool[int(rng.integers(0, len(pool)))]
        log.search_purchases.append((query, product.product_id))

    # --- co-view (substitutes: same type) ------------------------------------
    for _ in range(n_coview_sessions):
        if rng.random() < noise_rate:
            first = domain.products[int(rng.integers(0, len(domain.products)))]
            second = domain.products[int(rng.integers(0, len(domain.products)))]
        else:
            product_type = types[int(rng.integers(0, len(types)))]
            pool = by_type[product_type]
            if len(pool) < 2:
                continue
            first_index, second_index = rng.choice(len(pool), size=2, replace=False)
            first, second = pool[int(first_index)], pool[int(second_index)]
        if first.product_id != second.product_id:
            log.co_views.append((first.product_id, second.product_id))

    # --- co-purchase (complements: paired types) -----------------------------
    complement_pairs = [
        (left, right)
        for left, right in COMPLEMENT_TYPES
        if left in by_type and right in by_type
    ]
    for _ in range(n_copurchase_sessions):
        if rng.random() < noise_rate or not complement_pairs:
            first = domain.products[int(rng.integers(0, len(domain.products)))]
            second = domain.products[int(rng.integers(0, len(domain.products)))]
        else:
            left_type, right_type = complement_pairs[
                int(rng.integers(0, len(complement_pairs)))
            ]
            left_pool, right_pool = by_type[left_type], by_type[right_type]
            first = left_pool[int(rng.integers(0, len(left_pool)))]
            second = right_pool[int(rng.integers(0, len(right_pool)))]
        if first.product_id != second.product_id:
            log.co_purchases.append((first.product_id, second.product_id))

    return log
