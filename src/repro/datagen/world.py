"""The synthetic ground-truth world.

A :class:`World` is what "reality" looks like in this reproduction: a set of
people, movies, and songs with canonical attributes and relations, plus a
Zipfian popularity model.  Every structured source, website, corpus, and
oracle label is *derived* from the world, so precision/recall of any
technique can be computed exactly — the role the Freebase/IMDb gold links
played in Fig. 2.

The movie+music mix intentionally mirrors Fig. 1(a): the two domains connect
through people who act and sing, and through the ``featured_in`` relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.triple import Triple
from repro.datagen import names
from repro.datagen.popularity import PopularityModel


@dataclass(frozen=True)
class WorldConfig:
    """Sizes and knobs of the synthetic world."""

    n_people: int = 200
    n_movies: int = 120
    n_songs: int = 80
    seed: int = 7
    popularity_alpha: float = 1.0
    year_range: tuple = (1950, 2020)
    #: People are grouped into collaboration clusters; a movie's director
    #: and cast come mostly from one cluster.  Real film industries have
    #: this structure, and it is what path-based link prediction (PRA,
    #: Sec. 2.4) keys on: co-stars of a director's movies share directors.
    n_collaboration_clusters: int = 8
    cross_cluster_rate: float = 0.15


def _world_ontology() -> Ontology:
    ontology = Ontology(name="world")
    ontology.add_class("Agent")
    ontology.add_class("Person", parent="Agent")
    ontology.add_class("CreativeWork")
    ontology.add_class("Movie", parent="CreativeWork")
    ontology.add_class("Song", parent="CreativeWork")
    ontology.add_relation("birth_year", "Person", "number", functional=True)
    ontology.add_relation("birth_place", "Person", "string", functional=True)
    ontology.add_relation("directed_by", "Movie", "Person", functional=True)
    ontology.add_relation("stars", "Movie", "Person")
    ontology.add_relation("release_year", "Movie", "number", functional=True)
    ontology.add_relation("genre", "CreativeWork", "string")
    ontology.add_relation("runtime", "Movie", "number", functional=True)
    ontology.add_relation("performed_by", "Song", "Person")
    ontology.add_relation("featured_in", "Song", "Movie")
    return ontology


@dataclass
class World:
    """Ground truth: a curated KG plus a popularity model over its entities."""

    truth: KnowledgeGraph
    popularity: PopularityModel
    config: WorldConfig

    def entity_ids(self, entity_class: Optional[str] = None) -> List[str]:
        """Ids of all (optionally class-filtered) ground-truth entities."""
        return [entity.entity_id for entity in self.truth.entities(entity_class)]

    def record_for(self, entity_id: str) -> Dict[str, object]:
        """A flat attribute record of an entity (names resolved to strings).

        This is the canonical record that structured sources perturb.
        """
        entity = self.truth.entity(entity_id)
        record: Dict[str, object] = {
            "id": entity_id,
            "name": entity.name,
            "class": entity.entity_class,
        }
        for triple in self.truth.query(subject=entity_id):
            value = triple.object
            if isinstance(value, str) and self.truth.has_entity(value):
                value = self.truth.entity(value).name
            if triple.predicate in record and triple.predicate != "id":
                existing = record[triple.predicate]
                if isinstance(existing, list):
                    existing.append(value)
                else:
                    record[triple.predicate] = [existing, value]
            else:
                record[triple.predicate] = value
        for key, value in record.items():
            if isinstance(value, list):
                record[key] = sorted(value, key=str)
        return record

    def true_fact(self, entity_id: str, predicate: str):
        """The canonical object(s) of a fact — the QA gold standard."""
        return self.truth.objects(entity_id, predicate)


def build_world(config: Optional[WorldConfig] = None) -> World:
    """Generate a deterministic world from a configuration."""
    config = config or WorldConfig()
    rng = np.random.default_rng(config.seed)
    ontology = _world_ontology()
    graph = KnowledgeGraph(ontology=ontology, name="world_truth")

    person_ids: List[str] = []
    for index in range(config.n_people):
        entity_id = f"P{index:05d}"
        graph.add_entity(entity_id, names.person_name(rng), "Person")
        person_ids.append(entity_id)
        graph.add(entity_id, "birth_year", int(rng.integers(*config.year_range)))
        graph.add(entity_id, "birth_place", names.pick(rng, names.CITIES))

    # Collaboration clusters: round-robin assignment keeps them balanced.
    n_clusters = max(1, min(config.n_collaboration_clusters, len(person_ids)))
    clusters: List[List[str]] = [[] for _ in range(n_clusters)]
    for index, person_id in enumerate(person_ids):
        clusters[index % n_clusters].append(person_id)

    def _pick_person(cluster_index: int) -> str:
        if rng.random() < config.cross_cluster_rate:
            return person_ids[int(rng.integers(0, len(person_ids)))]
        pool = clusters[cluster_index]
        return pool[int(rng.integers(0, len(pool)))]

    # Directing is concentrated: a few people per cluster direct many
    # movies (as in real film industries).  This is what makes the
    # director of a movie *predictable* from co-star structure.
    director_pools: List[List[str]] = [
        cluster[: max(1, len(cluster) // 12)] for cluster in clusters
    ]

    def _pick_director(cluster_index: int) -> str:
        if rng.random() < config.cross_cluster_rate:
            flat = [person for pool in director_pools for person in pool]
            return flat[int(rng.integers(0, len(flat)))]
        pool = director_pools[cluster_index]
        return pool[int(rng.integers(0, len(pool)))]

    movie_ids: List[str] = []
    for index in range(config.n_movies):
        entity_id = f"M{index:05d}"
        graph.add_entity(entity_id, names.movie_title(rng), "Movie")
        movie_ids.append(entity_id)
        graph.add(entity_id, "release_year", int(rng.integers(*config.year_range)))
        graph.add(entity_id, "genre", names.pick(rng, names.GENRES))
        graph.add(entity_id, "runtime", int(rng.integers(75, 190)))
        cluster_index = int(rng.integers(0, n_clusters))
        graph.add(entity_id, "directed_by", _pick_director(cluster_index))
        n_actors = int(rng.integers(2, 5))
        cast = set()
        while len(cast) < n_actors:
            cast.add(_pick_person(cluster_index))
        for actor in sorted(cast):
            graph.add(entity_id, "stars", actor)

    for index in range(config.n_songs):
        entity_id = f"S{index:05d}"
        graph.add_entity(entity_id, names.song_title(rng), "Song")
        graph.add(entity_id, "genre", names.pick(rng, names.MUSIC_GENRES))
        performer = person_ids[int(rng.integers(0, len(person_ids)))]
        graph.add(entity_id, "performed_by", performer)
        # Cross-domain connection: some songs are featured in movies.
        if movie_ids and rng.random() < 0.35:
            movie = movie_ids[int(rng.integers(0, len(movie_ids)))]
            graph.add(entity_id, "featured_in", movie)

    all_ids = [entity.entity_id for entity in graph.entities()]
    popularity = PopularityModel(
        item_ids=all_ids, alpha=config.popularity_alpha, seed=config.seed + 1
    )
    return World(truth=graph, popularity=popularity, config=config)
