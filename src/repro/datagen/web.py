"""Synthetic semi-structured websites — the Fig. 3 extraction workload.

"On the web there are numerous semi-structured websites, where each page
represents a topic entity, and different pages display information in
key-value pairs at relatively consistent locations across the pages. These
websites are typically populated from large structured data sources."
(Sec. 2.3)

A :class:`SemiStructuredSite` is exactly that: pages rendered from world
records through one of several templates (table / definition-list / div
layouts), with per-site label vocabularies (``Director`` vs ``Directed by``
vs ``Helmed by``), missing fields, boilerplate chrome that looks like
key-value pairs (the OpenIE trap), template drift, and *open* attributes
that exist on the page but not in the seed ontology (the OpenIE prize).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datagen import names
from repro.datagen.world import World
from repro.extract.dom import DomNode, element, text_node

#: Per-attribute label vocabularies; index = site label style.
LABEL_STYLES: Dict[str, Sequence[str]] = {
    "directed_by": ("Director", "Directed by", "Helmed by"),
    "release_year": ("Year", "Release Year", "Released"),
    "genre": ("Genre", "Category", "Style"),
    "runtime": ("Runtime", "Length", "Minutes"),
    "birth_year": ("Born", "Birth Year", "Year of Birth"),
    "birth_place": ("Birthplace", "From", "Place of Birth"),
    "performed_by": ("Artist", "Performed by", "Singer"),
    # Open attributes: on pages, absent from the seed ontology.
    "budget": ("Budget", "Production Budget", "Cost"),
    "language": ("Language", "Spoken Language", "Audio"),
    "occupation": ("Occupation", "Profession", "Known for"),
}

#: Which canonical (closed) attributes each domain's pages may carry.
CLOSED_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "Movie": ("directed_by", "release_year", "genre", "runtime"),
    "Person": ("birth_year", "birth_place"),
    "Song": ("performed_by", "genre"),
}

#: Open attributes (page-only knowledge) per domain.
OPEN_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "Movie": ("budget", "language"),
    "Person": ("occupation",),
    "Song": (),
}

_LANGUAGES = ("English", "French", "Spanish", "Japanese", "German", "Korean")
_OCCUPATIONS = ("actor", "director", "producer", "writer", "composer")

#: Boilerplate pairs that *look* like key-value knowledge but are site chrome.
_BOILERPLATE_PAIRS = (
    ("Share", "Facebook"),
    ("Follow", "Newsletter"),
    ("Rating", "Sign in to rate"),
    ("Ads by", "WebAds Inc"),
    ("More", "See all"),
)

#: Promo snippets placed inside the main content block.
_PROMO_SNIPPETS = (
    "New this week",
    "4.5 stars",
    "Editors pick",
    "Trending now",
    "In stock",
)


@dataclass(frozen=True)
class WebsiteConfig:
    """Template and noise knobs for one synthetic website."""

    name: str
    domain: str = "Movie"
    template: str = "table"
    n_pages: int = 40
    label_style: int = 0
    missing_rate: float = 0.12
    drift_rate: float = 0.0
    n_boilerplate: int = 3
    #: Promo snippets rendered *inside* the main content block ("New this
    #: week", star ratings).  Label-anchored extractors ignore them; purely
    #: structural ones (zero-shot) can mistake them for values.
    n_promos: int = 2
    include_open_attributes: bool = True
    seed: int = 0


@dataclass
class WebPage:
    """One rendered page with its hidden ground truth.

    ``closed_truth`` maps canonical attribute -> value text shown on the
    page; ``open_truth`` maps the *surface label* of an open attribute to
    its value text (there is no canonical name — that is what makes it
    open knowledge).
    """

    url: str
    root: DomNode
    topic_world_id: str
    topic_name: str
    closed_truth: Dict[str, str] = field(default_factory=dict)
    open_truth: Dict[str, str] = field(default_factory=dict)


@dataclass
class SemiStructuredSite:
    """A website: homogeneous template, many topic pages."""

    config: WebsiteConfig
    pages: List[WebPage] = field(default_factory=list)

    @property
    def name(self) -> str:
        """Site identifier."""
        return self.config.name

    def split(self, n_annotated: int) -> Tuple[List[WebPage], List[WebPage]]:
        """First ``n_annotated`` pages for annotation, the rest for extraction."""
        return self.pages[:n_annotated], self.pages[n_annotated:]


def generate_site(world: World, config: WebsiteConfig) -> SemiStructuredSite:
    """Render a website from the world's records."""
    if config.domain not in CLOSED_ATTRIBUTES:
        raise ValueError(f"unsupported site domain: {config.domain!r}")
    rng = np.random.default_rng(config.seed)
    entity_ids = world.entity_ids(config.domain)
    if not entity_ids:
        raise ValueError(f"world has no entities of class {config.domain!r}")
    weights = np.array([world.popularity.weight(entity_id) for entity_id in entity_ids])
    weights = weights / weights.sum()
    n_pages = min(config.n_pages, len(entity_ids))
    chosen = rng.choice(len(entity_ids), size=n_pages, replace=False, p=weights)
    site = SemiStructuredSite(config=config)
    for page_number, entity_index in enumerate(chosen):
        entity_id = entity_ids[int(entity_index)]
        page = _render_page(world, entity_id, config, rng, page_number)
        site.pages.append(page)
    return site


def _attribute_label(attribute: str, style: int) -> str:
    labels = LABEL_STYLES[attribute]
    return labels[style % len(labels)]


def _value_text(record: Dict[str, object], attribute: str) -> Optional[str]:
    value = record.get(attribute)
    if value is None:
        return None
    if isinstance(value, list):
        value = value[0] if value else None
        if value is None:
            return None
    return str(value)


def _open_value(attribute: str, rng: np.random.Generator) -> str:
    if attribute == "budget":
        return f"${int(rng.integers(2, 200))} million"
    if attribute == "language":
        return names.pick(rng, _LANGUAGES)
    if attribute == "occupation":
        return names.pick(rng, _OCCUPATIONS)
    raise ValueError(f"unknown open attribute: {attribute!r}")


def _render_page(
    world: World,
    entity_id: str,
    config: WebsiteConfig,
    rng: np.random.Generator,
    page_number: int,
) -> WebPage:
    record = world.record_for(entity_id)
    topic_name = str(record["name"])
    pairs: List[Tuple[str, str, str]] = []  # (canonical_or_label, label, value)
    closed_truth: Dict[str, str] = {}
    open_truth: Dict[str, str] = {}
    for attribute in CLOSED_ATTRIBUTES[config.domain]:
        value_text = _value_text(record, attribute)
        if value_text is None or rng.random() < config.missing_rate:
            continue
        label = _attribute_label(attribute, config.label_style)
        pairs.append((attribute, label, value_text))
        closed_truth[attribute] = value_text
    if config.include_open_attributes:
        for attribute in OPEN_ATTRIBUTES[config.domain]:
            if rng.random() < config.missing_rate:
                continue
            label = _attribute_label(attribute, config.label_style)
            value_text = _open_value(attribute, rng)
            pairs.append((attribute, label, value_text))
            open_truth[label] = value_text

    template = config.template
    if config.drift_rate > 0 and rng.random() < config.drift_rate:
        alternates = [name for name in ("table", "dl", "div") if name != config.template]
        template = alternates[int(rng.integers(0, len(alternates)))]

    root = _page_skeleton(config, topic_name, rng)
    body = root.find_by_tag("body")[0]
    main = body.find_by_class("main")[0]
    _render_pairs(main, pairs, template)
    return WebPage(
        url=f"https://{config.name}/page/{page_number}",
        root=root,
        topic_world_id=entity_id,
        topic_name=topic_name,
        closed_truth=closed_truth,
        open_truth=open_truth,
    )


def _page_skeleton(config: WebsiteConfig, topic_name: str, rng: np.random.Generator) -> DomNode:
    root = element("html")
    head = root.append(element("head"))
    title = head.append(element("title"))
    title.append(text_node(f"{topic_name} - {config.name}"))
    body = root.append(element("body"))
    nav = body.append(element("div", {"class": "nav"}))
    for item in ("Home", "Browse", "About"):
        link = nav.append(element("span", {"class": "navitem"}))
        link.append(text_node(item))
    main = body.append(element("div", {"class": "main"}))
    heading = main.append(element("h1", {"class": "topic"}))
    heading.append(text_node(topic_name))
    for index in range(config.n_promos):
        promo = main.append(element("div", {"class": "promo"}))
        badge = promo.append(element("span", {"class": "badge"}))
        badge.append(
            text_node(_PROMO_SNIPPETS[int(rng.integers(0, len(_PROMO_SNIPPETS)))])
        )
    # Boilerplate key-value look-alikes: the OpenIE precision trap.
    if config.n_boilerplate > 0:
        aside = body.append(element("div", {"class": "aside"}))
        for index in range(config.n_boilerplate):
            key, value = _BOILERPLATE_PAIRS[index % len(_BOILERPLATE_PAIRS)]
            row = aside.append(element("div", {"class": "widget"}))
            key_node = row.append(element("span", {"class": "wkey"}))
            key_node.append(text_node(f"{key}:"))
            value_node = row.append(element("span", {"class": "wval"}))
            value_node.append(text_node(value))
    footer = body.append(element("div", {"class": "footer"}))
    footer.append(text_node(f"(c) {config.name}"))
    return root


def _render_pairs(main: DomNode, pairs: List[Tuple[str, str, str]], template: str) -> None:
    if template == "table":
        table = main.append(element("table", {"class": "infobox"}))
        for _attribute, label, value in pairs:
            row = table.append(element("tr"))
            header = row.append(element("th"))
            header.append(text_node(label))
            cell = row.append(element("td"))
            cell.append(text_node(value))
    elif template == "dl":
        definition_list = main.append(element("dl", {"class": "facts"}))
        for _attribute, label, value in pairs:
            term = definition_list.append(element("dt"))
            term.append(text_node(f"{label}:"))
            definition = definition_list.append(element("dd"))
            definition.append(text_node(value))
    elif template == "div":
        container = main.append(element("div", {"class": "attributes"}))
        for _attribute, label, value in pairs:
            row = container.append(element("div", {"class": "attr-row"}))
            key_node = row.append(element("span", {"class": "attr-key"}))
            key_node.append(text_node(f"{label}:"))
            value_node = row.append(element("span", {"class": "attr-value"}))
            value_node.append(text_node(value))
    else:
        raise ValueError(f"unknown template: {template!r}")


def generate_web_corpus(
    world: World,
    n_sites: int = 6,
    pages_per_site: int = 30,
    seed: int = 100,
) -> List[SemiStructuredSite]:
    """A multi-site, multi-domain corpus for Fig. 3 / T-WEB experiments.

    Sites rotate over domains, templates, and label styles so that no two
    sites share an identical layout — the reason per-site wrapper induction
    does not transfer, and the reason zero-shot extraction is interesting.
    """
    domains = ("Movie", "Person", "Song")
    templates = ("table", "dl", "div")
    sites = []
    for index in range(n_sites):
        config = WebsiteConfig(
            name=f"site{index}.example.com",
            domain=domains[index % len(domains)],
            template=templates[index % len(templates)],
            label_style=index % 3,
            n_pages=pages_per_site,
            missing_rate=0.1 + 0.04 * (index % 3),
            seed=seed + index,
        )
        sites.append(generate_site(world, config))
    return sites
