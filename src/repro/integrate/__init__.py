"""Knowledge integration (Sec. 2.2).

"The knowledge integration problem is one form of data integration, and it
needs to resolve three types of heterogeneities":

* **schema heterogeneity** -> :mod:`repro.integrate.schema_alignment`
  (manual curated mappings live in :mod:`repro.transform.mapping`; the
  automatic matcher here is the research-grade counterpart the paper files
  under "not-yet successful" in Sec. 5);
* **entity heterogeneity** -> :mod:`repro.integrate.blocking` +
  :mod:`repro.integrate.linkage` (random-forest linkage of Fig. 2) +
  :mod:`repro.integrate.active_linkage` (the label-efficiency half of
  Fig. 2);
* **value heterogeneity** -> :mod:`repro.integrate.fusion` (majority vote
  and Bayesian accuracy-weighted fusion with EM source-accuracy
  estimation).
"""

from repro.integrate.schema_alignment import AlignmentResult, SchemaMatcher, canonicalize_record
from repro.integrate.blocking import BlockingStrategy, candidate_pairs
from repro.integrate.linkage import (
    EntityLinker,
    FellegiSunterLinker,
    LinkageTask,
    build_linkage_task,
)
from repro.integrate.active_linkage import label_budget_curve
from repro.integrate.fusion import AccuFusion, FusionResult, ValueClaim, majority_vote
from repro.integrate.disambiguation import EntityDisambiguator

__all__ = [
    "AlignmentResult",
    "SchemaMatcher",
    "canonicalize_record",
    "BlockingStrategy",
    "candidate_pairs",
    "EntityLinker",
    "FellegiSunterLinker",
    "LinkageTask",
    "build_linkage_task",
    "label_budget_curve",
    "AccuFusion",
    "FusionResult",
    "ValueClaim",
    "majority_vote",
    "EntityDisambiguator",
]
