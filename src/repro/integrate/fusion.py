"""Data fusion: resolving conflicting values across sources (Sec. 2.2/2.4).

"Data fusion decides among different, and possibly conflicting values,
which are correct and up-to-date values."

Two resolvers are provided:

* :func:`majority_vote` — the baseline: most-claimed value wins;
* :class:`AccuFusion` — Bayesian accuracy-weighted fusion in the style of
  the ACCU family the author's fusion survey [20] covers: source accuracies
  and value probabilities are estimated jointly by EM, so a careful source
  outvotes three sloppy ones.  The learned source accuracies are also the
  substrate for Knowledge-Based Trust (:mod:`repro.fuse.kbt`).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.parallel import pmap
from repro.core.triple import Value
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled


@dataclass(frozen=True)
class ValueClaim:
    """One source's claim about one data item.

    A *data item* is a (subject, attribute) slot; the claim asserts a value
    for it.
    """

    subject: str
    attribute: str
    value: Value
    source: str


@dataclass(frozen=True)
class FusionResult:
    """The fused decision for one data item."""

    subject: str
    attribute: str
    value: Value
    confidence: float
    n_claims: int


def _group_claims(
    claims: Iterable[ValueClaim],
) -> Dict[Tuple[str, str], List[ValueClaim]]:
    grouped: Dict[Tuple[str, str], List[ValueClaim]] = defaultdict(list)
    for claim in claims:
        grouped[(claim.subject, claim.attribute)].append(claim)
    return grouped


def _vote_one_item(
    entry: Tuple[Tuple[str, str], List[ValueClaim]],
) -> FusionResult:
    """Resolve one (subject, attribute) group by plurality."""
    (subject, attribute), item_claims = entry
    votes: Dict[Value, int] = defaultdict(int)
    for claim in item_claims:
        votes[claim.value] += 1
    value, count = max(votes.items(), key=lambda item: (item[1], str(item[0])))
    return FusionResult(
        subject=subject,
        attribute=attribute,
        value=value,
        confidence=count / len(item_claims),
        n_claims=len(item_claims),
    )


@profiled("fusion.majority_vote")
def majority_vote(claims: Iterable[ValueClaim]) -> List[FusionResult]:
    """Most-claimed value per data item; confidence = vote share.

    Groups are independent, so per-item resolution fans out through
    :func:`repro.core.parallel.pmap`; the sorted grouping fixes result
    order in every mode.
    """
    return pmap(_vote_one_item, sorted(_group_claims(claims).items()))


@dataclass
class AccuFusion:
    """Bayesian fusion with EM-estimated source accuracies.

    Model: each data item has one true value; a source reports the truth
    with probability ``accuracy(source)`` and otherwise picks uniformly
    among ``n_distractors`` wrong values.  EM alternates between value
    posteriors given accuracies and accuracy estimates given posteriors.
    """

    n_distractors: int = 10
    n_iterations: int = 10
    initial_accuracy: float = 0.8
    min_accuracy: float = 0.05
    max_accuracy: float = 0.99
    source_accuracy_: Dict[str, float] = field(default_factory=dict, init=False)

    @profiled("fusion.accu")
    def fuse(self, claims: Sequence[ValueClaim]) -> List[FusionResult]:
        """Run EM and return the fused value per data item."""
        obs_metrics.count("fusion.claims", len(claims))
        grouped = _group_claims(claims)
        obs_metrics.count("fusion.data_items", len(grouped))
        sources = sorted({claim.source for claim in claims})
        accuracy = {source: self.initial_accuracy for source in sources}
        items = list(grouped.items())
        posteriors: Dict[Tuple[str, str], Dict[Value, float]] = {}
        for _ in range(self.n_iterations):
            # E-step: value posteriors per item — items are independent
            # given the accuracies, so the per-item computation fans out
            # through pmap (order-preserved, results zip back to items).
            item_posteriors = pmap(
                partial(_accu_item_posterior, self.n_distractors, accuracy),
                [item_claims for _, item_claims in items],
            )
            posteriors = {
                item: posterior
                for (item, _), posterior in zip(items, item_posteriors)
            }
            # M-step: source accuracies from expected correctness.
            totals: Dict[str, float] = defaultdict(float)
            counts: Dict[str, int] = defaultdict(int)
            for item, item_claims in grouped.items():
                posterior = posteriors[item]
                for claim in item_claims:
                    totals[claim.source] += posterior.get(claim.value, 0.0)
                    counts[claim.source] += 1
            for source in sources:
                if counts[source]:
                    estimate = totals[source] / counts[source]
                    accuracy[source] = float(
                        np.clip(estimate, self.min_accuracy, self.max_accuracy)
                    )
        self.source_accuracy_ = dict(accuracy)
        results = []
        n_rejected = 0
        record_lineage = obs_lineage.lineage_enabled()
        for (subject, attribute), posterior in sorted(posteriors.items()):
            value, probability = max(
                posterior.items(), key=lambda item: (item[1], str(item[0]))
            )
            results.append(
                FusionResult(
                    subject=subject,
                    attribute=attribute,
                    value=value,
                    confidence=float(probability),
                    n_claims=len(grouped[(subject, attribute)]),
                )
            )
            n_rejected += len(posterior) - 1
            if record_lineage:
                # The decision chain: every candidate value gets a verdict
                # carrying the learned trust of the sources that claimed it.
                item_claims = grouped[(subject, attribute)]
                source_trust = {
                    claim.source: accuracy[claim.source] for claim in item_claims
                }
                for candidate, candidate_probability in sorted(
                    posterior.items(), key=lambda kv: str(kv[0])
                ):
                    obs_lineage.record_fusion(
                        subject,
                        attribute,
                        candidate,
                        verdict="accepted" if candidate == value else "rejected",
                        confidence=float(candidate_probability),
                        source_trust=source_trust,
                        stage="fusion.accu",
                    )
        obs_metrics.count("fusion.accepted", len(results))
        obs_metrics.count("fusion.rejected", n_rejected)
        return results

    def _item_posterior(
        self, item_claims: Sequence[ValueClaim], accuracy: Dict[str, float]
    ) -> Dict[Value, float]:
        return _accu_item_posterior(self.n_distractors, accuracy, item_claims)


def _accu_item_posterior(
    n_distractors: int,
    accuracy: Dict[str, float],
    item_claims: Sequence[ValueClaim],
) -> Dict[Value, float]:
    """Posterior over one item's candidate values given source accuracies.

    Module-level (not a method) so process-mode :func:`pmap` can pickle it.
    """
    candidate_values = sorted({claim.value for claim in item_claims}, key=str)
    log_scores = {}
    # math.log/math.exp, not np.log/np.exp: these are scalar calls in the
    # EM hot loop, and the numpy ufunc dispatch costs ~2x per call for the
    # same IEEE-754 result.
    for candidate in candidate_values:
        log_score = 0.0
        for claim in item_claims:
            source_accuracy = accuracy[claim.source]
            if claim.value == candidate:
                log_score += math.log(source_accuracy)
            else:
                log_score += math.log((1.0 - source_accuracy) / n_distractors)
        log_scores[candidate] = log_score
    peak = max(log_scores.values())
    unnormalized = {value: math.exp(score - peak) for value, score in log_scores.items()}
    total = sum(unnormalized.values())
    return {value: score / total for value, score in unnormalized.items()}


def claims_from_sources(
    sources: Sequence,
    attributes: Sequence[str],
) -> List[ValueClaim]:
    """Build claims from structured sources, keyed by hidden world id.

    Uses each record's ``world_id`` as the subject so fusion quality can be
    scored against the ground-truth world directly (linkage quality is
    studied separately; this isolates the fusion problem, as the paper's
    experiments do).
    """
    claims: List[ValueClaim] = []
    for source in sources:
        inverse = {mapped: canonical for canonical, mapped in source.field_map.items()}
        for record in source.records:
            for field_name, value in record.fields.items():
                attribute = inverse.get(field_name, field_name)
                if attribute in attributes and not isinstance(value, list):
                    claims.append(
                        ValueClaim(
                            subject=record.world_id,
                            attribute=attribute,
                            value=value,
                            source=source.name,
                        )
                    )
    return claims
