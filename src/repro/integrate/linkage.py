"""Entity linkage — the Fig. 2 centerpiece.

"Entity linkage stands out as a critical problem to solve when we link
multiple sources, each of which often has millions of entities. ... we can
train random forest models that take attribute-wise value similarities as
features, and obtain over 99% precision and recall when linking movies and
people between Freebase and IMDb." (Sec. 2.2)

This module builds the linkage *task* (blocked candidate pairs with
similarity features and hidden oracle labels), the random-forest linker,
and the classic Fellegi–Sunter (1969) probabilistic baseline the paper
cites as the field's starting point.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.parallel import pmap
from repro.datagen.sources import SourceRecord, StructuredSource, true_match
from repro.integrate.blocking import BlockingStrategy, candidate_pairs
from repro.integrate.schema_alignment import canonicalize_record
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import BinaryConfusion
from repro.ml.similarity import feature_vector
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled

#: Canonical attributes compared by default, per entity class.
DEFAULT_COMPARE_ATTRIBUTES: Dict[str, Tuple[str, ...]] = {
    "Movie": ("name", "release_year", "genre", "runtime", "directed_by"),
    "Person": ("name", "birth_year", "birth_place"),
}


@dataclass
class LinkageTask:
    """A prepared linkage problem between two sources.

    ``labels`` are the hidden oracle labels for every candidate pair;
    training code must access them only through :meth:`oracle` so that
    label consumption can be metered (that is the x-axis of Fig. 2).
    """

    left_records: List[SourceRecord]
    right_records: List[SourceRecord]
    pairs: List[Tuple[int, int]]
    features: np.ndarray
    labels: np.ndarray
    n_true_matches_total: int
    oracle_calls_: int = field(default=0, init=False)

    def oracle(self, pair_index: int) -> int:
        """Ask the labeler for one pair's label (metered)."""
        self.oracle_calls_ += 1
        return int(self.labels[pair_index])

    def evaluate(self, predictions: Sequence[int]) -> BinaryConfusion:
        """Score predictions over candidate pairs, charging blocking misses.

        True matches that blocking never surfaced count as false negatives,
        so recall reflects end-to-end linkage quality.
        """
        confusion = BinaryConfusion.from_predictions(list(self.labels), list(predictions))
        missed_by_blocking = self.n_true_matches_total - int(self.labels.sum())
        return BinaryConfusion(
            true_positive=confusion.true_positive,
            false_positive=confusion.false_positive,
            false_negative=confusion.false_negative + missed_by_blocking,
            true_negative=confusion.true_negative,
        )


def _pair_feature_vector(
    left_canonical: Sequence[Dict[str, object]],
    right_canonical: Sequence[Dict[str, object]],
    attributes: Tuple[str, ...],
    pair: Tuple[int, int],
) -> List[float]:
    """Similarity features for one candidate pair (pmap-shippable)."""
    left_index, right_index = pair
    return feature_vector(
        left_canonical[left_index], right_canonical[right_index], attributes
    )


@profiled("linkage.build_task")
def build_linkage_task(
    left: StructuredSource,
    right: StructuredSource,
    entity_class: str,
    left_alignment: Dict[str, str],
    right_alignment: Dict[str, str],
    strategy: Optional[BlockingStrategy] = None,
    attributes: Optional[Sequence[str]] = None,
) -> LinkageTask:
    """Prepare candidate pairs, features, and oracle labels for one class."""
    strategy = strategy or BlockingStrategy()
    attributes = tuple(
        attributes or DEFAULT_COMPARE_ATTRIBUTES.get(entity_class, ("name",))
    )
    left_records = left.by_class(entity_class)
    right_records = right.by_class(entity_class)
    left_canonical = [canonicalize_record(record, left_alignment) for record in left_records]
    right_canonical = [canonicalize_record(record, right_alignment) for record in right_records]
    pairs = candidate_pairs(left_canonical, right_canonical, strategy)
    # Pairwise similarity scoring is the linkage hot loop; fan it out
    # through pmap (order-preserving, so the feature matrix rows always
    # line up with ``pairs`` regardless of mode).
    features = np.array(
        pmap(
            partial(_pair_feature_vector, left_canonical, right_canonical, attributes),
            pairs,
        )
    ) if pairs else np.zeros((0, len(attributes) + 1))
    labels = np.array(
        [1 if true_match(left_records[i], right_records[j]) else 0 for i, j in pairs],
        dtype=int,
    )
    right_ids = {record.world_id for record in right_records}
    n_true_total = sum(1 for record in left_records if record.world_id in right_ids)
    obs_metrics.count("linkage.candidate_pairs", len(pairs))
    return LinkageTask(
        left_records=left_records,
        right_records=right_records,
        pairs=pairs,
        features=features,
        labels=labels,
        n_true_matches_total=n_true_total,
    )


@dataclass
class EntityLinker:
    """Random-forest pairwise linker with a one-to-one decision step."""

    n_estimators: int = 30
    max_depth: int = 12
    threshold: float = 0.5
    enforce_one_to_one: bool = True
    seed: int = 0
    model_: Optional[RandomForestClassifier] = field(default=None, init=False, repr=False)

    @profiled("linkage.fit")
    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "EntityLinker":
        """Train on labeled candidate-pair features."""
        obs_metrics.count("linkage.training_labels", len(labels))
        self.model_ = RandomForestClassifier(
            n_estimators=self.n_estimators, max_depth=self.max_depth, seed=self.seed
        )
        self.model_.fit(features, labels)
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Match probability per candidate pair."""
        if self.model_ is None:
            raise RuntimeError("linker is not fitted")
        return self.model_.decision_scores(features)

    @profiled("linkage.predict")
    def predict(
        self, features: np.ndarray, pairs: Optional[Sequence[Tuple[int, int]]] = None
    ) -> np.ndarray:
        """0/1 match decisions; with ``pairs``, greedily enforce 1:1.

        Entity-based KGs require one node per real-world entity, so when a
        record scores above threshold against several candidates only the
        best-scoring assignment survives.
        """
        scores = self.decision_scores(features)
        decisions = (scores >= self.threshold).astype(int)
        if pairs is None or not self.enforce_one_to_one:
            return decisions
        order = np.argsort(-scores, kind="mergesort")
        used_left: Set[int] = set()
        used_right: Set[int] = set()
        final = np.zeros(len(scores), dtype=int)
        for index in order:
            if decisions[index] == 0:
                continue
            left_index, right_index = pairs[index]
            if left_index in used_left or right_index in used_right:
                continue
            final[index] = 1
            used_left.add(left_index)
            used_right.add(right_index)
        return final


@dataclass
class FellegiSunterLinker:
    """The 1969 probabilistic record-linkage baseline.

    Attribute similarities are binarized into agree/disagree; per-attribute
    ``m`` (P(agree | match)) and ``u`` (P(agree | non-match)) probabilities
    give each pair a log-likelihood-ratio weight, thresholded to decide.
    Parameters are estimated from the same labeled pairs the forest gets,
    making the comparison fair.
    """

    agreement_threshold: float = 0.85
    decision_weight: float = 0.0
    m_: Optional[np.ndarray] = field(default=None, init=False)
    u_: Optional[np.ndarray] = field(default=None, init=False)

    def fit(self, features: np.ndarray, labels: Sequence[int]) -> "FellegiSunterLinker":
        """Estimate m/u probabilities from labeled pairs (Laplace-smoothed)."""
        matrix = np.asarray(features, dtype=float)
        targets = np.asarray(labels, dtype=int)
        agreements = (matrix >= self.agreement_threshold).astype(float)
        matches = agreements[targets == 1]
        non_matches = agreements[targets == 0]
        n_features = matrix.shape[1]
        self.m_ = (matches.sum(axis=0) + 1.0) / (len(matches) + 2.0) if len(matches) else np.full(n_features, 0.5)
        self.u_ = (non_matches.sum(axis=0) + 1.0) / (len(non_matches) + 2.0) if len(non_matches) else np.full(n_features, 0.5)
        return self

    def decision_scores(self, features: np.ndarray) -> np.ndarray:
        """Match-weight per pair, squashed to (0, 1) for comparability."""
        if self.m_ is None:
            raise RuntimeError("linker is not fitted")
        agreements = (np.asarray(features, dtype=float) >= self.agreement_threshold).astype(
            float
        )
        log_agree = np.log(self.m_ / self.u_)
        log_disagree = np.log((1.0 - self.m_) / (1.0 - self.u_))
        weights = agreements @ log_agree + (1.0 - agreements) @ log_disagree
        return 1.0 / (1.0 + np.exp(-(weights - self.decision_weight)))

    def predict(self, features: np.ndarray, pairs=None) -> np.ndarray:
        """0/1 decisions at weight 0 (equal priors)."""
        return (self.decision_scores(features) >= 0.5).astype(int)


def apply_linkage(
    graph,
    matched_pairs: Sequence[Tuple[str, str]],
) -> int:
    """Merge matched entity-id pairs into the KG; returns merges applied.

    Pairs whose entities were already merged away are skipped.
    """
    merges = 0
    for keep_id, drop_id in matched_pairs:
        if graph.has_entity(keep_id) and graph.has_entity(drop_id) and keep_id != drop_id:
            graph.merge_entities(keep_id, drop_id)
            merges += 1
    obs_metrics.count("linkage.merges_applied", merges)
    return merges
