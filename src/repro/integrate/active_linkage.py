"""Active learning for entity linkage — the second curve of Fig. 2.

"Although very high precision and recall could require a large number of
training labels, applying active learning can reduce training labels by
orders of magnitude while maintaining similar linkage quality." (Sec. 2.2)

:func:`label_budget_curve` sweeps a label budget for a given selection
strategy and reports precision/recall at every budget — exactly the series
Fig. 2 plots (random sampling = the passive curve, uncertainty sampling =
the active curve shifted left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.integrate.linkage import EntityLinker, LinkageTask
from repro.ml.active import ActiveLearner, SelectionStrategy, uncertainty_sampling


@dataclass(frozen=True)
class BudgetPoint:
    """Quality at one label budget."""

    budget: int
    labels_used: int
    precision: float
    recall: float
    f1: float


def label_budget_curve(
    task: LinkageTask,
    budgets: Sequence[int],
    strategy: SelectionStrategy = uncertainty_sampling,
    linker_factory: Optional[Callable[[], EntityLinker]] = None,
    batch_size: int = 25,
    seed: int = 0,
) -> List[BudgetPoint]:
    """Precision/recall as a function of the label budget.

    For each budget, a fresh active-learning run acquires labels through
    the task's metered oracle, the resulting model scores *all* candidate
    pairs, and the decisions are evaluated against the full ground truth
    (including blocking misses).
    """
    if linker_factory is None:
        linker_factory = lambda: EntityLinker(n_estimators=20, seed=seed)
    points: List[BudgetPoint] = []
    for budget in budgets:
        task.oracle_calls_ = 0
        learner = ActiveLearner(
            model_factory=linker_factory,
            strategy=strategy,
            batch_size=min(batch_size, max(budget // 4, 1)),
            seed=seed,
        )
        model = learner.run(
            task.features, oracle=task.oracle, label_budget=budget
        )
        if isinstance(model, EntityLinker):
            predictions = model.predict(task.features, pairs=task.pairs)
        else:  # degenerate single-class model from a tiny seed batch
            predictions = model.predict(task.features)
        confusion = task.evaluate(list(predictions))
        points.append(
            BudgetPoint(
                budget=budget,
                labels_used=task.oracle_calls_,
                precision=confusion.precision,
                recall=confusion.recall,
                f1=confusion.f1,
            )
        )
    return points


def labels_to_reach(
    points: Sequence[BudgetPoint], target_f1: float
) -> Optional[int]:
    """Smallest budget reaching a target F1, or None if never reached.

    Comparing this across strategies quantifies the Fig. 2 claim of
    orders-of-magnitude label savings.
    """
    reached = [point.budget for point in points if point.f1 >= target_f1]
    return min(reached) if reached else None
