"""The cross-partition exchange phase of a partition-parallel build.

Partition workers (:func:`repro.core.partition.run_partition`) are pure:
they transform, extract, block, link, and clean only what lives inside
their partition, and record nothing.  This module is where the shards
meet, and it is deliberately the *only* place cross-record decisions are
made:

* **re-block boundary candidates** — per-partition blocking key maps are
  merged into global blocks; the ``max_block_size`` cap is applied to the
  *global* block sizes, and candidate pairs whose members live in
  different partitions are scored here with the same pure
  :func:`~repro.core.partition.pair_score` the partitions used locally;
* **merge EM sufficient statistics** — the Accu source-trust EM runs its
  E-step per logical shard, and the M-step merges each shard's
  sufficient statistics (posterior mass + claim counts per source) with
  ``math.fsum`` over globally sorted data items, so the learned source
  accuracies — and hence the value posteriors — are bit-identical for
  every shard count;
* **stitch columnar fragments** — each partition's ``TermDict``/SPO id
  columns are decoded through a per-fragment id remap (subject ids
  rewritten to their linked cluster roots) into one global row set, and
  the fused survivors are bulk-loaded into a single
  :class:`~repro.core.graph.KnowledgeGraph`.

Every ledger event (cleaning rejections, linkage merges, fusion verdicts,
the observation batch of the final assembly) is recorded here in globally
sorted order, which is what makes the lineage ledger byte-identical across
partition counts.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

import numpy as np

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.parallel import pmap
from repro.core.partition import (
    CanonicalRecord,
    PartitionResult,
    _score_pair,
    ordered_pair,
)
from repro.core.triple import Provenance, Triple, Value
from repro.integrate.blocking import BlockingStrategy
from repro.integrate.fusion import FusionResult, ValueClaim, _accu_item_posterior
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics
from repro.obs.profiling import profiled

#: Extractor tag recorded in provenance for partition-extracted claims.
EXTRACTOR = "partition"

ItemKey = Tuple[str, str]


@dataclass
class ExchangeOutcome:
    """What the exchange produced: the graph plus its decision summary."""

    graph: KnowledgeGraph
    fusion_results: List[FusionResult]
    source_accuracy: Dict[str, float]
    clusters: Dict[str, List[str]]
    stats: Dict[str, float]


# ---------------------------------------------------------------------------
# deterministic union-find


class _UnionFind:
    """Union-find whose component roots are the lexicographic minima.

    The final components of a union-find depend only on the edge *set*,
    and rooting each component at its smallest member removes the last
    trace of processing order — so the cluster map is identical no matter
    how the match edges were discovered or ordered.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, str] = {}

    def find(self, item: str) -> str:
        parent = self._parent
        root = item
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(item, item) != item:
            parent[item], item = root, parent[item]
        return root

    def union(self, left: str, right: str) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        keep, drop = sorted((left_root, right_root))
        self._parent[drop] = keep


# ---------------------------------------------------------------------------
# sharded Accu fusion: E-step per shard, sufficient statistics merged


def _shard_em_stats(
    n_distractors: int,
    accuracy: Dict[str, float],
    items: Sequence[Tuple[ItemKey, List[ValueClaim]]],
):
    """One shard's E-step pass: posteriors + per-source sufficient stats.

    Returns ``(posteriors, contributions, counts)`` where ``contributions``
    is a list of ``((subject, attribute), source, posterior_mass)`` rows —
    one per (item, source) pair, accumulated in canonical claim order —
    and ``counts`` is claims seen per source.  Module-level so process-mode
    :func:`pmap` can pickle it.
    """
    posteriors = []
    contributions: List[Tuple[ItemKey, str, float]] = []
    counts: Dict[str, int] = {}
    for item_key, item_claims in items:
        posterior = _accu_item_posterior(n_distractors, accuracy, item_claims)
        posteriors.append(posterior)
        mass: Dict[str, float] = {}
        for claim in item_claims:
            mass[claim.source] = mass.get(claim.source, 0.0) + posterior.get(
                claim.value, 0.0
            )
            counts[claim.source] = counts.get(claim.source, 0) + 1
        for source in sorted(mass):
            contributions.append((item_key, source, mass[source]))
    return posteriors, contributions, counts


def _merge_em_statistics(
    shard_stats: Sequence[Tuple[list, list, dict]], sources: Sequence[str]
) -> Tuple[Dict[str, float], Dict[str, int]]:
    """Merge per-shard EM sufficient statistics into global M-step inputs.

    Each (item, source) contribution lives in exactly one shard (items are
    atomic), so re-sorting the union by data item and summing with
    ``math.fsum`` yields totals that are bit-identical no matter how many
    shards the items were split across — the invariant that makes fused
    posteriors partition-count-invariant.
    """
    per_source: Dict[str, List[Tuple[ItemKey, float]]] = {
        source: [] for source in sources
    }
    counts: Dict[str, int] = {source: 0 for source in sources}
    for _, contributions, shard_counts in shard_stats:
        for item_key, source, mass in contributions:
            per_source[source].append((item_key, mass))
        for source, count in shard_counts.items():
            counts[source] += count
    totals = {
        source: math.fsum(mass for _, mass in sorted(rows))
        for source, rows in per_source.items()
    }
    return totals, counts


def fuse_sharded(
    claims: Sequence[ValueClaim],
    n_shards: int,
    *,
    n_distractors: int = 10,
    n_iterations: int = 10,
    initial_accuracy: float = 0.8,
    min_accuracy: float = 0.05,
    max_accuracy: float = 0.99,
) -> Tuple[List[FusionResult], Dict[str, float]]:
    """Accu-style EM fusion with the E-step sharded over data items.

    Same model, update rule, winner selection, lineage events, and
    counters as :class:`repro.integrate.fusion.AccuFusion`, but each EM
    iteration computes per-shard sufficient statistics and merges them via
    :func:`_merge_em_statistics` — the result is independent of
    ``n_shards`` down to the last bit (the claim sort below makes it
    independent of claim input order too).
    """
    claims = sorted(
        claims,
        key=lambda claim: (
            claim.subject,
            claim.attribute,
            claim.source,
            type(claim.value).__name__,
            str(claim.value),
        ),
    )
    obs_metrics.count("fusion.claims", len(claims))
    grouped: Dict[ItemKey, List[ValueClaim]] = defaultdict(list)
    for claim in claims:
        grouped[(claim.subject, claim.attribute)].append(claim)
    obs_metrics.count("fusion.data_items", len(grouped))
    items = sorted(grouped.items())
    n_shards = max(1, n_shards)
    shards: List[List[Tuple[ItemKey, List[ValueClaim]]]] = [
        [] for _ in range(n_shards)
    ]
    for item in items:
        shards[crc32(item[0][0].encode("utf-8")) % n_shards].append(item)
    sources = sorted({claim.source for claim in claims})
    accuracy = {source: initial_accuracy for source in sources}
    shard_stats: List[Tuple[list, list, dict]] = []
    for _ in range(n_iterations):
        shard_stats = pmap(
            partial(_shard_em_stats, n_distractors, accuracy), shards
        )
        totals, counts = _merge_em_statistics(shard_stats, sources)
        for source in sources:
            if counts[source]:
                estimate = totals[source] / counts[source]
                accuracy[source] = float(
                    np.clip(estimate, min_accuracy, max_accuracy)
                )
    posteriors: Dict[ItemKey, Dict[Value, float]] = {}
    for shard, (shard_posteriors, _, _) in zip(shards, shard_stats):
        for (item_key, _), posterior in zip(shard, shard_posteriors):
            posteriors[item_key] = posterior
    results: List[FusionResult] = []
    n_rejected = 0
    record_lineage = obs_lineage.lineage_enabled()
    for (subject, attribute), posterior in sorted(posteriors.items()):
        value, probability = max(
            posterior.items(), key=lambda entry: (entry[1], str(entry[0]))
        )
        results.append(
            FusionResult(
                subject=subject,
                attribute=attribute,
                value=value,
                confidence=float(probability),
                n_claims=len(grouped[(subject, attribute)]),
            )
        )
        n_rejected += len(posterior) - 1
        if record_lineage:
            item_claims = grouped[(subject, attribute)]
            source_trust = {
                claim.source: accuracy[claim.source] for claim in item_claims
            }
            for candidate, candidate_probability in sorted(
                posterior.items(), key=lambda kv: str(kv[0])
            ):
                obs_lineage.record_fusion(
                    subject,
                    attribute,
                    candidate,
                    verdict="accepted" if candidate == value else "rejected",
                    confidence=float(candidate_probability),
                    source_trust=source_trust,
                    stage="fusion.accu",
                )
    obs_metrics.count("fusion.accepted", len(results))
    obs_metrics.count("fusion.rejected", n_rejected)
    return results, dict(accuracy)


# ---------------------------------------------------------------------------
# fragment stitching


def stitch_fragments(
    results: Sequence[PartitionResult], root_of: Dict[str, str]
) -> set:
    """Merge per-partition columnar fragments into one global row set.

    Each fragment's term ids are remapped once per distinct id (memoized
    decode + cluster-root rewrite for subject terms), then its SPO rows
    are emitted in the merged value space — the id-remap stitch that lets
    partitions build their columns independently.
    """
    rows = set()
    for result in results:
        terms = result.fragment_terms
        subject_col, predicate_col, object_col = result.fragment_columns
        subject_map: Dict[int, str] = {}
        term_map: Dict[int, Value] = {}
        for s_id, p_id, o_id in zip(subject_col, predicate_col, object_col):
            subject = subject_map.get(s_id)
            if subject is None:
                raw = terms[s_id]
                subject = root_of.get(raw, raw)  # type: ignore[arg-type]
                subject_map[s_id] = subject
            predicate = term_map.get(p_id)
            if predicate is None:
                predicate = term_map[p_id] = terms[p_id]
            obj = term_map.get(o_id)
            if obj is None:
                obj = term_map[o_id] = terms[o_id]
            rows.add((subject, predicate, obj))
    return rows


# ---------------------------------------------------------------------------
# the exchange itself


@profiled("exchange")
def exchange(
    results: Sequence[PartitionResult],
    *,
    strategy: BlockingStrategy,
    match_threshold: float = 0.85,
    backend: str = "columnar",
    graph_name: str = "kg",
    n_distractors: int = 10,
    n_iterations: int = 10,
    initial_accuracy: float = 0.8,
    min_accuracy: float = 0.05,
    max_accuracy: float = 0.99,
) -> ExchangeOutcome:
    """Deterministically combine partition results into one graph.

    Every step works on merged, globally sorted data, so the outcome —
    graph state, provenance, lineage ledger — depends only on the union
    of the partition results, never on how records were sharded.
    """
    results = sorted(results, key=lambda result: result.index)
    records: Dict[str, CanonicalRecord] = {}
    partition_of: Dict[str, int] = {}
    for result in results:
        for record in result.records:
            records[record.record_id] = record
            partition_of[record.record_id] = result.index

    # -- re-block: merge key maps, cap on *global* block sizes ------------
    blocks: Dict[str, List[str]] = defaultdict(list)
    for result in results:
        for record_id, keys in result.keys.items():
            for key in keys:
                blocks[key].append(record_id)
    local_scores: Dict[Tuple[str, str], float] = {}
    for result in results:
        local_scores.update(result.scores)
    eligible = set()
    for key in sorted(blocks):
        members = sorted(blocks[key])
        if len(members) > strategy.max_block_size:
            continue
        for i, left_id in enumerate(members):
            left = records[left_id]
            for right_id in members[i + 1 :]:
                if left.entity_class != records[right_id].entity_class:
                    continue
                eligible.add(ordered_pair(left_id, right_id))

    # -- score boundary pairs (same pure scorer the partitions used) ------
    boundary = sorted(pair for pair in eligible if pair not in local_scores)
    boundary_scores = pmap(
        _score_pair,
        [(records[left_id], records[right_id]) for left_id, right_id in boundary],
        mode="process",
    )
    scores = dict(local_scores)
    scores.update(zip(boundary, boundary_scores))

    # -- link: threshold + union-find, roots = lexicographic minima -------
    union_find = _UnionFind()
    n_matches = 0
    for pair in sorted(eligible):
        if scores[pair] >= match_threshold:
            union_find.union(*pair)
            n_matches += 1
    root_of = {record_id: union_find.find(record_id) for record_id in records}
    clusters: Dict[str, List[str]] = defaultdict(list)
    for record_id in sorted(records):
        clusters[root_of[record_id]].append(record_id)

    # -- lineage: cleaning rejections, then merges, in sorted order -------
    rejections = sorted(
        (
            (record_id, attribute, value, reason)
            for result in results
            for record_id, attribute, value, reason in result.rejections
        ),
        key=lambda row: (row[0], row[1], str(row[2]), row[3]),
    )
    for record_id, attribute, value, reason in rejections:
        obs_lineage.record_rejection(
            record_id, attribute, value, reason=reason, stage="partition.clean"
        )
    claim_triples: Dict[str, set] = defaultdict(set)
    for result in results:
        for claim in result.claims:
            claim_triples[claim.subject].add((claim.attribute, claim.value))
    n_merges = 0
    for root in sorted(clusters):
        for member in clusters[root]:
            if member == root:
                continue
            obs_lineage.record_merge(
                root,
                member,
                n_rewritten=len(claim_triples[member]),
                stage="exchange.link",
            )
            n_merges += 1

    # -- fuse: claims rewritten to cluster roots, EM stats merged ---------
    rewritten = [
        ValueClaim(
            subject=root_of[claim.subject],
            attribute=claim.attribute,
            value=claim.value,
            source=claim.source,
        )
        for result in results
        for claim in result.claims
    ]
    fusion_results, source_accuracy = fuse_sharded(
        rewritten,
        n_shards=len(results),
        n_distractors=n_distractors,
        n_iterations=n_iterations,
        initial_accuracy=initial_accuracy,
        min_accuracy=min_accuracy,
        max_accuracy=max_accuracy,
    )
    winners = {
        (result.subject, result.attribute): result.value
        for result in fusion_results
    }

    # -- stitch fragments, keep fused survivors ---------------------------
    stitched = stitch_fragments(results, root_of)
    final_rows = sorted(
        (row for row in stitched if winners.get((row[0], row[1])) == row[2]),
        key=lambda row: (row[0], row[1], type(row[2]).__name__, str(row[2])),
    )

    # -- assemble the graph (bulk-load fast path on the empty store) ------
    ontology = Ontology(name="sources")
    for entity_class in sorted(
        {record.entity_class for record in records.values()}
    ):
        ontology.add_class(entity_class)
    graph = KnowledgeGraph(ontology=ontology, name=graph_name, backend=backend)
    for root in sorted(clusters):
        root_record = records[root]
        names = sorted(
            {
                records[member].name
                for member in clusters[root]
                if records[member].name
            }
        )
        name = root_record.name or (names[0] if names else root)
        graph.add_entity(
            root,
            name,
            root_record.entity_class,
            aliases=[alias for alias in names if alias != name],
        )
    provenance_sources: Dict[Tuple[str, str, Value], List[str]] = defaultdict(list)
    for claim in sorted(
        rewritten,
        key=lambda claim: (
            claim.subject,
            claim.attribute,
            type(claim.value).__name__,
            str(claim.value),
            claim.source,
        ),
    ):
        provenance_sources[(claim.subject, claim.attribute, claim.value)].append(
            claim.source
        )
    items = []
    for subject, predicate, obj in final_rows:
        triple = Triple(subject, predicate, obj)
        for source in provenance_sources[(subject, predicate, obj)]:
            items.append(
                (triple, Provenance(source=source, extractor=EXTRACTOR))
            )
    graph.add_triples_batch(items)

    stats = {
        "n_partitions": len(results),
        "n_records": len(records),
        "n_eligible_pairs": len(eligible),
        "n_boundary_pairs": len(boundary),
        "n_matches": n_matches,
        "n_merges": n_merges,
        "n_entities": len(clusters),
        "n_claims": len(rewritten),
        "n_data_items": len(winners),
        "n_triples": len(final_rows),
        "n_rejections": len(rejections),
    }
    for metric, value in stats.items():
        obs_metrics.gauge(f"exchange.{metric}", value)
    return ExchangeOutcome(
        graph=graph,
        fusion_results=fusion_results,
        source_accuracy=source_accuracy,
        clusters=dict(clusters),
        stats=stats,
    )
