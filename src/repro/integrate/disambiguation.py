"""Entity disambiguation: resolving a mention among homonym candidates.

"This problem is even more tricky as different entities may share the same
name (thus entity disambiguation)." (Sec. 2.2)

A mention is a surface name plus whatever context the mentioning source
offers (attribute values, related entity names).  The disambiguator scores
each same-named KG candidate by how well the context agrees with the
candidate's own triples, combining:

* name similarity (handles variant surface forms),
* attribute-value agreement (a mention with ``birth_year=1975`` strongly
  prefers the candidate born in 1975),
* relational overlap (context names appearing among the candidate's
  graph neighbors).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.graph import Entity, KnowledgeGraph
from repro.ml.similarity import value_similarity


@dataclass(frozen=True)
class Candidate:
    """One scored disambiguation candidate."""

    entity_id: str
    score: float
    name_score: float
    context_score: float


@dataclass
class EntityDisambiguator:
    """Score and rank same-named candidates for a contextual mention."""

    graph: KnowledgeGraph
    name_weight: float = 0.4
    context_weight: float = 0.6
    min_score: float = 0.3

    def candidates(
        self,
        mention: str,
        context: Optional[Dict[str, object]] = None,
        entity_class: Optional[str] = None,
    ) -> List[Candidate]:
        """All candidates for the mention, best first.

        ``context`` maps attribute names to the mention's values; related
        entities can be passed as their names (strings).
        """
        context = context or {}
        scored: List[Candidate] = []
        for entity in self.graph.find_by_name(mention):
            if entity_class is not None and not self.graph.ontology.is_subclass_of(
                entity.entity_class, entity_class
            ):
                continue
            name_score = max(
                value_similarity(mention, surface) for surface in entity.all_names()
            )
            context_score = self._context_agreement(entity, context)
            score = self.name_weight * name_score + self.context_weight * context_score
            scored.append(
                Candidate(
                    entity_id=entity.entity_id,
                    score=score,
                    name_score=name_score,
                    context_score=context_score,
                )
            )
        scored.sort(key=lambda candidate: (-candidate.score, candidate.entity_id))
        return scored

    def resolve(
        self,
        mention: str,
        context: Optional[Dict[str, object]] = None,
        entity_class: Optional[str] = None,
        margin: float = 0.05,
    ) -> Optional[str]:
        """The winning entity id, or None when the mention stays ambiguous.

        Resolution requires the best candidate to clear ``min_score`` and,
        when a runner-up exists, to win by at least ``margin`` — refusing
        to guess is what keeps linkage precision at production level.
        """
        ranked = self.candidates(mention, context=context, entity_class=entity_class)
        if not ranked or ranked[0].score < self.min_score:
            return None
        if len(ranked) > 1 and ranked[0].score - ranked[1].score < margin:
            return None
        return ranked[0].entity_id

    # ------------------------------------------------------------------

    def _context_agreement(self, entity: Entity, context: Dict[str, object]) -> float:
        if not context:
            return 0.5  # no evidence either way
        scores: List[float] = []
        neighbor_names = {
            self.graph.entity(other).name.lower()
            for _relation, other, _outgoing in self.graph.neighbors(entity.entity_id)
            if self.graph.has_entity(other)
        }
        for attribute, mention_value in context.items():
            candidate_values = self.graph.objects(entity.entity_id, attribute)
            if candidate_values:
                resolved = []
                for value in candidate_values:
                    if isinstance(value, str) and self.graph.has_entity(value):
                        resolved.append(self.graph.entity(value).name)
                    else:
                        resolved.append(value)
                scores.append(
                    max(value_similarity(mention_value, value) for value in resolved)
                )
            elif isinstance(mention_value, str) and mention_value.lower() in neighbor_names:
                scores.append(1.0)
            else:
                scores.append(0.0)
        return sum(scores) / len(scores)
