"""Blocking: taming the quadratic candidate space of entity linkage.

Sources in Sec. 2.2 have "millions of entities or more", so linkage never
scores all pairs; records are grouped by cheap keys and only within-block
pairs are scored.  The recall cost of aggressive blocking vs the candidate
reduction is one of the DESIGN.md ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Sequence, Set, Tuple

from repro.core.parallel import pmap
from repro.ml.similarity import tokenize

KeyFunction = Callable[[Dict[str, object]], List[str]]


def name_token_keys(record: Dict[str, object]) -> List[str]:
    """One key per name token — tolerant of word reordering."""
    name = str(record.get("name", ""))
    return [f"tok:{token}" for token in set(tokenize(name))]


def name_prefix_key(record: Dict[str, object]) -> List[str]:
    """First 3 characters of the normalized name — cheap but brittle."""
    tokens = tokenize(str(record.get("name", "")))
    if not tokens:
        return []
    return [f"pre:{tokens[0][:3]}"]


def year_keys(record: Dict[str, object]) -> List[str]:
    """Blocking on any year-like numeric attribute, with +/-1 tolerance."""
    keys = []
    for attribute in ("release_year", "birth_year"):
        value = record.get(attribute)
        if value is None:
            continue
        try:
            year = int(value)
        except (TypeError, ValueError):
            continue
        for tolerance in (-1, 0, 1):
            keys.append(f"yr:{attribute}:{year + tolerance}")
    return keys


@dataclass
class BlockingStrategy:
    """A union of key functions; records sharing any key become candidates."""

    key_functions: Sequence[KeyFunction] = (name_token_keys,)
    max_block_size: int = 200

    def keys(self, record: Dict[str, object]) -> List[str]:
        """All blocking keys of one canonical record."""
        keys: List[str] = []
        for function in self.key_functions:
            keys.extend(function(record))
        return keys


def _record_keys(strategy: BlockingStrategy, record: Dict[str, object]) -> List[str]:
    """Module-level key extraction so :func:`pmap` can ship it to workers."""
    return strategy.keys(record)


def candidate_pairs(
    left_records: Sequence[Dict[str, object]],
    right_records: Sequence[Dict[str, object]],
    strategy: BlockingStrategy,
) -> List[Tuple[int, int]]:
    """Index pairs (left_index, right_index) sharing a blocking key.

    Oversized blocks (beyond ``strategy.max_block_size`` on either side)
    are dropped — the classic guard against stop-word-like keys.

    Key extraction — the per-record tokenize/normalize work — fans out
    through :func:`repro.core.parallel.pmap`; block assembly stays serial
    and keyed on record order, so results are mode-independent.
    """
    keys_of = partial(_record_keys, strategy)
    left_keys = pmap(keys_of, left_records)
    right_keys = pmap(keys_of, right_records)
    left_blocks: Dict[str, List[int]] = {}
    for index, keys in enumerate(left_keys):
        for key in keys:
            left_blocks.setdefault(key, []).append(index)
    right_blocks: Dict[str, List[int]] = {}
    for index, keys in enumerate(right_keys):
        for key in keys:
            right_blocks.setdefault(key, []).append(index)
    pairs: Set[Tuple[int, int]] = set()
    for key, left_indexes in left_blocks.items():
        right_indexes = right_blocks.get(key)
        if not right_indexes:
            continue
        if (
            len(left_indexes) > strategy.max_block_size
            or len(right_indexes) > strategy.max_block_size
        ):
            continue
        for left_index in left_indexes:
            for right_index in right_indexes:
                pairs.add((left_index, right_index))
    return sorted(pairs)


def blocking_quality(
    pairs: Sequence[Tuple[int, int]],
    true_pairs: Set[Tuple[int, int]],
    n_left: int,
    n_right: int,
) -> Dict[str, float]:
    """Pair completeness (recall of true matches) and reduction ratio."""
    pair_set = set(pairs)
    completeness = (
        len(pair_set & true_pairs) / len(true_pairs) if true_pairs else 1.0
    )
    total = n_left * n_right
    reduction = 1.0 - len(pair_set) / total if total else 0.0
    return {"pair_completeness": completeness, "reduction_ratio": reduction}
