"""Schema alignment: mapping source fields to canonical attributes.

Two regimes, matching the paper's split:

* in production, "schema alignment is mostly done manually by professional
  taxonomists" — that is the curated :class:`~repro.transform.mapping.SchemaMapping`;
* the *automatic* matcher implemented here combines field-name similarity,
  value-type compatibility, and value overlap; it is good but not 100%,
  which is exactly why Sec. 5 files automatic schema alignment under
  "not-yet successful".

:func:`canonicalize_record` projects a source record into canonical
attribute space given an alignment — the precondition for comparing records
across sources in entity linkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datagen.sources import SourceRecord, StructuredSource
from repro.ml.similarity import jaro_winkler, token_jaccard


@dataclass(frozen=True)
class AlignmentResult:
    """One proposed field-to-attribute correspondence."""

    source_field: str
    attribute: str
    score: float


def _is_numeric_value(value: object) -> bool:
    if isinstance(value, bool):
        return False
    if isinstance(value, (int, float)):
        return True
    try:
        float(str(value))
        return True
    except (TypeError, ValueError):
        return False


@dataclass
class SchemaMatcher:
    """Automatic field matcher over name, type, and value-overlap signals."""

    min_score: float = 0.45
    name_weight: float = 0.5
    type_weight: float = 0.2
    overlap_weight: float = 0.3

    def align(
        self,
        source: StructuredSource,
        canonical_attributes: Sequence[str],
        reference_values: Optional[Dict[str, List[object]]] = None,
    ) -> List[AlignmentResult]:
        """Propose one attribute per source field (1:1, greedy by score).

        ``reference_values`` optionally supplies known values per canonical
        attribute (e.g. from an existing KG) for the value-overlap signal.
        """
        field_values: Dict[str, List[object]] = {}
        for record in source.records:
            for field_name, value in record.fields.items():
                field_values.setdefault(field_name, []).append(value)
        scored: List[AlignmentResult] = []
        for field_name, values in sorted(field_values.items()):
            for attribute in canonical_attributes:
                score = self._score(field_name, values, attribute, reference_values)
                if score >= self.min_score:
                    scored.append(
                        AlignmentResult(source_field=field_name, attribute=attribute, score=score)
                    )
        scored.sort(key=lambda result: -result.score)
        chosen: List[AlignmentResult] = []
        used_fields, used_attributes = set(), set()
        for result in scored:
            if result.source_field in used_fields or result.attribute in used_attributes:
                continue
            chosen.append(result)
            used_fields.add(result.source_field)
            used_attributes.add(result.attribute)
        return sorted(chosen, key=lambda result: result.source_field)

    def _score(
        self,
        field_name: str,
        values: List[object],
        attribute: str,
        reference_values: Optional[Dict[str, List[object]]],
    ) -> float:
        normalized_field = field_name.replace("_", " ").lower()
        normalized_attribute = attribute.replace("_", " ").lower()
        name_similarity = max(
            jaro_winkler(normalized_field, normalized_attribute),
            token_jaccard(normalized_field, normalized_attribute),
        )
        sample = values[:50]
        field_numeric = sum(1 for value in sample if _is_numeric_value(value)) / max(
            len(sample), 1
        )
        type_score = 1.0
        overlap_score = 0.0
        if reference_values and attribute in reference_values:
            reference_sample = reference_values[attribute][:200]
            reference_numeric = sum(
                1 for value in reference_sample if _is_numeric_value(value)
            ) / max(len(reference_sample), 1)
            type_score = 1.0 - abs(field_numeric - reference_numeric)
            reference_set = {str(value).lower() for value in reference_sample}
            if reference_set:
                hits = sum(1 for value in sample if str(value).lower() in reference_set)
                overlap_score = hits / max(len(sample), 1)
        return (
            self.name_weight * name_similarity
            + self.type_weight * type_score
            + self.overlap_weight * overlap_score
        )


def canonicalize_record(
    record: SourceRecord, field_to_attribute: Dict[str, str]
) -> Dict[str, object]:
    """Project a record into canonical attribute space.

    Split person names (``first_name``/``last_name``) are re-joined into
    ``name``; unmapped fields are dropped.
    """
    canonical: Dict[str, object] = {}
    for field_name, value in record.fields.items():
        attribute = field_to_attribute.get(field_name)
        if attribute is not None:
            canonical[attribute] = value
    if "name" not in canonical:
        first = record.fields.get("first_name")
        last = record.fields.get("last_name")
        if first or last:
            canonical["name"] = f"{first or ''} {last or ''}".strip()
    return canonical


def alignment_as_map(results: Sequence[AlignmentResult]) -> Dict[str, str]:
    """Alignment results as a plain field -> attribute dict."""
    return {result.source_field: result.attribute for result in results}


def oracle_alignment(source: StructuredSource) -> Dict[str, str]:
    """Ground-truth alignment from the generator's own field map.

    This is the "professional taxonomist" stand-in: 100% correct, used by
    the production-path experiments; the automatic :class:`SchemaMatcher`
    is evaluated against it.
    """
    mapping = {mapped: canonical for canonical, mapped in source.field_map.items()}
    for field_name in source.field_names():
        mapping.setdefault(field_name, field_name)
    return mapping
