"""Core knowledge-graph data model.

This subpackage realizes the paper's two structural generations:

* :class:`~repro.core.graph.KnowledgeGraph` — the entity-based KG of Sec. 2
  (nodes are identified entities, edges are ontology relations);
* :class:`~repro.core.textrich.TextRichKG` — the text-rich, mostly bipartite
  KG of Sec. 3 (topic entities connected to free-text attribute values).

Both share the triple/ontology/provenance vocabulary defined here, plus a
pattern/path query engine and the construction-pipeline framework that the
Fig. 4 architectures are assembled from.
"""

from repro.core.triple import Provenance, Triple
from repro.core.ontology import Ontology, OntologyError, Relation
from repro.core.graph import Entity, KnowledgeGraph
from repro.core.textrich import AttributeValue, TextRichKG
from repro.core.query import PathQuery, TriplePattern, match_pattern
from repro.core.pipeline import ConstructionPipeline, PipelineContext, PipelineStage, StageReport
from repro.core.lifecycle import CycleStage
from repro.core.io import load_graph, load_text_rich, save_graph, save_text_rich
from repro.core.panel import KnowledgePanel, render_panel

__all__ = [
    "Provenance",
    "Triple",
    "Ontology",
    "OntologyError",
    "Relation",
    "Entity",
    "KnowledgeGraph",
    "AttributeValue",
    "TextRichKG",
    "PathQuery",
    "TriplePattern",
    "match_pattern",
    "ConstructionPipeline",
    "PipelineContext",
    "PipelineStage",
    "StageReport",
    "CycleStage",
    "load_graph",
    "load_text_rich",
    "save_graph",
    "save_text_rich",
    "KnowledgePanel",
    "render_panel",
]
