"""Ontology and taxonomy.

"The data instances in a KG follow the ontology as the schema ... The
ontology describes entity classes, often organized in a hierarchical
structure and also called taxonomy, and meaningful relationships between
classes." (Sec. 1)

Entity-based KGs (Sec. 2) use a *manually defined, clean* ontology — a small
number of classes and relations with crisp domains and ranges.  Text-rich
KGs (Sec. 3) use a much larger, noisier taxonomy, with overlapping types and
free-text attributes; the same class supports both by allowing classes and
relations to be added dynamically and by making validation advisory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.core.triple import Triple


class OntologyError(ValueError):
    """Raised when a schema operation violates ontology consistency."""


@dataclass(frozen=True)
class Relation:
    """A typed relationship between a domain class and a range.

    ``range_class`` is an entity class name for object relations, or one of
    the literal markers ``"string"`` / ``"number"`` for attribute relations.
    """

    name: str
    domain: str
    range_class: str
    functional: bool = False

    @property
    def is_attribute(self) -> bool:
        """True when the range is a literal rather than an entity class."""
        return self.range_class in ("string", "number")


class Ontology:
    """Classes organized in a hierarchy plus relations between classes."""

    def __init__(self, name: str = "ontology"):
        self.name = name
        self._parents: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._relations: Dict[str, Relation] = {}

    # ------------------------------------------------------------------
    # classes / taxonomy

    def add_class(self, class_name: str, parent: Optional[str] = None) -> None:
        """Register a class, optionally under a parent class.

        Re-adding an existing class with the same parent is a no-op;
        re-parenting must go through :meth:`move_class`.
        """
        if not class_name:
            raise OntologyError("class name must be non-empty")
        if parent is not None and parent not in self._parents:
            raise OntologyError(f"unknown parent class: {parent!r}")
        if class_name in self._parents:
            if self._parents[class_name] != parent:
                raise OntologyError(
                    f"class {class_name!r} already exists under "
                    f"{self._parents[class_name]!r}; use move_class to re-parent"
                )
            return
        self._parents[class_name] = parent
        self._children.setdefault(class_name, [])
        if parent is not None:
            self._children.setdefault(parent, []).append(class_name)

    def move_class(self, class_name: str, new_parent: Optional[str]) -> None:
        """Re-parent a class (taxonomy enrichment uses this)."""
        if class_name not in self._parents:
            raise OntologyError(f"unknown class: {class_name!r}")
        if new_parent is not None:
            if new_parent not in self._parents:
                raise OntologyError(f"unknown parent class: {new_parent!r}")
            if new_parent == class_name or class_name in self.ancestors(new_parent):
                raise OntologyError("re-parenting would create a cycle")
        old_parent = self._parents[class_name]
        if old_parent is not None:
            self._children[old_parent].remove(class_name)
        self._parents[class_name] = new_parent
        if new_parent is not None:
            self._children[new_parent].append(class_name)

    def has_class(self, class_name: str) -> bool:
        """True when the class is registered."""
        return class_name in self._parents

    def parent(self, class_name: str) -> Optional[str]:
        """Immediate parent class (``None`` at a root)."""
        if class_name not in self._parents:
            raise OntologyError(f"unknown class: {class_name!r}")
        return self._parents[class_name]

    def children(self, class_name: str) -> List[str]:
        """Immediate subclasses."""
        if class_name not in self._parents:
            raise OntologyError(f"unknown class: {class_name!r}")
        return list(self._children[class_name])

    def ancestors(self, class_name: str) -> List[str]:
        """Ancestor chain from immediate parent to the root."""
        chain = []
        current = self.parent(class_name)
        while current is not None:
            chain.append(current)
            current = self._parents[current]
        return chain

    def descendants(self, class_name: str) -> List[str]:
        """All transitive subclasses (preorder)."""
        if class_name not in self._parents:
            raise OntologyError(f"unknown class: {class_name!r}")
        result: List[str] = []
        stack = list(self._children[class_name])[::-1]
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(self._children[node]))
        return result

    def is_subclass_of(self, class_name: str, candidate_ancestor: str) -> bool:
        """True when ``class_name`` equals or descends from the candidate."""
        if class_name == candidate_ancestor:
            return True
        return candidate_ancestor in self.ancestors(class_name)

    def classes(self) -> Iterator[str]:
        """Iterate over all class names."""
        return iter(sorted(self._parents))

    def roots(self) -> List[str]:
        """Classes without a parent."""
        return sorted(name for name, parent in self._parents.items() if parent is None)

    def depth(self, class_name: str) -> int:
        """Distance from the class to its root (root depth = 0)."""
        return len(self.ancestors(class_name))

    def lowest_common_ancestor(self, left: str, right: str) -> Optional[str]:
        """Deepest class that is an ancestor-or-self of both arguments."""
        left_chain = [left] + self.ancestors(left)
        right_chain = set([right] + self.ancestors(right))
        for candidate in left_chain:
            if candidate in right_chain:
                return candidate
        return None

    # ------------------------------------------------------------------
    # relations

    def add_relation(
        self,
        name: str,
        domain: str,
        range_class: str,
        functional: bool = False,
    ) -> Relation:
        """Register a relation; domain (and entity ranges) must be classes."""
        if domain not in self._parents:
            raise OntologyError(f"unknown domain class: {domain!r}")
        if range_class not in ("string", "number") and range_class not in self._parents:
            raise OntologyError(f"unknown range class: {range_class!r}")
        if name in self._relations:
            raise OntologyError(f"relation {name!r} already defined")
        relation = Relation(name=name, domain=domain, range_class=range_class, functional=functional)
        self._relations[name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        """Look up a relation by name."""
        if name not in self._relations:
            raise OntologyError(f"unknown relation: {name!r}")
        return self._relations[name]

    def has_relation(self, name: str) -> bool:
        """True when the relation is registered."""
        return name in self._relations

    def relations(self) -> Iterator[Relation]:
        """Iterate over relations sorted by name."""
        return iter(sorted(self._relations.values(), key=lambda r: r.name))

    def relations_for_class(self, class_name: str) -> List[Relation]:
        """Relations whose domain is the class or one of its ancestors."""
        applicable_domains = set([class_name] + self.ancestors(class_name))
        return [
            relation
            for relation in self.relations()
            if relation.domain in applicable_domains
        ]

    # ------------------------------------------------------------------
    # validation

    def validate_triple(self, triple: Triple, subject_class: str) -> List[str]:
        """Advisory validation: list of problems (empty means conformant).

        Entity-based construction treats a non-empty result as a rejection;
        text-rich construction merely logs it — matching the paper's framing
        of rigid vs fluid semantics.
        """
        problems: List[str] = []
        if not self.has_relation(triple.predicate):
            problems.append(f"unknown relation {triple.predicate!r}")
            return problems
        relation = self._relations[triple.predicate]
        if subject_class not in self._parents:
            problems.append(f"unknown subject class {subject_class!r}")
        elif not self.is_subclass_of(subject_class, relation.domain):
            problems.append(
                f"subject class {subject_class!r} outside domain {relation.domain!r}"
            )
        if relation.range_class == "number":
            if not isinstance(triple.object, (int, float)) or isinstance(triple.object, bool):
                problems.append(f"object {triple.object!r} is not numeric")
        return problems

    # ------------------------------------------------------------------
    # stats

    def stats(self) -> Dict[str, int]:
        """Counts the paper quotes when sizing ontologies (Sec. 2)."""
        max_depth = 0
        for class_name in self._parents:
            max_depth = max(max_depth, self.depth(class_name))
        return {
            "n_classes": len(self._parents),
            "n_relations": len(self._relations),
            "max_depth": max_depth,
            "n_roots": len(self.roots()),
        }

    def merge_from(self, other: "Ontology") -> None:
        """Absorb classes/relations from another ontology (union semantics)."""
        pending: List[str] = [name for name, parent in other._parents.items()]
        # Add classes in topological (parent-first) order.
        added: Set[str] = set(self._parents)
        while pending:
            progressed = False
            remaining = []
            for class_name in pending:
                parent = other._parents[class_name]
                if class_name in added:
                    progressed = True
                    continue
                if parent is None or parent in added:
                    if class_name not in self._parents:
                        self.add_class(class_name, parent if parent in self._parents else None)
                    added.add(class_name)
                    progressed = True
                else:
                    remaining.append(class_name)
            if not progressed:
                raise OntologyError("cycle detected while merging ontologies")
            pending = remaining
        for relation in other.relations():
            if not self.has_relation(relation.name):
                self.add_relation(
                    relation.name,
                    relation.domain,
                    relation.range_class,
                    functional=relation.functional,
                )
