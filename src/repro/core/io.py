"""Serialization: save/load knowledge graphs as JSON-lines files.

A production KG outlives one process.  The format is line-oriented so
dumps diff/merge cleanly and stream through standard tooling:

* line 1 — a header record (``kind``, ``name``, format version);
* class / relation / entity / topic / triple / value records follow, one
  JSON object per line, each tagged with ``"t"`` (record type).

Both generations round-trip: :class:`~repro.core.graph.KnowledgeGraph`
(including provenance) and :class:`~repro.core.textrich.TextRichKG`
(including value edges).
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, TextIO, Union

from repro.core.graph import KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.textrich import AttributeValue, TextRichKG
from repro.core.triple import Provenance, Triple

FORMAT_VERSION = 1


class FormatError(ValueError):
    """Raised when a file does not parse as a serialized KG."""


# ----------------------------------------------------------------------
# ontology records


def _ontology_records(ontology: Ontology) -> Iterator[dict]:
    # Parents-first ordering so load can add classes in one pass.
    emitted = set()
    pending = list(ontology.classes())
    while pending:
        remaining = []
        for class_name in pending:
            parent = ontology.parent(class_name)
            if parent is None or parent in emitted:
                yield {"t": "class", "name": class_name, "parent": parent}
                emitted.add(class_name)
            else:
                remaining.append(class_name)
        if len(remaining) == len(pending):  # pragma: no cover - defensive
            raise FormatError("cycle detected while serializing ontology")
        pending = remaining
    for relation in ontology.relations():
        yield {
            "t": "relation",
            "name": relation.name,
            "domain": relation.domain,
            "range": relation.range_class,
            "functional": relation.functional,
        }


def _load_ontology_record(ontology: Ontology, record: dict) -> None:
    if record["t"] == "class":
        if not ontology.has_class(record["name"]):
            ontology.add_class(record["name"], parent=record.get("parent"))
    elif record["t"] == "relation":
        if not ontology.has_relation(record["name"]):
            ontology.add_relation(
                record["name"],
                record["domain"],
                record["range"],
                functional=record.get("functional", False),
            )


# ----------------------------------------------------------------------
# entity-based KG


def save_graph(graph: KnowledgeGraph, path: str) -> int:
    """Write a :class:`KnowledgeGraph` to ``path``; returns lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        lines += _write(handle, {"t": "header", "kind": "entity_kg", "name": graph.name, "v": FORMAT_VERSION})
        for record in _ontology_records(graph.ontology):
            lines += _write(handle, record)
        for entity in graph.entities():
            lines += _write(
                handle,
                {
                    "t": "entity",
                    "id": entity.entity_id,
                    "name": entity.name,
                    "class": entity.entity_class,
                    "aliases": sorted(entity.aliases),
                },
            )
        for triple in graph.triples():
            record = {
                "t": "triple",
                "s": triple.subject,
                "p": triple.predicate,
                "o": triple.object,
            }
            provenance = graph.provenance(triple)
            if provenance:
                record["prov"] = [
                    {"source": p.source, "extractor": p.extractor, "confidence": p.confidence}
                    for p in provenance
                ]
            lines += _write(handle, record)
    return lines


def load_graph(path: str) -> KnowledgeGraph:
    """Read a :class:`KnowledgeGraph` written by :func:`save_graph`."""
    with open(path, "r", encoding="utf-8") as handle:
        header = _read_header(handle, expected_kind="entity_kg")
        ontology = Ontology()
        graph = KnowledgeGraph(ontology=ontology, name=header.get("name", "kg"))
        for record in _records(handle):
            kind = record["t"]
            if kind in ("class", "relation"):
                _load_ontology_record(ontology, record)
            elif kind == "entity":
                graph.add_entity(
                    record["id"],
                    record["name"],
                    record["class"],
                    aliases=record.get("aliases", ()),
                )
            elif kind == "triple":
                triple = Triple(record["s"], record["p"], record["o"])
                provenance_records = record.get("prov") or [None]
                for prov in provenance_records:
                    graph.add_triple(
                        triple,
                        provenance=None
                        if prov is None
                        else Provenance(
                            source=prov["source"],
                            extractor=prov.get("extractor"),
                            confidence=prov.get("confidence", 1.0),
                        ),
                    )
            else:
                raise FormatError(f"unknown record type {kind!r}")
    return graph


# ----------------------------------------------------------------------
# text-rich KG


def save_text_rich(kg: TextRichKG, path: str) -> int:
    """Write a :class:`TextRichKG` to ``path``; returns lines written."""
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        lines += _write(handle, {"t": "header", "kind": "text_rich_kg", "name": kg.name, "v": FORMAT_VERSION})
        for record in _ontology_records(kg.taxonomy):
            lines += _write(handle, record)
        for topic in kg.topics():
            lines += _write(
                handle,
                {
                    "t": "topic",
                    "id": topic.entity_id,
                    "title": topic.title,
                    "type": topic.entity_type,
                    "description": topic.description,
                },
            )
            for value in kg.values(topic.entity_id):
                lines += _write(
                    handle,
                    {
                        "t": "value",
                        "topic": topic.entity_id,
                        "attr": value.attribute,
                        "value": value.value,
                        "confidence": value.confidence,
                        "source": value.source,
                    },
                )
        for relation, left, right in kg.value_edges():
            lines += _write(
                handle, {"t": "value_edge", "rel": relation, "l": left, "r": right}
            )
    return lines


def load_text_rich(path: str) -> TextRichKG:
    """Read a :class:`TextRichKG` written by :func:`save_text_rich`."""
    with open(path, "r", encoding="utf-8") as handle:
        header = _read_header(handle, expected_kind="text_rich_kg")
        taxonomy = Ontology()
        kg = TextRichKG(taxonomy=taxonomy, name=header.get("name", "text_rich_kg"))
        for record in _records(handle):
            kind = record["t"]
            if kind in ("class", "relation"):
                _load_ontology_record(taxonomy, record)
            elif kind == "topic":
                kg.add_topic(
                    record["id"],
                    record["title"],
                    record["type"],
                    description=record.get("description", ""),
                )
            elif kind == "value":
                kg.add_value(
                    record["topic"],
                    AttributeValue(
                        attribute=record["attr"],
                        value=record["value"],
                        confidence=record.get("confidence", 1.0),
                        source=record.get("source", "catalog"),
                    ),
                )
            elif kind == "value_edge":
                kg.add_value_edge(record["rel"], record["l"], record["r"])
            else:
                raise FormatError(f"unknown record type {kind!r}")
    return kg


# ----------------------------------------------------------------------
# plumbing


def _write(handle: TextIO, record: dict) -> int:
    handle.write(json.dumps(record, ensure_ascii=False, sort_keys=True))
    handle.write("\n")
    return 1


def _read_header(handle: TextIO, expected_kind: str) -> dict:
    first = handle.readline()
    if not first.strip():
        raise FormatError("empty file")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as error:
        raise FormatError(f"header is not JSON: {error}") from error
    if header.get("t") != "header" or header.get("kind") != expected_kind:
        raise FormatError(
            f"expected a {expected_kind!r} header, got {header.get('kind')!r}"
        )
    if header.get("v", 0) > FORMAT_VERSION:
        raise FormatError(f"file format v{header['v']} is newer than supported v{FORMAT_VERSION}")
    return header


def _records(handle: TextIO) -> Iterator[dict]:
    for line_number, line in enumerate(handle, start=2):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            yield json.loads(stripped)
        except json.JSONDecodeError as error:
            raise FormatError(f"line {line_number} is not JSON: {error}") from error
