"""The text-rich knowledge graph (second generation, Sec. 3).

"Instead of setting up clean and strict semantic boundaries between types,
relationships, and entities, the majority of the nodes in text-rich KGs can
be just non-canonical texts. ... text-rich KGs are more like bipartite
graphs, with topic entities in the domain on one side of the graph,
attribute values on the other side, connected by attributes." (Sec. 3)

So the structure here is: topic entities (e.g. products) -> attributes ->
free-text values, plus a (deep, noisy) taxonomy over types, plus optional
value-to-value edges such as ``synonym`` / ``hypernym`` discovered by the
mining of Sec. 3.1.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.ontology import Ontology
from repro.core.triple import Provenance, Triple
from repro.obs import lineage as obs_lineage


@dataclass(frozen=True)
class AttributeValue:
    """A free-text attribute value node with optional confidence/provenance."""

    attribute: str
    value: str
    confidence: float = 1.0
    source: str = "catalog"

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")


@dataclass
class TopicEntity:
    """One side of the bipartite graph: a product-like topic entity."""

    entity_id: str
    title: str
    entity_type: str
    description: str = ""


class TextRichKG:
    """Bipartite topic-entity / text-value graph with a taxonomy on top."""

    VALUE_RELATIONS = ("synonym", "hypernym", "antonym")

    def __init__(self, taxonomy: Optional[Ontology] = None, name: str = "text_rich_kg"):
        self.name = name
        self.taxonomy = taxonomy or Ontology(name=f"{name}_taxonomy")
        self._topics: Dict[str, TopicEntity] = {}
        self._values: Dict[str, List[AttributeValue]] = defaultdict(list)
        self._value_index: Dict[Tuple[str, str], Set[str]] = defaultdict(set)
        self._value_edges: Set[Tuple[str, str, str]] = set()

    # ------------------------------------------------------------------
    # topic entities

    def add_topic(
        self,
        entity_id: str,
        title: str,
        entity_type: str,
        description: str = "",
    ) -> TopicEntity:
        """Register a topic entity.

        Unlike the entity-based KG, an unknown type is tolerated (it is added
        to the taxonomy as a root): type boundaries are fluid in this
        generation.
        """
        if entity_id in self._topics:
            raise ValueError(f"duplicate topic id: {entity_id!r}")
        if not self.taxonomy.has_class(entity_type):
            self.taxonomy.add_class(entity_type)
        topic = TopicEntity(
            entity_id=entity_id, title=title, entity_type=entity_type, description=description
        )
        self._topics[entity_id] = topic
        return topic

    def topic(self, entity_id: str) -> TopicEntity:
        """Look up a topic entity."""
        if entity_id not in self._topics:
            raise KeyError(f"unknown topic: {entity_id!r}")
        return self._topics[entity_id]

    def has_topic(self, entity_id: str) -> bool:
        """True when the id names a registered topic entity."""
        return entity_id in self._topics

    def topics(self, entity_type: Optional[str] = None) -> Iterator[TopicEntity]:
        """Iterate topics, optionally restricted to a taxonomy subtree."""
        for topic in sorted(self._topics.values(), key=lambda t: t.entity_id):
            if entity_type is None or self.taxonomy.is_subclass_of(
                topic.entity_type, entity_type
            ):
                yield topic

    # ------------------------------------------------------------------
    # attribute values (the text side of the bipartite graph)

    def add_value(self, entity_id: str, value: AttributeValue) -> None:
        """Attach a free-text attribute value to a topic entity.

        Duplicate (attribute, value) pairs for the same topic are collapsed,
        keeping the record with higher confidence.
        """
        if entity_id not in self._topics:
            raise KeyError(f"unknown topic: {entity_id!r}")
        obs_lineage.record_observation(
            entity_id,
            value.attribute,
            value.value,
            source=value.source,
            confidence=value.confidence,
            stage="textrich.add_value",
        )
        existing = self._values[entity_id]
        for index, record in enumerate(existing):
            if record.attribute == value.attribute and record.value == value.value:
                if value.confidence > record.confidence:
                    existing[index] = value
                return
        existing.append(value)
        self._value_index[(value.attribute, value.value.lower())].add(entity_id)

    def values(self, entity_id: str, attribute: Optional[str] = None) -> List[AttributeValue]:
        """Attribute values of a topic, optionally filtered by attribute."""
        records = self._values.get(entity_id, [])
        if attribute is None:
            return list(records)
        return [record for record in records if record.attribute == attribute]

    def value_of(self, entity_id: str, attribute: str) -> Optional[str]:
        """Highest-confidence value of an attribute, or None."""
        records = self.values(entity_id, attribute)
        if not records:
            return None
        return max(records, key=lambda record: record.confidence).value

    def remove_value(self, entity_id: str, attribute: str, value: str) -> bool:
        """Drop a value (knowledge cleaning applies this); True if present."""
        records = self._values.get(entity_id, [])
        for index, record in enumerate(records):
            if record.attribute == attribute and record.value == value:
                del records[index]
                self._value_index[(attribute, value.lower())].discard(entity_id)
                return True
        return False

    def topics_with_value(self, attribute: str, value: str) -> List[str]:
        """Topic ids carrying a given (attribute, value) — the reverse edge
        of the bipartite graph."""
        return sorted(self._value_index.get((attribute, value.lower()), set()))

    def distinct_values(self, attribute: str) -> List[str]:
        """All distinct surface forms observed for an attribute."""
        values = {
            value
            for (attr, value), topics in self._value_index.items()
            if attr == attribute and topics
        }
        return sorted(values)

    # ------------------------------------------------------------------
    # value-to-value edges (synonym / hypernym mining output)

    def add_value_edge(self, relation: str, left: str, right: str) -> None:
        """Record a mined relationship between two value strings."""
        if relation not in self.VALUE_RELATIONS:
            raise ValueError(
                f"unknown value relation {relation!r}; expected one of {self.VALUE_RELATIONS}"
            )
        self._value_edges.add((relation, left.lower(), right.lower()))

    def has_value_edge(self, relation: str, left: str, right: str) -> bool:
        """True when the mined edge exists; ``synonym`` is symmetric."""
        key = (relation, left.lower(), right.lower())
        if key in self._value_edges:
            return True
        if relation == "synonym":
            return (relation, right.lower(), left.lower()) in self._value_edges
        return False

    def value_edges(self, relation: Optional[str] = None) -> List[Tuple[str, str, str]]:
        """All mined value-to-value edges, optionally filtered by relation."""
        edges = sorted(self._value_edges)
        if relation is None:
            return edges
        return [edge for edge in edges if edge[0] == relation]

    # ------------------------------------------------------------------
    # export / stats

    def to_triples(self) -> List[Triple]:
        """Flatten to (topic, attribute, text value) triples plus type and
        value-edge triples — the representation AutoKnow reports counts in."""
        triples: List[Triple] = []
        for topic in self.topics():
            triples.append(Triple(topic.entity_id, "type", topic.entity_type))
            for record in self._values.get(topic.entity_id, []):
                triples.append(Triple(topic.entity_id, record.attribute, record.value))
        for relation, left, right in sorted(self._value_edges):
            triples.append(Triple(left, relation, right))
        return triples

    def stats(self) -> Dict[str, int]:
        """Size statistics mirroring the AutoKnow reporting of Sec. 3.5."""
        n_value_nodes = len(
            {key for key, topics in self._value_index.items() if topics}
        )
        n_value_triples = sum(len(records) for records in self._values.values())
        return {
            "n_topics": len(self._topics),
            "n_types": self.taxonomy.stats()["n_classes"],
            "n_value_nodes": n_value_nodes,
            "n_value_triples": n_value_triples,
            "n_value_edges": len(self._value_edges),
            "n_triples": n_value_triples + len(self._topics) + len(self._value_edges),
        }

    def attributes(self) -> List[str]:
        """All attributes appearing anywhere in the graph."""
        return sorted({attr for (attr, _value) in self._value_index})
