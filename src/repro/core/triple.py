"""Triples and provenance — the atoms of every KG in the paper.

"A piece of knowledge can be considered as a *triple* in the form of
(subject, predicate, object), such as (Seattle, located_at, USA)." (Sec. 1)

Provenance records which source/extractor produced a triple; it is what the
fusion machinery of Sec. 2.4 (graphical-model fusion, Knowledge-Based Trust)
reasons over.
"""

from __future__ import annotations


from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

Value = Union[str, int, float, bool]


@dataclass(frozen=True)
class Provenance:
    """Where a triple came from.

    Attributes
    ----------
    source:
        Identifier of the data source (a website, a structured dump, the
        catalog, an LLM, ...).
    extractor:
        Identifier of the technique that produced the triple (``"infobox"``,
        ``"ceres"``, ``"opentag"``, ...); ``None`` for native/curated data.
    confidence:
        The producer's own belief in the triple, in [0, 1].
    """

    source: str
    extractor: Optional[str] = None
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")


@dataclass(frozen=True)
class Triple:
    """An immutable (subject, predicate, object) statement.

    Subjects are entity identifiers; objects are either entity identifiers
    or atomic values.  Whether an object names an entity is decided by the
    graph holding the triple, not the triple itself — the same design that
    lets text-rich KGs treat most objects as free text.

    Triples order deterministically even when object types are mixed
    (strings vs numbers), so index scans over heterogeneous graphs stay
    stable.
    """

    subject: str
    predicate: str
    object: Value

    def _sort_key(self):
        return (self.subject, self.predicate, type(self.object).__name__, str(self.object))

    def __lt__(self, other: "Triple") -> bool:
        if not isinstance(other, Triple):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def __post_init__(self) -> None:
        if not self.subject:
            raise ValueError("triple subject must be non-empty")
        if not self.predicate:
            raise ValueError("triple predicate must be non-empty")
        if self.object is None or (isinstance(self.object, str) and not self.object):
            raise ValueError("triple object must be non-empty")
        # Triples are hashed several times per graph insertion (triple set,
        # provenance table, index rows); computing the tuple hash once here
        # keeps every later probe a single attribute load.
        object.__setattr__(
            self, "_hash", hash((self.subject, self.predicate, self.object))
        )

    def as_tuple(self) -> Tuple[str, str, Value]:
        """The plain (s, p, o) tuple."""
        return (self.subject, self.predicate, self.object)

    def replace_subject(self, new_subject: str) -> "Triple":
        """Copy with a different subject — used when merging linked entities."""
        return Triple(new_subject, self.predicate, self.object)

    def replace_object(self, new_object: Value) -> "Triple":
        """Copy with a different object — used when merging linked entities."""
        return Triple(self.subject, self.predicate, new_object)

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"({self.subject}, {self.predicate}, {self.object})"


def _cached_triple_hash(self: "Triple") -> int:
    return self._hash


# Replace the dataclass-generated __hash__ (which rebuilds and hashes the
# field tuple on every call) with a read of the value cached at
# construction; same hash value, one attribute load per probe.
Triple.__hash__ = _cached_triple_hash  # type: ignore[assignment]


@dataclass(frozen=True)
class AttributedTriple:
    """A triple bundled with one provenance record.

    Extraction systems emit these; fusion collapses groups of them into a
    single believed triple with a calibrated confidence.
    """

    triple: Triple
    provenance: Provenance = field(default_factory=lambda: Provenance(source="unknown"))

    @property
    def confidence(self) -> float:
        """Shortcut to the provenance confidence."""
        return self.provenance.confidence
