"""Deterministic data-parallel mapping for the construction hot paths.

The paper's pipelines are embarrassingly parallel at well-defined grain
boundaries — blocking keys per record, similarity features per candidate
pair, fusion posteriors per (subject, attribute) item, distant labels per
page.  :func:`pmap` is the one choke point those stages fan out through:

* ``mode="serial"`` (the default) — a plain list comprehension, zero
  overhead, always available;
* ``mode="thread"`` — a thread pool; wins when the callable releases the
  GIL (I/O, numpy) and costs little otherwise;
* ``mode="process"`` — a process pool with chunking; wins for CPU-bound
  Python when the callable and items pickle.  Unpicklable work degrades
  to serial instead of failing, so call sites never need mode-specific
  guards — but never silently: every degradation increments the
  ``pmap.degraded`` counter, so a pipeline that *thinks* it is running
  on processes and is not shows up on the first metrics snapshot.

Results are **always** returned in input order, regardless of mode,
chunking, or completion order — parallelism must never change what a
pipeline computes, only how fast.  ``REPRO_PMAP_MODE`` overrides the
mode process-wide — *including over an explicit ``mode=`` argument* (an
operator flipping a whole pipeline wins over per-call-site defaults);
``REPRO_PMAP_WORKERS`` overrides the default pool size the same way.

Observability crosses the process boundary: when tracing is enabled,
each worker chunk runs under a fresh collector set inside a
``pmap.worker`` span, buffers its spans/counters/lineage locally, and
ships them back with the chunk results; the coordinator merges payloads
in chunk input order, so the merged trace/metrics/lineage state is
deterministic and equal to a serial run's (see
``repro.obs.profiling.worker_begin``/``worker_collect``/``worker_merge``
and DESIGN.md §10).
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs._flags import FLAGS as _OBS_FLAGS

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable that picks the process-wide mode.  A valid value
#: beats even an explicit ``mode=`` argument at a call site.
MODE_ENV_VAR = "REPRO_PMAP_MODE"

#: Environment variable overriding the default pool size (``max_workers``
#: arguments at call sites still win; this replaces the cpu-count default).
WORKERS_ENV_VAR = "REPRO_PMAP_WORKERS"

_MODES = ("serial", "thread", "process")


class PmapWorkerError(Exception):
    """Carries a worker's original traceback text across the pool boundary.

    Raised as the ``__cause__`` of the re-raised worker exception (so the
    failing item's real stack — lost when an exception crosses a process
    boundary — still prints), and as the replacement exception when the
    original does not pickle.
    """


class _WorkerFailure:
    """A worker exception captured in-pool, returned instead of raised."""

    __slots__ = ("exc", "formatted")

    def __init__(self, exc: BaseException, formatted: str):
        self.exc = exc
        self.formatted = formatted


class _ShippedChunk:
    """One process chunk's results plus its observability payload."""

    __slots__ = ("value", "obs")

    def __init__(self, value, obs):
        self.value = value
        self.obs = obs


def default_mode() -> str:
    """The mode used when a call site passes ``mode=None``."""
    return resolve_mode(None)


def resolve_mode(mode: Optional[str]) -> str:
    """The effective mode: a valid ``REPRO_PMAP_MODE`` beats everything.

    An explicit but unknown ``mode`` argument raises (a typo at a call
    site is a bug); an unknown *environment* value is ignored (a typo in
    a shell must not break the pipeline it was trying to tune).
    """
    if mode is not None and mode not in _MODES:
        raise ValueError(f"unknown pmap mode {mode!r}; use one of {_MODES}")
    env_mode = os.environ.get(MODE_ENV_VAR, "").strip().lower()
    if env_mode in _MODES:
        return env_mode
    if mode is not None:
        return mode
    return "serial"


def default_workers() -> int:
    """Pool size when a call site passes ``max_workers=None``.

    ``REPRO_PMAP_WORKERS`` (a positive integer) wins; otherwise
    ``min(8, cpu_count)``.  The env override matters on single-core CI
    runners, where the cpu-count default collapses every parallel mode
    back to serial before a worker ever forks — which is exactly why a
    malformed value raises instead of being silently ignored: an operator
    who set it wants the pool they asked for, not a quiet fallback.
    """
    raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = 0
        if value < 1:
            raise ValueError(
                f"{WORKERS_ENV_VAR}={raw!r} is not a positive integer; "
                "set it to a whole number >= 1 (e.g. 4) or unset it"
            )
        return value
    return min(8, os.cpu_count() or 1)


def _apply_chunk(fn: Callable[[ItemT], ResultT], chunk: Sequence[ItemT]):
    """Worker body: apply ``fn`` to one chunk, preserving chunk order.

    Failures come back as :class:`_WorkerFailure` rather than raising, so
    the coordinator can re-raise the *original* exception with the worker
    traceback chained — ``pool.map`` alone loses the worker-side stack
    for process pools.
    """
    try:
        return [fn(item) for item in chunk]
    except BaseException as exc:
        formatted = traceback.format_exc()
        if not _picklable(exc):
            exc = PmapWorkerError(f"{type(exc).__name__}: {exc}")
        return _WorkerFailure(exc, formatted)


def _apply_chunk_shipped(
    fn: Callable[[ItemT], ResultT], chunk: Sequence[ItemT], chunk_index: int
):
    """Process-worker body under observability: trace locally, ship back.

    Fresh collectors per *chunk* (not per worker process), so the shipped
    payload depends only on the chunk's work — never on which worker
    handled it or what that worker did before — which is what lets the
    coordinator merge payloads deterministically in input order.
    """
    from repro.obs import profiling as obs_profiling
    from repro.obs import tracing as obs_tracing

    obs_profiling.worker_begin()
    failure: Optional[_WorkerFailure] = None
    results: Optional[List[ResultT]] = None
    try:
        with obs_tracing.span("pmap.worker", chunk=chunk_index, n_items=len(chunk)):
            results = [fn(item) for item in chunk]
    except BaseException as exc:
        formatted = traceback.format_exc()
        if not _picklable(exc):
            exc = PmapWorkerError(f"{type(exc).__name__}: {exc}")
        failure = _WorkerFailure(exc, formatted)
    payload = obs_profiling.worker_collect()
    return _ShippedChunk(failure if failure is not None else results, payload)


def _apply_chunk_linked(
    fn: Callable[[ItemT], ResultT],
    chunk: Sequence[ItemT],
    link,
    chunk_index: int,
):
    """Thread-worker body under observability: span in the parent's trace.

    Threads share the global tracer, so nothing ships — but the pool
    thread's span stack is empty, so the ``pmap.worker`` span links to
    the submitting thread's captured context explicitly, keeping the
    trace a single connected tree.
    """
    from repro.obs import tracing as obs_tracing

    tracer = obs_tracing.get_tracer()
    opened = tracer.start_span(
        "pmap.worker", parent_link=link, chunk=chunk_index, n_items=len(chunk)
    )
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    try:
        return _apply_chunk(fn, chunk)
    finally:
        tracer.finish_span(
            opened,
            wall_seconds=time.perf_counter() - wall_start,
            cpu_seconds=time.process_time() - cpu_start,
        )


#: Target chunks per worker when a call site does not pass ``chunk_size``.
#: >1 so an uneven workload can rebalance (a worker that drew cheap chunks
#: picks up more); small enough that per-chunk dispatch overhead amortizes.
CHUNKS_PER_WORKER = 4


def default_chunk_size(n_items: int, workers: int) -> int:
    """Chunk size adapted to the workload: ``len(items)`` split evenly
    into ~:data:`CHUNKS_PER_WORKER` chunks per worker (ceiling division,
    never below 1).  Scales with ``n_items / workers`` rather than a
    fixed constant, so tiny inputs still spread across the pool and huge
    inputs don't drown it in per-chunk dispatch."""
    return max(1, (n_items + workers * CHUNKS_PER_WORKER - 1) // (workers * CHUNKS_PER_WORKER))


def _chunked(items: Sequence[ItemT], chunk_size: int) -> List[Sequence[ItemT]]:
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def _serial_map(fn: Callable[[ItemT], ResultT], items: Sequence[ItemT]) -> List[ResultT]:
    """The serial execution path, still feeding the progress heartbeat."""
    if not (_OBS_FLAGS.enabled and items):
        return [fn(item) for item in items]
    obs_progress.add_total(len(items))
    results: List[ResultT] = []
    for item in items:
        results.append(fn(item))
        obs_progress.advance()
    return results


def pmap(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[ResultT]:
    """``[fn(item) for item in items]``, optionally in parallel.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``; ``None`` reads
        ``REPRO_PMAP_MODE`` (default serial).  A valid ``REPRO_PMAP_MODE``
        also *overrides* an explicit argument — the operator knob wins.
    max_workers:
        Pool size; defaults to ``REPRO_PMAP_WORKERS`` or
        ``min(8, cpu_count)``.
    chunk_size:
        Items handed to a worker at a time; defaults to
        :func:`default_chunk_size` — an even split of ``len(items)``
        across ~:data:`CHUNKS_PER_WORKER` chunks per worker (amortizes
        task dispatch without starving the pool).

    Returns results in input order in every mode.
    """
    materialized = items if isinstance(items, (list, tuple)) else list(items)
    resolved_mode = resolve_mode(mode)
    n_items = len(materialized)
    if resolved_mode == "serial" or n_items <= 1:
        return _serial_map(fn, materialized)
    workers = max_workers if max_workers is not None else default_workers()
    workers = min(workers, n_items)
    if workers <= 1:
        return _serial_map(fn, materialized)
    if resolved_mode == "process" and not (
        _picklable(fn) and _picklable(materialized[0])
    ):
        # Closures / local state can't cross a process boundary; degrade
        # rather than fail so call sites stay mode-agnostic — but count
        # it, so silent serial execution is visible in any snapshot.
        obs_metrics.count("pmap.degraded")
        return _serial_map(fn, materialized)
    if chunk_size is None:
        chunk_size = default_chunk_size(n_items, workers)
    chunks = _chunked(materialized, chunk_size)
    pool_class = ThreadPoolExecutor if resolved_mode == "thread" else ProcessPoolExecutor
    obs_metrics.count(f"parallel.pmap.{resolved_mode}_calls")

    observing = _OBS_FLAGS.enabled
    context = None
    if observing:
        from repro.obs import tracing as obs_tracing

        context = obs_tracing.capture_context()
        obs_progress.add_total(n_items)

    shipping = observing and resolved_mode == "process" and context.recording
    with pool_class(max_workers=workers) as pool:
        # map() yields chunk results in submission order — determinism is
        # structural, not sorted after the fact.
        if shipping:
            mapped = pool.map(
                _apply_chunk_shipped, [fn] * len(chunks), chunks, range(len(chunks))
            )
        elif observing and resolved_mode == "thread" and context.recording:
            mapped = pool.map(
                _apply_chunk_linked,
                [fn] * len(chunks),
                chunks,
                [context] * len(chunks),
                range(len(chunks)),
            )
        else:
            mapped = pool.map(_apply_chunk, [fn] * len(chunks), chunks)
        if observing:
            chunk_results = []
            for chunk, chunk_result in zip(chunks, mapped):
                chunk_results.append(chunk_result)
                obs_progress.advance(len(chunk))
        else:
            chunk_results = list(mapped)

    if shipping:
        from repro.obs import profiling as obs_profiling

        # Merge every chunk's payload — in input order, failed chunks
        # included — *before* raising, so a failing build still accounts
        # for the work its workers did.
        unwrapped = []
        for shipped in chunk_results:
            obs_profiling.worker_merge(shipped.obs, context)
            unwrapped.append(shipped.value)
        chunk_results = unwrapped

    results: List[ResultT] = []
    for chunk_result in chunk_results:
        if isinstance(chunk_result, _WorkerFailure):
            # Re-raise the worker's exception with its original traceback
            # chained, and deterministically: the first failing chunk in
            # input order wins, regardless of completion order.
            raise chunk_result.exc from PmapWorkerError(
                f"pmap worker failed; original traceback:\n{chunk_result.formatted}"
            )
        results.extend(chunk_result)
    return results
