"""Deterministic data-parallel mapping for the construction hot paths.

The paper's pipelines are embarrassingly parallel at well-defined grain
boundaries — blocking keys per record, similarity features per candidate
pair, fusion posteriors per (subject, attribute) item, distant labels per
page.  :func:`pmap` is the one choke point those stages fan out through:

* ``mode="serial"`` (the default) — a plain list comprehension, zero
  overhead, always available;
* ``mode="thread"`` — a thread pool; wins when the callable releases the
  GIL (I/O, numpy) and costs little otherwise;
* ``mode="process"`` — a process pool with chunking; wins for CPU-bound
  Python when the callable and items pickle.  Unpicklable work degrades
  to serial instead of failing, so call sites never need mode-specific
  guards.

Results are **always** returned in input order, regardless of mode,
chunking, or completion order — parallelism must never change what a
pipeline computes, only how fast.  ``REPRO_PMAP_MODE`` overrides the
default mode process-wide, so a pipeline can be flipped to threads or
processes without touching call sites.
"""

from __future__ import annotations

import os
import pickle
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from repro.obs import metrics as obs_metrics

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")

#: Environment variable that picks the process-wide default mode.
MODE_ENV_VAR = "REPRO_PMAP_MODE"

_MODES = ("serial", "thread", "process")


class PmapWorkerError(Exception):
    """Carries a worker's original traceback text across the pool boundary.

    Raised as the ``__cause__`` of the re-raised worker exception (so the
    failing item's real stack — lost when an exception crosses a process
    boundary — still prints), and as the replacement exception when the
    original does not pickle.
    """


class _WorkerFailure:
    """A worker exception captured in-pool, returned instead of raised."""

    __slots__ = ("exc", "formatted")

    def __init__(self, exc: BaseException, formatted: str):
        self.exc = exc
        self.formatted = formatted


def default_mode() -> str:
    """The mode used when a call site passes ``mode=None``."""
    mode = os.environ.get(MODE_ENV_VAR, "serial").strip().lower() or "serial"
    return mode if mode in _MODES else "serial"


def _apply_chunk(fn: Callable[[ItemT], ResultT], chunk: Sequence[ItemT]):
    """Worker body: apply ``fn`` to one chunk, preserving chunk order.

    Failures come back as :class:`_WorkerFailure` rather than raising, so
    the coordinator can re-raise the *original* exception with the worker
    traceback chained — ``pool.map`` alone loses the worker-side stack
    for process pools.
    """
    try:
        return [fn(item) for item in chunk]
    except BaseException as exc:
        formatted = traceback.format_exc()
        if not _picklable(exc):
            exc = PmapWorkerError(f"{type(exc).__name__}: {exc}")
        return _WorkerFailure(exc, formatted)


def _chunked(items: Sequence[ItemT], chunk_size: int) -> List[Sequence[ItemT]]:
    return [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]


def _picklable(*objects: object) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
    except Exception:
        return False
    return True


def pmap(
    fn: Callable[[ItemT], ResultT],
    items: Iterable[ItemT],
    mode: Optional[str] = None,
    max_workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> List[ResultT]:
    """``[fn(item) for item in items]``, optionally in parallel.

    Parameters
    ----------
    mode:
        ``"serial"``, ``"thread"``, or ``"process"``; ``None`` reads
        ``REPRO_PMAP_MODE`` (default serial).
    max_workers:
        Pool size; defaults to ``min(8, cpu_count)``.
    chunk_size:
        Items handed to a worker at a time; defaults to an even split
        across ~4 chunks per worker (amortizes task dispatch without
        starving the pool).

    Returns results in input order in every mode.
    """
    materialized = items if isinstance(items, (list, tuple)) else list(items)
    resolved_mode = mode if mode is not None else default_mode()
    if resolved_mode not in _MODES:
        raise ValueError(f"unknown pmap mode {resolved_mode!r}; use one of {_MODES}")
    n_items = len(materialized)
    if resolved_mode == "serial" or n_items <= 1:
        return [fn(item) for item in materialized]
    workers = max_workers if max_workers is not None else min(8, os.cpu_count() or 1)
    workers = min(workers, n_items)
    if workers <= 1:
        return [fn(item) for item in materialized]
    if resolved_mode == "process" and not (
        _picklable(fn) and _picklable(materialized[0])
    ):
        # Closures / local state can't cross a process boundary; degrade
        # rather than fail so call sites stay mode-agnostic.
        obs_metrics.count("parallel.pmap.process_fallbacks")
        return [fn(item) for item in materialized]
    if chunk_size is None:
        chunk_size = max(1, (n_items + workers * 4 - 1) // (workers * 4))
    chunks = _chunked(materialized, chunk_size)
    pool_class = ThreadPoolExecutor if resolved_mode == "thread" else ProcessPoolExecutor
    obs_metrics.count(f"parallel.pmap.{resolved_mode}_calls")
    with pool_class(max_workers=workers) as pool:
        # map() yields chunk results in submission order — determinism is
        # structural, not sorted after the fact.
        chunk_results = list(pool.map(_apply_chunk, [fn] * len(chunks), chunks))
    results: List[ResultT] = []
    for chunk_result in chunk_results:
        if isinstance(chunk_result, _WorkerFailure):
            # Re-raise the worker's exception with its original traceback
            # chained, and deterministically: the first failing chunk in
            # input order wins, regardless of completion order.
            raise chunk_result.exc from PmapWorkerError(
                f"pmap worker failed; original traceback:\n{chunk_result.formatted}"
            )
        results.extend(chunk_result)
    return results
