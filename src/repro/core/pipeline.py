"""Composable construction pipelines — the Fig. 4 architectures.

Figure 4 depicts KG construction as a chain of components (transformation,
integration, extraction, cleaning, fusion...).  This module gives those
components a uniform stage interface so the two architectures are literally
assembled and run, and each stage's contribution (triples added, accuracy,
manual work consumed) is reported — which is what the FIG4 and T-GROWTH
benchmarks print.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import quality as obs_quality
from repro.obs._flags import FLAGS as _OBS_FLAGS
from repro.obs.tracing import span


@dataclass
class PipelineContext:
    """Mutable blackboard threaded through pipeline stages.

    ``artifacts`` holds named intermediate products (source records, the KG
    under construction, extraction candidates...).  ``metrics`` accumulates
    per-stage numbers for reporting.
    """

    artifacts: Dict[str, object] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)

    def require(self, key: str):
        """Fetch an artifact, raising a clear error if a stage is missing."""
        if key not in self.artifacts:
            raise KeyError(
                f"pipeline artifact {key!r} missing; an upstream stage did not run"
            )
        return self.artifacts[key]


@dataclass
class StageReport:
    """What one stage did: timing plus the metrics it recorded.

    ``error`` is ``None`` for a successful stage; for a stage that raised
    it holds ``"ExceptionType: message"`` and ``metrics`` are whatever the
    stage recorded before failing (a partial report, so a crashed pipeline
    still accounts for every stage it entered).
    """

    stage_name: str
    seconds: float
    metrics: Dict[str, float] = field(default_factory=dict)
    error: Optional[str] = None


class PipelineStage:
    """Base class for a construction stage.

    Subclasses implement :meth:`run`, reading and writing the context.
    Metrics recorded through :meth:`record` end up in the stage report.
    """

    name = "stage"

    def __init__(self, name: Optional[str] = None):
        if name is not None:
            self.name = name
        self._metrics: Dict[str, float] = {}

    def record(self, metric: str, value: float) -> None:
        """Record a metric for the stage report."""
        self._metrics[metric] = float(value)

    def run(self, context: PipelineContext) -> None:
        """Execute the stage; must be overridden."""
        raise NotImplementedError

    def _take_metrics(self) -> Dict[str, float]:
        metrics, self._metrics = self._metrics, {}
        return metrics


class FunctionStage(PipelineStage):
    """Adapter turning a plain callable into a stage."""

    def __init__(self, name: str, function: Callable[[PipelineContext], None]):
        super().__init__(name=name)
        self._function = function

    def run(self, context: PipelineContext) -> None:
        self._function(context)


@dataclass
class ConstructionPipeline:
    """An ordered chain of stages with execution reporting.

    ``partition_build`` (a :class:`repro.core.partition.PartitionedBuild`)
    enables :meth:`run`'s ``partitions=N`` form — the partition-parallel
    build path; it is duck-typed here to avoid an import cycle.
    """

    name: str
    stages: List[PipelineStage] = field(default_factory=list)
    partition_build: Optional[object] = None
    reports: List[StageReport] = field(default_factory=list, init=False)

    def add_stage(self, stage: PipelineStage) -> "ConstructionPipeline":
        """Append a stage; returns self for chaining."""
        self.stages.append(stage)
        return self

    def add_function(
        self, name: str, function: Callable[[PipelineContext], None]
    ) -> "ConstructionPipeline":
        """Append a callable as a stage; returns self for chaining."""
        return self.add_stage(FunctionStage(name, function))

    def run(
        self,
        context: Optional[PipelineContext] = None,
        partitions: Optional[int] = None,
    ) -> PipelineContext:
        """Execute every stage in order, collecting reports.

        Each stage runs inside a tracing span (``stage.<name>``, nested
        under ``pipeline.<pipeline>``) and its :class:`StageReport` is
        folded into the global metrics registry.  A stage that raises
        still leaves a partial report — timed, with whatever metrics it
        recorded and an ``error`` — before the exception propagates.

        With ``partitions=N`` the pipeline instead runs the attached
        ``partition_build``'s partition → build → exchange stage chain
        for that shard count; ``partitions=1`` takes the same code path
        (it *is* the single-shard reference the equivalence tests pin
        ``partitions=N`` against).
        """
        if partitions is not None:
            if self.partition_build is None:
                raise ValueError(
                    f"pipeline {self.name!r} has no partition_build attached; "
                    "construct it with ConstructionPipeline(..., "
                    "partition_build=PartitionedBuild(...)) to run partitioned"
                )
            sharded = ConstructionPipeline(
                name=self.name,
                stages=self.partition_build.stages(partitions),
                partition_build=self.partition_build,
            )
            context = sharded.run(context)
            self.reports = sharded.reports
            return context
        context = context or PipelineContext()
        self.reports = []
        obs_progress.begin_pipeline(self.name, len(self.stages))
        try:
            with span(f"pipeline.{self.name}", pipeline=self.name):
                for stage in self.stages:
                    started = time.perf_counter()
                    obs_progress.begin_stage(stage.name)
                    with span(
                        f"stage.{stage.name}", pipeline=self.name, stage=stage.name
                    ) as stage_span:
                        try:
                            stage.run(context)
                        except BaseException as exc:
                            report = StageReport(
                                stage_name=stage.name,
                                seconds=time.perf_counter() - started,
                                metrics=stage._take_metrics(),
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            self.reports.append(report)
                            self._fold_report(report, stage_span)
                            obs_progress.end_stage(error=report.error)
                            raise
                    report = StageReport(
                        stage_name=stage.name,
                        seconds=time.perf_counter() - started,
                        metrics=stage._take_metrics(),
                    )
                    self.reports.append(report)
                    self._fold_report(report, stage_span)
                    obs_progress.end_stage()
                    for metric, value in report.metrics.items():
                        context.metrics[f"{stage.name}.{metric}"] = value
                self._snapshot_quality(context)
        finally:
            obs_progress.end_pipeline()
        return context

    def _snapshot_quality(self, context: PipelineContext) -> None:
        """Take a run-end quality snapshot of the constructed graph.

        Only with observability on and a ``kg`` artifact present; the
        snapshot lands in the registry (``quality.<pipeline>.*`` gauges),
        the global snapshot holder, and ``artifacts["quality_snapshot"]``.
        """
        if not _OBS_FLAGS.enabled:
            return
        graph = context.artifacts.get("kg")
        if graph is None:
            return
        with span(f"quality.snapshot.{self.name}", pipeline=self.name):
            try:
                snapshot = obs_quality.capture(graph, name=self.name)
            except TypeError:
                return  # artifact is not a snapshot-able graph
        context.artifacts["quality_snapshot"] = snapshot

    def _fold_report(self, report: StageReport, stage_span) -> None:
        """Push one stage report into the span tags + metrics registry."""
        stage_span.set_tag("seconds", round(report.seconds, 6))
        for metric, value in report.metrics.items():
            stage_span.set_tag(metric, value)
        obs_metrics.count("pipeline.stage.runs")
        obs_metrics.observe("pipeline.stage.seconds", report.seconds)
        prefix = f"pipeline.{self.name}.{report.stage_name}"
        for metric, value in report.metrics.items():
            obs_metrics.gauge(f"{prefix}.{metric}", value)
        if report.error is not None:
            obs_metrics.count("pipeline.stage.errors")

    def report_table(self) -> List[Dict[str, object]]:
        """Stage-by-stage report rows for printing."""
        rows = []
        for report in self.reports:
            row: Dict[str, object] = {"stage": report.stage_name, "seconds": round(report.seconds, 4)}
            row.update(report.metrics)
            if report.error is not None:
                row["error"] = report.error
            rows.append(row)
        return rows
