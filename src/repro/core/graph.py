"""The entity-based knowledge graph (first generation, Sec. 2).

Nodes have one-to-one correspondence with real-world entities; every entity
carries an identifier, a class from the ontology, a canonical name, and
aliases.  Triples are indexed three ways (SPO / POS / OSP) so that any
pattern with one or two wildcards is answered without a scan — the classic
triple-store layout.

Provenance is kept per (triple, source) pair, which is what the fusion and
trust machinery of Sec. 2.4 consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.ontology import Ontology
from repro.core.triple import AttributedTriple, Provenance, Triple, Value
from repro.obs import lineage as obs_lineage


@dataclass
class Entity:
    """A node with real-world identity.

    "Most entities in entity-based KG are *named* entities, each
    corresponding to a real-world entity" (Sec. 2).
    """

    entity_id: str
    name: str
    entity_class: str
    aliases: Set[str] = field(default_factory=set)

    def all_names(self) -> Set[str]:
        """Canonical name plus aliases."""
        return {self.name} | self.aliases


class KnowledgeGraph:
    """An indexed, provenance-aware entity-based KG."""

    def __init__(self, ontology: Optional[Ontology] = None, name: str = "kg"):
        self.name = name
        self.ontology = ontology or Ontology()
        self._entities: Dict[str, Entity] = {}
        self._triples: Set[Triple] = set()
        self._provenance: Dict[Triple, List[Provenance]] = defaultdict(list)
        # Indexes: subject -> predicate -> set(object), etc.
        self._spo: Dict[str, Dict[str, Set[Value]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[str, Dict[Value, Set[str]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Value, Dict[str, Set[str]]] = defaultdict(lambda: defaultdict(set))
        self._name_index: Dict[str, Set[str]] = defaultdict(set)

    # ------------------------------------------------------------------
    # entities

    def add_entity(
        self,
        entity_id: str,
        name: str,
        entity_class: str,
        aliases: Iterable[str] = (),
    ) -> Entity:
        """Register an entity node.

        The class must exist in the ontology; duplicate ids are rejected
        because entity-based KGs require one node per real-world entity.
        """
        if entity_id in self._entities:
            raise ValueError(f"duplicate entity id: {entity_id!r}")
        if not self.ontology.has_class(entity_class):
            raise ValueError(f"unknown entity class: {entity_class!r}")
        entity = Entity(
            entity_id=entity_id,
            name=name,
            entity_class=entity_class,
            aliases=set(aliases),
        )
        self._entities[entity_id] = entity
        for alias in entity.all_names():
            self._name_index[alias.lower()].add(entity_id)
        return entity

    def entity(self, entity_id: str) -> Entity:
        """Look up an entity by id."""
        if entity_id not in self._entities:
            raise KeyError(f"unknown entity: {entity_id!r}")
        return self._entities[entity_id]

    def has_entity(self, entity_id: str) -> bool:
        """True when the id names a registered entity."""
        return entity_id in self._entities

    def entities(self, entity_class: Optional[str] = None) -> Iterator[Entity]:
        """Iterate entities, optionally restricted to a class subtree."""
        for entity in sorted(self._entities.values(), key=lambda e: e.entity_id):
            if entity_class is None or self.ontology.is_subclass_of(
                entity.entity_class, entity_class
            ):
                yield entity

    def find_by_name(self, name: str) -> List[Entity]:
        """Entities whose canonical name or alias matches (case-insensitive).

        Multiple hits are expected: "different entities may share the same
        name (thus entity disambiguation)" (Sec. 2.2).
        """
        ids = self._name_index.get(name.lower(), set())
        return [self._entities[entity_id] for entity_id in sorted(ids)]

    def add_alias(self, entity_id: str, alias: str) -> None:
        """Record an additional surface form for an entity."""
        entity = self.entity(entity_id)
        entity.aliases.add(alias)
        self._name_index[alias.lower()].add(entity_id)

    # ------------------------------------------------------------------
    # triples

    def add_triple(
        self,
        triple: Triple,
        provenance: Optional[Provenance] = None,
        validate: bool = False,
    ) -> bool:
        """Insert a triple; returns True when the triple is new.

        Provenance accumulates across repeated insertions of the same
        triple from different sources — that multiplicity is the fusion
        signal.  With ``validate=True`` the ontology must accept the triple
        (entity-based rigidity); by default validation is advisory.
        """
        if triple.subject not in self._entities:
            raise ValueError(f"unknown subject entity: {triple.subject!r}")
        if validate:
            subject_class = self._entities[triple.subject].entity_class
            problems = self.ontology.validate_triple(triple, subject_class)
            if problems:
                raise ValueError(f"triple rejected: {'; '.join(problems)}")
        is_new = triple not in self._triples
        if is_new:
            self._triples.add(triple)
            self._spo[triple.subject][triple.predicate].add(triple.object)
            self._pos[triple.predicate][triple.object].add(triple.subject)
            self._osp[triple.object][triple.subject].add(triple.predicate)
        if provenance is not None:
            self._provenance[triple].append(provenance)
            obs_lineage.record_observation(
                triple.subject,
                triple.predicate,
                triple.object,
                source=provenance.source,
                extractor=provenance.extractor,
                confidence=provenance.confidence,
                stage="graph.add_triple",
            )
        return is_new

    def add(self, subject: str, predicate: str, obj: Value, **kwargs) -> bool:
        """Convenience wrapper around :meth:`add_triple`."""
        return self.add_triple(Triple(subject, predicate, obj), **kwargs)

    def remove_triple(self, triple: Triple) -> bool:
        """Delete a triple and its provenance; True when it existed."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._provenance.pop(triple, None)
        self._spo[triple.subject][triple.predicate].discard(triple.object)
        self._pos[triple.predicate][triple.object].discard(triple.subject)
        self._osp[triple.object][triple.subject].discard(triple.predicate)
        return True

    def __contains__(self, triple: Triple) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def triples(self) -> Iterator[Triple]:
        """Iterate all triples in deterministic order."""
        return iter(sorted(self._triples))

    def provenance(self, triple: Triple) -> List[Provenance]:
        """All provenance records attached to a triple."""
        return list(self._provenance.get(triple, []))

    def attributed_triples(self) -> Iterator[AttributedTriple]:
        """Iterate (triple, provenance) pairs; triples without provenance get
        a default record naming the graph itself."""
        for triple in self.triples():
            records = self._provenance.get(triple)
            if not records:
                yield AttributedTriple(triple, Provenance(source=self.name))
            else:
                for record in records:
                    yield AttributedTriple(triple, record)

    # ------------------------------------------------------------------
    # queries

    def query(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[Value] = None,
    ) -> List[Triple]:
        """Match a triple pattern; ``None`` components are wildcards.

        Uses whichever index binds the most components, so no full scan is
        needed unless all three components are wildcards.
        """
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, set())
            if obj is not None:
                objects = objects & {obj}
            return sorted(Triple(subject, predicate, o) for o in objects)
        if subject is not None:
            results = []
            for pred, objects in self._spo.get(subject, {}).items():
                for candidate in objects:
                    if obj is None or candidate == obj:
                        results.append(Triple(subject, pred, candidate))
            return sorted(results)
        if predicate is not None:
            results = []
            if obj is not None:
                for subj in self._pos.get(predicate, {}).get(obj, set()):
                    results.append(Triple(subj, predicate, obj))
            else:
                for candidate, subjects in self._pos.get(predicate, {}).items():
                    for subj in subjects:
                        results.append(Triple(subj, predicate, candidate))
            return sorted(results)
        if obj is not None:
            results = []
            for subj, predicates in self._osp.get(obj, {}).items():
                for pred in predicates:
                    results.append(Triple(subj, pred, obj))
            return sorted(results)
        return list(self.triples())

    def objects(self, subject: str, predicate: str) -> List[Value]:
        """All objects of (subject, predicate, ?)."""
        return sorted(self._spo.get(subject, {}).get(predicate, set()), key=str)

    def one_object(self, subject: str, predicate: str) -> Optional[Value]:
        """A single object if exactly one exists, else None."""
        objects = self._spo.get(subject, {}).get(predicate, set())
        if len(objects) == 1:
            return next(iter(objects))
        return None

    def subjects(self, predicate: str, obj: Value) -> List[str]:
        """All subjects of (?, predicate, object)."""
        return sorted(self._pos.get(predicate, {}).get(obj, set()))

    def neighbors(self, entity_id: str) -> List[Tuple[str, str, bool]]:
        """Adjacent entity nodes as ``(relation, other_id, outgoing)``.

        Only object-valued edges whose object is itself an entity count —
        the "connected graph" structure of Fig. 1(a).
        """
        result: List[Tuple[str, str, bool]] = []
        for predicate, objects in self._spo.get(entity_id, {}).items():
            for obj in objects:
                if isinstance(obj, str) and obj in self._entities:
                    result.append((predicate, obj, True))
        for subject, predicates in self._osp.get(entity_id, {}).items():
            for predicate in predicates:
                if subject in self._entities:
                    result.append((predicate, subject, False))
        return sorted(result)

    # ------------------------------------------------------------------
    # graph surgery (entity linkage applies this)

    def merge_entities(self, keep_id: str, drop_id: str) -> int:
        """Collapse ``drop_id`` into ``keep_id``; returns triples rewritten.

        This is how entity linkage decisions materialize: "we have a
        distinct node in the KG to represent a real-world entity" (Sec. 2.2).
        Aliases and provenance move over; duplicate triples collapse.
        """
        keep = self.entity(keep_id)
        drop = self.entity(drop_id)
        rewritten = 0
        for triple in [t for t in self._triples if t.subject == drop_id]:
            records = self._provenance.get(triple, [])
            self.remove_triple(triple)
            replacement = triple.replace_subject(keep_id)
            self.add_triple(replacement)
            for record in records:
                self._provenance[replacement].append(record)
            rewritten += 1
        for triple in [t for t in self._triples if t.object == drop_id]:
            records = self._provenance.get(triple, [])
            self.remove_triple(triple)
            replacement = triple.replace_object(keep_id)
            self.add_triple(replacement)
            for record in records:
                self._provenance[replacement].append(record)
            rewritten += 1
        for alias in drop.all_names():
            keep.aliases.add(alias)
            self._name_index[alias.lower()].discard(drop_id)
            self._name_index[alias.lower()].add(keep_id)
        keep.aliases.discard(keep.name)
        del self._entities[drop_id]
        obs_lineage.record_merge(
            keep_id, drop_id, n_rewritten=rewritten, stage="graph.merge_entities"
        )
        return rewritten

    # ------------------------------------------------------------------
    # stats

    def stats(self) -> Dict[str, int]:
        """Size statistics (the paper sizes KGs in triples — Sec. 2.4/2.5)."""
        entity_object_edges = 0
        for triple in self._triples:
            if isinstance(triple.object, str) and triple.object in self._entities:
                entity_object_edges += 1
        return {
            "n_entities": len(self._entities),
            "n_triples": len(self._triples),
            "n_entity_edges": entity_object_edges,
            "n_attribute_triples": len(self._triples) - entity_object_edges,
            "n_classes": self.ontology.stats()["n_classes"],
        }

    def copy(self) -> "KnowledgeGraph":
        """Deep-enough copy: entities, triples, and provenance."""
        clone = KnowledgeGraph(ontology=self.ontology, name=self.name)
        for entity in self._entities.values():
            clone.add_entity(
                entity.entity_id, entity.name, entity.entity_class, aliases=entity.aliases
            )
        for triple in self._triples:
            clone.add_triple(triple)
            for record in self._provenance.get(triple, []):
                clone._provenance[triple].append(record)
        return clone
