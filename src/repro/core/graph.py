"""The entity-based knowledge graph (first generation, Sec. 2).

Nodes have one-to-one correspondence with real-world entities; every entity
carries an identifier, a class from the ontology, a canonical name, and
aliases.  Triples are indexed three ways (SPO / POS / OSP) so that any
pattern with one or two wildcards is answered without a scan — the classic
triple-store layout.

Provenance is kept per (triple, source) pair, which is what the fusion and
trust machinery of Sec. 2.4 consumes.

Performance layer (the "as fast as the hardware allows" track):

* **generation-counter cached views** — sorted triple/entity snapshots are
  built once per mutation generation, so ``triples()`` / all-wildcard
  ``query()`` calls stop paying O(|T| log |T|) sorts on a read-mostly
  graph;
* **interned id table** — subject/predicate/entity-id strings go through
  ``sys.intern``, so every graph in the process shares one canonical
  object per distinct string and dict probes short-circuit on pointer
  identity;
* **index-backed merges** — ``merge_entities`` walks the SPO/OSP rows of
  the dropped entity (O(degree)) instead of scanning every triple, which
  is what entity linkage (Sec. 2.2) calls thousands of times;
* **batch ingestion** — ``add_triples_batch`` does one pass over primary
  storage with hoisted bookkeeping and a single deferred lineage flush;
  SPO/POS/OSP row construction is queued and materialized lazily by the
  first index-backed read (``_ensure_indexes``), the bulk-load shape
  Knowledge Vault-style web-scale construction loads arrive in.

Storage backends: ``backend="dict"`` (the default) keeps triples in a
``set`` plus nested-dict indexes; ``backend="columnar"`` swaps in
:class:`~repro.core.store.ColumnarTripleStore` — dictionary-encoded int
ids over sorted ``array('q')`` permutation columns — behind the same
API.  A graph may also log every mutation to an append-only WAL
(:meth:`attach_wal`, see :class:`repro.core.codec.TripleWAL`) and be
saved/loaded through the binary snapshot codec; snapshot loads defer
provenance decoding until the first provenance-touching operation
(``_materialize_provenance``), mirroring the ``_pending_index`` idiom.

Every fast path preserves the exact results, provenance, and lineage
records of the per-call API (guarded by the equivalence tests in
``tests/test_perf_equivalence.py``).
"""

from __future__ import annotations

import sys
from collections import defaultdict
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.core.ontology import Ontology
from repro.core.store import ColumnarTripleStore
from repro.core.triple import AttributedTriple, Provenance, Triple, Value
from repro.obs import lineage as obs_lineage

if TYPE_CHECKING:  # pragma: no cover - import cycle: codec imports graph
    from repro.core.codec import TripleWAL

#: One item of a batch ingest: a bare triple or a (triple, provenance) pair.
BatchItem = Union[Triple, Tuple[Triple, Optional[Provenance]]]

_intern = sys.intern

BACKENDS = ("dict", "columnar")


@dataclass
class Entity:
    """A node with real-world identity.

    "Most entities in entity-based KG are *named* entities, each
    corresponding to a real-world entity" (Sec. 2).
    """

    entity_id: str
    name: str
    entity_class: str
    aliases: Set[str] = field(default_factory=set)

    def all_names(self) -> Set[str]:
        """Canonical name plus aliases."""
        return {self.name} | self.aliases


class KnowledgeGraph:
    """An indexed, provenance-aware entity-based KG."""

    def __init__(
        self,
        ontology: Optional[Ontology] = None,
        name: str = "kg",
        backend: str = "dict",
    ):
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.name = name
        self.backend = backend
        self.ontology = ontology or Ontology()
        self._entities: Dict[str, Entity] = {}
        self._provenance: Dict[Triple, List[Provenance]] = defaultdict(list)
        # Snapshot loads install a thaw hook here instead of decoding
        # provenance eagerly; drained by ``_materialize_provenance``.
        self._provenance_thaw: Optional[Callable[["KnowledgeGraph"], None]] = None
        # Columnar backend: one store replaces the triple set and all
        # three nested-dict indexes below.
        self._store: Optional[ColumnarTripleStore] = (
            ColumnarTripleStore() if backend == "columnar" else None
        )
        self._triples: Set[Triple] = set()
        # Indexes: subject -> predicate -> set(object), etc.  Keys are the
        # canonical ``sys.intern``-ed string objects.
        self._spo: Dict[str, Dict[str, Set[Value]]] = defaultdict(lambda: defaultdict(set))
        self._pos: Dict[str, Dict[Value, Set[str]]] = defaultdict(lambda: defaultdict(set))
        self._osp: Dict[Value, Dict[str, Set[str]]] = defaultdict(lambda: defaultdict(set))
        self._name_index: Dict[str, Set[str]] = defaultdict(set)
        # Triples ingested by ``add_triples_batch`` whose index rows have not
        # been built yet; drained by ``_ensure_indexes`` on first index read.
        self._pending_index: List[Triple] = []
        # Optional write-ahead log (codec.TripleWAL); suspended while
        # merge_entities rewrites triples so a merge logs one record.
        self._wal: Optional["TripleWAL"] = None
        self._wal_suspended = False
        # Mutation generation plus the generation-stamped cached views.
        self._generation = 0
        self._triples_view: List[Triple] = []
        self._triples_view_generation = -1
        self._entities_view: List[Entity] = []
        self._entities_view_generation = -1

    # ------------------------------------------------------------------
    # cached sorted views

    @property
    def generation(self) -> int:
        """Monotonic mutation counter; unchanged generation ⇒ unchanged views."""
        return self._generation

    def _sorted_triples(self) -> List[Triple]:
        """The sorted triple snapshot for the current generation.

        Callers must not mutate the returned list; public APIs copy or
        wrap it in an iterator.
        """
        if self._triples_view_generation != self._generation:
            store = self._store
            if store is not None:
                self._triples_view = sorted(
                    Triple(s, p, o) for s, p, o in store.iter_triples()
                )
            else:
                self._triples_view = sorted(self._triples)
            self._triples_view_generation = self._generation
        return self._triples_view

    def _ensure_indexes(self) -> None:
        """Materialize index rows for batch-ingested triples (dict backend).

        ``add_triples_batch`` appends straight to the triple set and defers
        SPO/POS/OSP row construction here — the bulk-load pattern: writes
        pay only for primary storage, and the first index-backed read
        builds the rows in one tight pass.  Idempotent; a no-op when
        nothing is pending (always, under the columnar backend, whose
        store keeps its own permutations current).
        """
        pending = self._pending_index
        if not pending:
            return
        self._pending_index = []
        spo, pos, osp = self._spo, self._pos, self._osp
        for triple in pending:
            canonical_subject = _intern(triple.subject)
            canonical_predicate = _intern(triple.predicate)
            obj = triple.object
            spo[canonical_subject][canonical_predicate].add(obj)
            pos[canonical_predicate][obj].add(canonical_subject)
            osp[obj][canonical_subject].add(canonical_predicate)

    def _materialize_provenance(self) -> None:
        """Run a pending snapshot-provenance thaw (no-op otherwise).

        Called by every provenance-touching operation, so a graph booted
        from a snapshot pays for provenance decoding only if something
        actually reads or mutates provenance.
        """
        thaw = self._provenance_thaw
        if thaw is not None:
            self._provenance_thaw = None
            thaw(self)

    def _sorted_entities(self) -> List[Entity]:
        if self._entities_view_generation != self._generation:
            self._entities_view = sorted(
                self._entities.values(), key=lambda entity: entity.entity_id
            )
            self._entities_view_generation = self._generation
        return self._entities_view

    # ------------------------------------------------------------------
    # durability hooks

    def attach_wal(self, wal: "TripleWAL") -> None:
        """Log every subsequent mutation to ``wal``.

        Attach before building: only mutations made while attached are
        logged (recover pre-existing state from the WAL's base snapshot).
        """
        self._wal = wal

    def detach_wal(self) -> Optional["TripleWAL"]:
        """Stop logging; returns the previously attached WAL (if any)."""
        wal = self._wal
        self._wal = None
        return wal

    # ------------------------------------------------------------------
    # entities

    def add_entity(
        self,
        entity_id: str,
        name: str,
        entity_class: str,
        aliases: Iterable[str] = (),
    ) -> Entity:
        """Register an entity node.

        The class must exist in the ontology; duplicate ids are rejected
        because entity-based KGs require one node per real-world entity.
        """
        if entity_id in self._entities:
            raise ValueError(f"duplicate entity id: {entity_id!r}")
        if not self.ontology.has_class(entity_class):
            raise ValueError(f"unknown entity class: {entity_class!r}")
        entity = Entity(
            entity_id=_intern(entity_id),
            name=name,
            entity_class=entity_class,
            aliases=set(aliases),
        )
        self._entities[entity.entity_id] = entity
        for alias in entity.all_names():
            self._name_index[alias.lower()].add(entity_id)
        self._generation += 1
        if self._wal is not None and not self._wal_suspended:
            self._wal.append(
                {
                    "op": "entity",
                    "id": entity.entity_id,
                    "name": name,
                    "class": entity_class,
                    "aliases": sorted(entity.aliases),
                }
            )
        return entity

    def entity(self, entity_id: str) -> Entity:
        """Look up an entity by id."""
        if entity_id not in self._entities:
            raise KeyError(f"unknown entity: {entity_id!r}")
        return self._entities[entity_id]

    def has_entity(self, entity_id: str) -> bool:
        """True when the id names a registered entity."""
        return entity_id in self._entities

    def entities(self, entity_class: Optional[str] = None) -> Iterator[Entity]:
        """Iterate entities, optionally restricted to a class subtree."""
        for entity in self._sorted_entities():
            if entity_class is None or self.ontology.is_subclass_of(
                entity.entity_class, entity_class
            ):
                yield entity

    def find_by_name(self, name: str) -> List[Entity]:
        """Entities whose canonical name or alias matches (case-insensitive).

        Multiple hits are expected: "different entities may share the same
        name (thus entity disambiguation)" (Sec. 2.2).
        """
        ids = self._name_index.get(name.lower(), set())
        return [self._entities[entity_id] for entity_id in sorted(ids)]

    def add_alias(self, entity_id: str, alias: str) -> None:
        """Record an additional surface form for an entity."""
        entity = self.entity(entity_id)
        entity.aliases.add(alias)
        self._name_index[alias.lower()].add(entity_id)
        if self._wal is not None and not self._wal_suspended:
            self._wal.append({"op": "alias", "id": entity_id, "alias": alias})

    # ------------------------------------------------------------------
    # triples

    def add_triple(
        self,
        triple: Triple,
        provenance: Optional[Provenance] = None,
        validate: bool = False,
    ) -> bool:
        """Insert a triple; returns True when the triple is new.

        Provenance accumulates across repeated insertions of the same
        triple from different sources — that multiplicity is the fusion
        signal.  With ``validate=True`` the ontology must accept the triple
        (entity-based rigidity); by default validation is advisory.
        """
        subject = triple.subject
        if subject not in self._entities:
            raise ValueError(f"unknown subject entity: {subject!r}")
        if validate:
            subject_class = self._entities[subject].entity_class
            problems = self.ontology.validate_triple(triple, subject_class)
            if problems:
                raise ValueError(f"triple rejected: {'; '.join(problems)}")
        store = self._store
        if store is not None:
            is_new = store.add(subject, triple.predicate, triple.object)
            if is_new:
                self._generation += 1
        else:
            triples = self._triples
            before = len(triples)
            triples.add(triple)
            is_new = len(triples) != before
            if is_new:
                canonical_subject = _intern(subject)
                canonical_predicate = _intern(triple.predicate)
                obj = triple.object
                self._spo[canonical_subject][canonical_predicate].add(obj)
                self._pos[canonical_predicate][obj].add(canonical_subject)
                self._osp[obj][canonical_subject].add(canonical_predicate)
                self._generation += 1
        if provenance is not None:
            self._materialize_provenance()
            self._provenance[triple].append(provenance)
            obs_lineage.record_observation(
                triple.subject,
                triple.predicate,
                triple.object,
                source=provenance.source,
                extractor=provenance.extractor,
                confidence=provenance.confidence,
                stage="graph.add_triple",
            )
        if (
            self._wal is not None
            and not self._wal_suspended
            and (is_new or provenance is not None)
        ):
            record: Dict[str, object] = {
                "op": "add",
                "s": subject,
                "p": triple.predicate,
                "o": triple.object,
            }
            if provenance is not None:
                record["prov"] = [
                    provenance.source,
                    provenance.extractor,
                    provenance.confidence,
                ]
            self._wal.append(record)
        return is_new

    def add(self, subject: str, predicate: str, obj: Value, **kwargs) -> bool:
        """Convenience wrapper around :meth:`add_triple`."""
        return self.add_triple(Triple(subject, predicate, obj), **kwargs)

    def add_triples_batch(
        self, items: Iterable[BatchItem], validate: bool = False
    ) -> int:
        """Ingest many triples in one pass; returns how many were new.

        ``items`` mixes bare :class:`Triple` objects and
        ``(triple, provenance)`` pairs.  Observably identical to calling
        :meth:`add_triple` per item — same query answers, provenance lists,
        and lineage events in the same order — but the loop touches only
        primary storage: on the dict backend SPO/POS/OSP row construction
        is deferred to :meth:`_ensure_indexes` (paid once by the first
        index-backed read), and lineage recording is flushed to the ledger
        once, under a single lock acquisition.  With a WAL attached, the
        dict path logs every item (it never probes per-item newness;
        replaying a duplicate add is a no-op).  Either path logs the whole
        batch as one ``add_batch`` WAL record — one frame, one checksum,
        one JSON document — so replaying a large ingest decodes at C
        speed instead of parsing one record per triple.
        """
        self._materialize_provenance()
        if self._store is not None:
            return self._add_triples_batch_columnar(items, validate)
        entities = self._entities
        triples = self._triples
        triples_add = triples.add
        # setdefault instead of defaultdict __getitem__: a miss would hash
        # the triple twice (lookup + __missing__ insertion).
        provenance_row = self._provenance.setdefault
        ontology = self.ontology
        lineage_on = obs_lineage.lineage_enabled()
        wal = self._wal if not self._wal_suspended else None
        wal_rows: List[List[object]] = []
        pending: List[Tuple[str, str, Value, str, Optional[str], float]] = []
        pending_append = pending.append
        # Duplicates are harmless in the deferred-index queue (row inserts
        # are idempotent set adds), so every item is queued without a
        # per-item newness probe; the new-triple count falls out of the
        # triple-set size delta once at the end.
        index_queue_append = self._pending_index.append
        n_before = len(triples)
        n_new = 0
        try:
            for item in items:
                if type(item) is tuple:
                    triple, provenance = item
                else:
                    triple = item
                    provenance = None
                subject = triple.subject
                if subject not in entities:
                    raise ValueError(f"unknown subject entity: {subject!r}")
                if validate:
                    problems = ontology.validate_triple(
                        triple, entities[subject].entity_class
                    )
                    if problems:
                        raise ValueError(f"triple rejected: {'; '.join(problems)}")
                triples_add(triple)
                index_queue_append(triple)
                if provenance is not None:
                    provenance_row(triple, []).append(provenance)
                    if lineage_on:
                        pending_append(
                            (
                                subject,
                                triple.predicate,
                                triple.object,
                                provenance.source,
                                provenance.extractor,
                                provenance.confidence,
                            )
                        )
                if wal is not None:
                    wal_rows.append(
                        [
                            subject,
                            triple.predicate,
                            triple.object,
                            None
                            if provenance is None
                            else [
                                provenance.source,
                                provenance.extractor,
                                provenance.confidence,
                            ],
                        ]
                    )
        finally:
            # One generation bump and one ledger flush per batch — also on
            # mid-batch errors, so partial state matches the per-call path.
            n_new = len(triples) - n_before
            if n_new:
                self._generation += 1
            if pending:
                obs_lineage.record_observation_batch(pending, stage="graph.add_triple")
            if wal_rows:
                wal.append({"op": "add_batch", "rows": wal_rows})
        return n_new

    def _add_triples_batch_columnar(
        self, items: Iterable[BatchItem], validate: bool
    ) -> int:
        """The columnar-backend batch loop: same observable behavior as the
        dict path; the store keeps its permutations current, so there is no
        deferred index queue.  With a WAL attached, only state-changing
        items (new triple or carried provenance) are logged, as one
        ``add_batch`` record.  A batch landing in an *empty* store takes
        the :meth:`~repro.core.store.ColumnarTripleStore.bulk_loader`
        path: rows are staged in a set and the columns sorted once, which
        is how snapshot loads and WAL replays skip the per-add delta
        bookkeeping entirely."""
        entities = self._entities
        store = self._store
        if store.n_base_rows or store.n_delta_rows:
            loader = None
            store_add = store.add
        else:
            loader = store.bulk_loader()
            store_add = loader.add
        provenance_row = self._provenance.setdefault
        ontology = self.ontology
        lineage_on = obs_lineage.lineage_enabled()
        wal = self._wal if not self._wal_suspended else None
        wal_rows: List[List[object]] = []
        pending: List[Tuple[str, str, Value, str, Optional[str], float]] = []
        pending_append = pending.append
        n_new = 0
        try:
            for item in items:
                if type(item) is tuple:
                    triple, provenance = item
                else:
                    triple = item
                    provenance = None
                subject = triple.subject
                if subject not in entities:
                    raise ValueError(f"unknown subject entity: {subject!r}")
                if validate:
                    problems = ontology.validate_triple(
                        triple, entities[subject].entity_class
                    )
                    if problems:
                        raise ValueError(f"triple rejected: {'; '.join(problems)}")
                is_new = store_add(subject, triple.predicate, triple.object)
                if is_new:
                    n_new += 1
                if provenance is not None:
                    provenance_row(triple, []).append(provenance)
                    if lineage_on:
                        pending_append(
                            (
                                subject,
                                triple.predicate,
                                triple.object,
                                provenance.source,
                                provenance.extractor,
                                provenance.confidence,
                            )
                        )
                if wal is not None and (is_new or provenance is not None):
                    wal_rows.append(
                        [
                            subject,
                            triple.predicate,
                            triple.object,
                            None
                            if provenance is None
                            else [
                                provenance.source,
                                provenance.extractor,
                                provenance.confidence,
                            ],
                        ]
                    )
        finally:
            if loader is not None:
                loader.finish()
            if n_new:
                self._generation += 1
            if pending:
                obs_lineage.record_observation_batch(pending, stage="graph.add_triple")
            if wal_rows:
                wal.append({"op": "add_batch", "rows": wal_rows})
        return n_new

    def remove_triple(self, triple: Triple) -> bool:
        """Delete a triple and its provenance; True when it existed.

        Emptied index rows are pruned so heavy merge/remove churn cannot
        grow ``_spo``/``_pos``/``_osp`` without bound.
        """
        store = self._store
        if store is not None:
            if not store.remove(triple.subject, triple.predicate, triple.object):
                return False
            self._materialize_provenance()
            self._provenance.pop(triple, None)
            self._generation += 1
            if self._wal is not None and not self._wal_suspended:
                self._wal.append(
                    {
                        "op": "remove",
                        "s": triple.subject,
                        "p": triple.predicate,
                        "o": triple.object,
                    }
                )
            return True
        triples = self._triples
        if triple not in triples:
            return False
        self._ensure_indexes()
        self._materialize_provenance()
        triples.discard(triple)
        self._provenance.pop(triple, None)
        subject, predicate, obj = triple.subject, triple.predicate, triple.object
        by_predicate = self._spo[subject]
        objects = by_predicate[predicate]
        objects.discard(obj)
        if not objects:
            del by_predicate[predicate]
            if not by_predicate:
                del self._spo[subject]
        by_object = self._pos[predicate]
        subjects = by_object[obj]
        subjects.discard(subject)
        if not subjects:
            del by_object[obj]
            if not by_object:
                del self._pos[predicate]
        by_subject = self._osp[obj]
        predicates = by_subject[subject]
        predicates.discard(predicate)
        if not predicates:
            del by_subject[subject]
            if not by_subject:
                del self._osp[obj]
        self._generation += 1
        if self._wal is not None and not self._wal_suspended:
            self._wal.append({"op": "remove", "s": subject, "p": predicate, "o": obj})
        return True

    def __contains__(self, triple: Triple) -> bool:
        store = self._store
        if store is not None:
            return store.contains(triple.subject, triple.predicate, triple.object)
        return triple in self._triples

    def __len__(self) -> int:
        store = self._store
        if store is not None:
            return len(store)
        return len(self._triples)

    def triples(self) -> Iterator[Triple]:
        """Iterate all triples in deterministic order (cached view)."""
        return iter(self._sorted_triples())

    def provenance(self, triple: Triple) -> List[Provenance]:
        """All provenance records attached to a triple."""
        self._materialize_provenance()
        return list(self._provenance.get(triple, []))

    def attributed_triples(self) -> Iterator[AttributedTriple]:
        """Iterate (triple, provenance) pairs; triples without provenance get
        a default record naming the graph itself."""
        self._materialize_provenance()
        for triple in self.triples():
            records = self._provenance.get(triple)
            if not records:
                yield AttributedTriple(triple, Provenance(source=self.name))
            else:
                for record in records:
                    yield AttributedTriple(triple, record)

    # ------------------------------------------------------------------
    # queries

    def query(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[Value] = None,
    ) -> List[Triple]:
        """Match a triple pattern; ``None`` components are wildcards.

        Uses whichever index binds the most components; the all-wildcard
        case returns the cached sorted view, so no per-call sort or scan
        is needed.
        """
        if subject is None and predicate is None and obj is None:
            return list(self._sorted_triples())
        store = self._store
        if store is not None:
            return self._query_columnar(store, subject, predicate, obj)
        self._ensure_indexes()
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, set())
            if obj is not None:
                objects = objects & {obj}
            return sorted(Triple(subject, predicate, o) for o in objects)
        if subject is not None:
            results = []
            for pred, objects in self._spo.get(subject, {}).items():
                for candidate in objects:
                    if obj is None or candidate == obj:
                        results.append(Triple(subject, pred, candidate))
            return sorted(results)
        if predicate is not None:
            results = []
            if obj is not None:
                for subj in self._pos.get(predicate, {}).get(obj, set()):
                    results.append(Triple(subj, predicate, obj))
            else:
                for candidate, subjects in self._pos.get(predicate, {}).items():
                    for subj in subjects:
                        results.append(Triple(subj, predicate, candidate))
            return sorted(results)
        if obj is not None:
            results = []
            for subj, predicates in self._osp.get(obj, {}).items():
                for pred in predicates:
                    results.append(Triple(subj, pred, obj))
            return sorted(results)
        raise AssertionError("unreachable: all-wildcard handled above")  # pragma: no cover

    def _query_columnar(
        self,
        store: ColumnarTripleStore,
        subject: Optional[str],
        predicate: Optional[str],
        obj: Optional[Value],
    ) -> List[Triple]:
        """Pattern dispatch over the store's merged permutation reads;
        result construction and ordering match the dict branches exactly."""
        if subject is not None and predicate is not None:
            objects = store.objects(subject, predicate)
            if obj is not None:
                objects = objects & {obj}
            return sorted(Triple(subject, predicate, o) for o in objects)
        if subject is not None:
            results = []
            for pred, objects in store.spo_row(subject).items():
                for candidate in objects:
                    if obj is None or candidate == obj:
                        results.append(Triple(subject, pred, candidate))
            return sorted(results)
        if predicate is not None:
            results = []
            if obj is not None:
                for subj in store.subjects(predicate, obj):
                    results.append(Triple(subj, predicate, obj))
            else:
                for candidate, subjects in store.pos_row(predicate).items():
                    for subj in subjects:
                        results.append(Triple(subj, predicate, candidate))
            return sorted(results)
        results = []
        for subj, predicates in store.osp_row(obj).items():
            for pred in predicates:
                results.append(Triple(subj, pred, obj))
        return sorted(results)

    def pattern_cardinality(
        self,
        subject: Optional[str] = None,
        predicate: Optional[str] = None,
        obj: Optional[Value] = None,
    ) -> int:
        """Exact size of ``query(...)``'s answer from index row sizes alone.

        Costs one or two dict probes — or, on the columnar backend, a
        binary-searched row range — plus a row-length sum for single bound
        components, and never materializes triples: the selectivity
        estimate join planning (``conjunctive_query``) orders patterns by.
        """
        store = self._store
        if store is not None:
            if subject is None and predicate is None and obj is None:
                return len(store)
            if subject is not None and predicate is not None:
                if obj is not None:
                    return 1 if store.contains(subject, predicate, obj) else 0
                return store.count_sp(subject, predicate)
            if subject is not None:
                if obj is not None:
                    return store.count_os(obj, subject)
                return store.count_s(subject)
            if predicate is not None:
                if obj is not None:
                    return store.count_po(predicate, obj)
                return store.count_p(predicate)
            return store.count_o(obj)
        if subject is None and predicate is None and obj is None:
            return len(self._triples)
        self._ensure_indexes()
        if subject is not None and predicate is not None:
            objects = self._spo.get(subject, {}).get(predicate, ())
            if obj is not None:
                return 1 if obj in objects else 0
            return len(objects)
        if subject is not None:
            if obj is not None:
                return len(self._osp.get(obj, {}).get(subject, ()))
            return sum(len(objects) for objects in self._spo.get(subject, {}).values())
        if predicate is not None:
            if obj is not None:
                return len(self._pos.get(predicate, {}).get(obj, ()))
            return sum(len(subjects) for subjects in self._pos.get(predicate, {}).values())
        return sum(len(predicates) for predicates in self._osp.get(obj, {}).values())

    def objects(self, subject: str, predicate: str) -> List[Value]:
        """All objects of (subject, predicate, ?)."""
        store = self._store
        if store is not None:
            return sorted(store.objects(subject, predicate), key=str)
        self._ensure_indexes()
        return sorted(self._spo.get(subject, {}).get(predicate, set()), key=str)

    def one_object(self, subject: str, predicate: str) -> Optional[Value]:
        """A single object if exactly one exists, else None."""
        store = self._store
        if store is not None:
            objects = store.objects(subject, predicate)
        else:
            self._ensure_indexes()
            objects = self._spo.get(subject, {}).get(predicate, set())
        if len(objects) == 1:
            return next(iter(objects))
        return None

    def subjects(self, predicate: str, obj: Value) -> List[str]:
        """All subjects of (?, predicate, object)."""
        store = self._store
        if store is not None:
            return sorted(store.subjects(predicate, obj))
        self._ensure_indexes()
        return sorted(self._pos.get(predicate, {}).get(obj, set()))

    def neighbors(self, entity_id: str) -> List[Tuple[str, str, bool]]:
        """Adjacent entity nodes as ``(relation, other_id, outgoing)``.

        Only object-valued edges whose object is itself an entity count —
        the "connected graph" structure of Fig. 1(a).
        """
        store = self._store
        if store is not None:
            spo_row = store.spo_row(entity_id)
            osp_row = store.osp_row(entity_id)
        else:
            self._ensure_indexes()
            spo_row = self._spo.get(entity_id, {})
            osp_row = self._osp.get(entity_id, {})
        result: List[Tuple[str, str, bool]] = []
        for predicate, objects in spo_row.items():
            for obj in objects:
                if isinstance(obj, str) and obj in self._entities:
                    result.append((predicate, obj, True))
        for subject, predicates in osp_row.items():
            for predicate in predicates:
                if subject in self._entities:
                    result.append((predicate, subject, False))
        return sorted(result)

    # ------------------------------------------------------------------
    # graph surgery (entity linkage applies this)

    def merge_entities(self, keep_id: str, drop_id: str) -> int:
        """Collapse ``drop_id`` into ``keep_id``; returns triples rewritten.

        This is how entity linkage decisions materialize: "we have a
        distinct node in the KG to represent a real-world entity" (Sec. 2.2).
        Aliases and provenance move over; duplicate triples collapse.

        Walks the dropped entity's SPO row (outgoing triples) and OSP row
        (incoming references) instead of scanning the whole triple set, so
        one merge costs O(degree(drop)) — the linkage stage applies
        thousands of these.  With a WAL attached, the whole merge logs one
        ``merge`` record (the constituent rewrites are suppressed; replay
        re-runs the merge).
        """
        keep = self.entity(keep_id)
        drop = self.entity(drop_id)
        if keep_id == drop_id:
            raise ValueError(f"cannot merge entity {keep_id!r} into itself")
        store = self._store
        if store is None:
            self._ensure_indexes()
        self._materialize_provenance()
        rewritten = 0
        wal_was_suspended = self._wal_suspended
        self._wal_suspended = True
        try:
            # Outgoing first, then incoming — the incoming row is re-read
            # after the first pass so a (drop, p, drop) self-loop is
            # rewritten twice, exactly like the scan-based algorithm.
            if store is not None:
                outgoing_rows = store.spo_row(drop_id)
            else:
                outgoing_rows = self._spo.get(drop_id, {})
            outgoing = [
                (predicate, obj)
                for predicate, objects in outgoing_rows.items()
                for obj in objects
            ]
            for predicate, obj in outgoing:
                self._rewrite_triple(
                    Triple(drop_id, predicate, obj), Triple(keep_id, predicate, obj)
                )
                rewritten += 1
            if store is not None:
                incoming_rows = store.osp_row(drop_id)
            else:
                incoming_rows = self._osp.get(drop_id, {})
            incoming = [
                (subject, predicate)
                for subject, predicates in incoming_rows.items()
                for predicate in predicates
            ]
            for subject, predicate in incoming:
                self._rewrite_triple(
                    Triple(subject, predicate, drop_id),
                    Triple(subject, predicate, keep_id),
                )
                rewritten += 1
        finally:
            self._wal_suspended = wal_was_suspended
        for alias in drop.all_names():
            keep.aliases.add(alias)
            self._name_index[alias.lower()].discard(drop_id)
            self._name_index[alias.lower()].add(keep_id)
        keep.aliases.discard(keep.name)
        del self._entities[drop_id]
        self._generation += 1
        obs_lineage.record_merge(
            keep_id, drop_id, n_rewritten=rewritten, stage="graph.merge_entities"
        )
        if self._wal is not None and not self._wal_suspended:
            self._wal.append({"op": "merge", "keep": keep_id, "drop": drop_id})
        return rewritten

    def _rewrite_triple(self, old: Triple, new: Triple) -> None:
        """Replace ``old`` with ``new``, carrying provenance records over."""
        records = self._provenance.get(old, [])
        self.remove_triple(old)
        self.add_triple(new)
        if records:
            self._provenance[new].extend(records)

    # ------------------------------------------------------------------
    # stats

    def stats(self) -> Dict[str, int]:
        """Size statistics (the paper sizes KGs in triples — Sec. 2.4/2.5).

        ``n_id_terms`` reports the id-table size: distinct dictionary-
        encoded terms on the columnar backend, distinct index-key terms on
        the dict backend.  Columnar ids are never recycled, so after
        removals or merges the columnar count can exceed the dict
        backend's live-term count.
        """
        store = self._store
        entities = self._entities
        entity_object_edges = 0
        if store is not None:
            n_triples = len(store)
            for _, _, obj in store.iter_triples():
                if isinstance(obj, str) and obj in entities:
                    entity_object_edges += 1
            n_id_terms = store.n_terms
        else:
            n_triples = len(self._triples)
            for triple in self._triples:
                if isinstance(triple.object, str) and triple.object in entities:
                    entity_object_edges += 1
            self._ensure_indexes()
            n_id_terms = len(
                set(self._spo) | set(self._pos) | set(self._osp)
            )
        return {
            "n_entities": len(entities),
            "n_triples": n_triples,
            "n_entity_edges": entity_object_edges,
            "n_attribute_triples": n_triples - entity_object_edges,
            "n_classes": self.ontology.stats()["n_classes"],
            "n_id_terms": n_id_terms,
        }

    def copy(self) -> "KnowledgeGraph":
        """Deep-enough copy: entities, triples, and provenance (same backend)."""
        clone = KnowledgeGraph(ontology=self.ontology, name=self.name, backend=self.backend)
        for entity in self._entities.values():
            clone.add_entity(
                entity.entity_id, entity.name, entity.entity_class, aliases=entity.aliases
            )
        self._materialize_provenance()
        if self._store is not None:
            clone._store = self._store.clone()
            if len(clone._store):
                clone._generation += 1
        else:
            clone.add_triples_batch(self._triples)
        for triple, records in self._provenance.items():
            if records:
                clone._provenance[triple].extend(records)
        return clone
