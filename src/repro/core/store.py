"""Columnar, dictionary-encoded triple storage (the web-scale layout).

The paper's trajectory from entity-based KGs to Knowledge Vault-style
web-scale construction (Sec. 2-3) assumes graphs far larger than a
Python ``Set[Triple]`` of string tuples can hold.  Production triple
stores answer that with two ideas (Hogan et al., *Knowledge Graphs*):

* **dictionary encoding** — every distinct term (entity id, predicate,
  literal value) maps to one small integer; triples become ``(int, int,
  int)`` rows and every string is stored exactly once;
* **index-per-permutation** — the rows are kept sorted in SPO, POS, and
  OSP orders as plain int columns, so any pattern with a bound prefix is
  a binary search plus a contiguous slice instead of a hash-table walk.

:class:`ColumnarTripleStore` implements both on ``array('q')`` columns
(8 bytes per component, no per-row object headers), with an LSM-flavored
**delta overlay** on top: mutations land in small dict-backed adds plus
a tombstone set over the sorted base, and :meth:`compact` merges them
back into the columns.  Reads merge base and delta, so the store
supports the full read/write API of
:class:`~repro.core.graph.KnowledgeGraph` — which swaps it in behind
``backend="columnar"`` with byte-identical results to the dict paths
(pinned by ``tests/test_perf_equivalence.py``).

Term identity follows Python equality, exactly like the dict backend's
sets: ``1``, ``1.0`` and ``True`` share one id, and decoding returns the
first-seen representative — the same first-insert-wins semantics a
``set`` gives the dict-backed graph.
"""

from __future__ import annotations

import sys
from array import array
from bisect import bisect_left, bisect_right
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.core.triple import Value
from repro.obs import metrics as obs_metrics

#: Delta rows + tombstones tolerated before :meth:`ColumnarTripleStore.add`
#: / :meth:`~ColumnarTripleStore.remove` triggers an automatic compaction.
#: The threshold scales with the base so steady bulk loads compact
#: O(log n) times, not O(n).
AUTO_COMPACT_MIN = 4096

_intern = sys.intern


class TermDict:
    """Bidirectional term <-> int-id dictionary.

    Ids are dense, assigned in first-seen order, and never recycled (a
    removed triple's terms keep their ids — standard dictionary-encoding
    practice, and what keeps snapshot/WAL references stable).  String
    terms are passed through :func:`sys.intern` so every graph in the
    process shares one canonical object per distinct string.
    """

    __slots__ = ("_id_of", "_terms")

    def __init__(self) -> None:
        self._id_of: Dict[Value, int] = {}
        self._terms: List[Value] = []

    def add(self, term: Value) -> int:
        """The term's id, allocating one on first sight."""
        term_id = self._id_of.get(term)
        if term_id is None:
            if type(term) is str:
                term = _intern(term)
            term_id = len(self._terms)
            self._id_of[term] = term_id
            self._terms.append(term)
        return term_id

    def get(self, term: Value) -> Optional[int]:
        """The term's id, or None when it was never seen."""
        return self._id_of.get(term)

    def decode(self, term_id: int) -> Value:
        """The first-seen representative for an id."""
        return self._terms[term_id]

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Value) -> bool:
        return term in self._id_of

    def terms(self) -> List[Value]:
        """All terms in id order (the snapshot dictionary section)."""
        return list(self._terms)

    def clone(self) -> "TermDict":
        clone = TermDict()
        clone._id_of = dict(self._id_of)
        clone._terms = list(self._terms)
        return clone

    @classmethod
    def _from_terms(cls, terms: List[Value]) -> "TermDict":
        """Trusted bulk construction from an id-ordered term list.

        Built with C-level ``dict(zip(...))`` instead of per-term adds —
        the snapshot-load path.  Raises on exact (same type, same value)
        duplicate terms, which a well-formed snapshot can never contain.
        Equality-only duplicates (``0`` next to ``0.0``) are legitimate:
        a dict-backend save keeps one id per *typed* term so a load
        reproduces every object's exact type.  For those, the first
        occurrence wins value lookups — matching runtime :meth:`add`
        semantics — while :meth:`decode` stays exact per id.
        """
        interned = [_intern(term) if type(term) is str else term for term in terms]
        term_dict = cls()
        term_dict._terms = interned
        term_dict._id_of = dict(zip(interned, range(len(interned))))
        if len(term_dict._id_of) != len(interned):
            id_of: Dict[Value, int] = {}
            for term_id, term in enumerate(interned):
                first_id = id_of.setdefault(term, term_id)
                if first_id != term_id and type(term) is type(interned[first_id]):
                    raise ValueError(
                        f"term dictionary has duplicate term {term!r} "
                        f"(ids {first_id} and {term_id})"
                    )
            term_dict._id_of = id_of
        return term_dict

    def memory_bytes(self) -> int:
        """Approximate heap bytes: maps plus the term payloads themselves."""
        total = sys.getsizeof(self._id_of) + sys.getsizeof(self._terms)
        for term in self._terms:
            total += sys.getsizeof(term)
        return total


def _build_from_rows(
    terms: TermDict, rows: Iterable[Tuple[int, int, int]]
) -> "ColumnarTripleStore":
    store = ColumnarTripleStore()
    store._terms = terms
    ordered = sorted(rows)
    store._load_sorted_unique(ordered)
    return store


class BulkLoader:
    """Accumulates rows for an empty store, installing columns once.

    Obtained from :meth:`ColumnarTripleStore.bulk_loader`; ``add`` returns
    the same newness bool as :meth:`ColumnarTripleStore.add`, and
    :meth:`finish` must be called (even after a partial batch) to land
    the accumulated rows — callers do it in a ``finally`` block so an
    interrupted batch keeps exactly the rows it processed.
    """

    __slots__ = ("_store", "_encode", "_rows", "_finished")

    def __init__(self, store: ColumnarTripleStore) -> None:
        self._store = store
        self._encode = store._terms.add
        self._rows: Set[Tuple[int, int, int]] = set()
        self._finished = False

    def add(self, subject: str, predicate: str, obj: Value) -> bool:
        """Stage a triple; True when not already staged (i.e. new)."""
        encode = self._encode
        row = (encode(subject), encode(predicate), encode(obj))
        if row in self._rows:
            return False
        self._rows.add(row)
        return True

    def finish(self) -> None:
        """Sort the staged rows and install them as the store's base."""
        if self._finished:
            return
        self._finished = True
        self._store._load_sorted_unique(sorted(self._rows))
        self._rows = set()


class ColumnarTripleStore:
    """Sorted int columns per permutation + a mutable delta overlay.

    Base storage is nine ``array('q')`` columns — three per permutation,
    each permutation's rows sorted by its own (first, second, third)
    component order — holding one entry per triple.  Mutations never
    touch the sorted arrays: adds land in nested int-keyed delta dicts
    (mirroring the dict backend's index shape) and deletes of base rows
    land in a tombstone set; :meth:`compact` folds both back into fresh
    columns.  All read methods merge base − tombstones + delta.
    """

    def __init__(self) -> None:
        self._terms = TermDict()
        # Base permutations: column tuples in each permutation's own order.
        self._spo = (array("q"), array("q"), array("q"))  # (s, p, o)
        self._pos = (array("q"), array("q"), array("q"))  # (p, o, s)
        self._osp = (array("q"), array("q"), array("q"))  # (o, s, p)
        self._n_base = 0
        # Delta overlay: adds not yet merged into the columns.
        self._delta_spo: Dict[int, Dict[int, Set[int]]] = {}
        self._delta_pos: Dict[int, Dict[int, Set[int]]] = {}
        self._delta_osp: Dict[int, Dict[int, Set[int]]] = {}
        self._n_delta = 0
        # Base rows logically deleted, as (s, p, o) id tuples.
        self._tombstones: Set[Tuple[int, int, int]] = set()
        self.n_compactions = 0

    # ------------------------------------------------------------------
    # identity / size

    @property
    def n_terms(self) -> int:
        """Distinct dictionary-encoded terms (the id-table size)."""
        return len(self._terms)

    @property
    def n_base_rows(self) -> int:
        return self._n_base

    @property
    def n_delta_rows(self) -> int:
        return self._n_delta

    def __len__(self) -> int:
        return self._n_base - len(self._tombstones) + self._n_delta

    # ------------------------------------------------------------------
    # encoding helpers

    def _encode_existing(
        self, subject: Value, predicate: Value, obj: Value
    ) -> Optional[Tuple[int, int, int]]:
        """Id triple when every term is known, else None (triple absent)."""
        get = self._terms.get
        s = get(subject)
        if s is None:
            return None
        p = get(predicate)
        if p is None:
            return None
        o = get(obj)
        if o is None:
            return None
        return (s, p, o)

    def _base_contains(self, row: Tuple[int, int, int]) -> bool:
        s_col, p_col, o_col = self._spo
        lo = bisect_left(s_col, row[0])
        hi = bisect_right(s_col, row[0], lo)
        lo = bisect_left(p_col, row[1], lo, hi)
        hi = bisect_right(p_col, row[1], lo, hi)
        lo = bisect_left(o_col, row[2], lo, hi)
        return lo < hi and o_col[lo] == row[2]

    def _delta_contains(self, row: Tuple[int, int, int]) -> bool:
        by_predicate = self._delta_spo.get(row[0])
        if not by_predicate:
            return False
        objects = by_predicate.get(row[1])
        return bool(objects) and row[2] in objects

    # ------------------------------------------------------------------
    # mutation

    def add(self, subject: str, predicate: str, obj: Value) -> bool:
        """Insert a triple; True when it was not already present."""
        encode = self._terms.add
        row = (encode(subject), encode(predicate), encode(obj))
        if self._delta_contains(row):
            return False
        if self._base_contains(row):
            # Resurrecting a tombstoned base row just clears the tombstone.
            if row in self._tombstones:
                self._tombstones.discard(row)
                return True
            return False
        s, p, o = row
        self._delta_spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self._delta_pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self._delta_osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self._n_delta += 1
        self._maybe_compact()
        return True

    def remove(self, subject: str, predicate: str, obj: Value) -> bool:
        """Delete a triple; True when it existed."""
        row = self._encode_existing(subject, predicate, obj)
        if row is None:
            return False
        if self._delta_contains(row):
            s, p, o = row
            self._prune_delta(self._delta_spo, s, p, o)
            self._prune_delta(self._delta_pos, p, o, s)
            self._prune_delta(self._delta_osp, o, s, p)
            self._n_delta -= 1
            return True
        if self._base_contains(row) and row not in self._tombstones:
            self._tombstones.add(row)
            self._maybe_compact()
            return True
        return False

    @staticmethod
    def _prune_delta(
        index: Dict[int, Dict[int, Set[int]]], a: int, b: int, c: int
    ) -> None:
        by_b = index[a]
        values = by_b[b]
        values.discard(c)
        if not values:
            del by_b[b]
            if not by_b:
                del index[a]

    def contains(self, subject: str, predicate: str, obj: Value) -> bool:
        row = self._encode_existing(subject, predicate, obj)
        if row is None:
            return False
        if self._delta_contains(row):
            return True
        return self._base_contains(row) and row not in self._tombstones

    def bulk_loader(self) -> "BulkLoader":
        """A fast row loader for an **empty** store.

        Per-row work collapses to encode + one set probe — no delta
        maintenance, no base bisects, no progressive auto-compactions —
        and :meth:`BulkLoader.finish` sorts and installs the columns once.
        Newness semantics match per-row :meth:`add` exactly (on an empty
        store every first occurrence is new).
        """
        if self._n_base or self._n_delta or self._tombstones:
            raise ValueError("bulk_loader requires an empty store")
        return BulkLoader(self)

    # ------------------------------------------------------------------
    # compaction

    def _maybe_compact(self) -> None:
        churn = self._n_delta + len(self._tombstones)
        if churn >= AUTO_COMPACT_MIN and churn >= self._n_base:
            self.compact()

    def compact(self) -> None:
        """Fold delta adds and tombstones into fresh sorted base columns."""
        if not self._n_delta and not self._tombstones:
            return
        rows = list(self._iter_base_rows())
        for s, by_predicate in self._delta_spo.items():
            for p, objects in by_predicate.items():
                for o in objects:
                    rows.append((s, p, o))
        rows.sort()
        self._load_sorted_unique(rows)
        self._delta_spo = {}
        self._delta_pos = {}
        self._delta_osp = {}
        self._n_delta = 0
        self._tombstones = set()
        self.n_compactions += 1
        obs_metrics.count("store.columnar.compactions")
        obs_metrics.gauge("store.columnar.base_rows", self._n_base)
        obs_metrics.gauge("store.columnar.terms", self.n_terms)

    def _load_sorted_unique(self, rows: List[Tuple[int, int, int]]) -> None:
        """Install ``rows`` (sorted, unique, not tombstoned) as the base.

        All transposes run at C speed: ``zip(*rows)`` splits the sorted
        rows into columns, ``zip(col, col, col)`` re-pairs them for the
        other permutations' sorts, and ``array('q', tuple)`` bulk-copies.
        """
        if not rows:
            self._spo = (array("q"), array("q"), array("q"))
            self._pos = (array("q"), array("q"), array("q"))
            self._osp = (array("q"), array("q"), array("q"))
            self._n_base = 0
            return
        s_vals, p_vals, o_vals = zip(*rows)
        self._spo = (array("q", s_vals), array("q", p_vals), array("q", o_vals))
        pos_p, pos_o, pos_s = zip(*sorted(zip(p_vals, o_vals, s_vals)))
        self._pos = (array("q", pos_p), array("q", pos_o), array("q", pos_s))
        osp_o, osp_s, osp_p = zip(*sorted(zip(o_vals, s_vals, p_vals)))
        self._osp = (array("q", osp_o), array("q", osp_s), array("q", osp_p))
        self._n_base = len(rows)

    # ------------------------------------------------------------------
    # iteration

    def _iter_base_rows(self) -> Iterator[Tuple[int, int, int]]:
        """Live base rows (tombstones skipped), in SPO order."""
        s_col, p_col, o_col = self._spo
        tombstones = self._tombstones
        if tombstones:
            for i in range(self._n_base):
                row = (s_col[i], p_col[i], o_col[i])
                if row not in tombstones:
                    yield row
        else:
            for i in range(self._n_base):
                yield (s_col[i], p_col[i], o_col[i])

    def iter_triples(self) -> Iterator[Tuple[str, str, Value]]:
        """All live triples as decoded terms (order unspecified)."""
        decode = self._terms.decode
        for s, p, o in self._iter_base_rows():
            yield (decode(s), decode(p), decode(o))
        for s, by_predicate in self._delta_spo.items():
            subject = decode(s)
            for p, objects in by_predicate.items():
                predicate = decode(p)
                for o in objects:
                    yield (subject, predicate, decode(o))

    # ------------------------------------------------------------------
    # base range scans (binary search on the permutation columns)

    @staticmethod
    def _prefix_range(
        cols: Tuple[array, array, array], a: int, b: Optional[int] = None
    ) -> Tuple[int, int]:
        """The contiguous [lo, hi) row range matching a 1- or 2-term prefix."""
        c0, c1, _ = cols
        lo = bisect_left(c0, a)
        hi = bisect_right(c0, a, lo)
        if b is not None:
            lo = bisect_left(c1, b, lo, hi)
            hi = bisect_right(c1, b, lo, hi)
        return lo, hi

    def _scan(
        self,
        perm: str,
        cols: Tuple[array, array, array],
        a: int,
        b: Optional[int] = None,
    ) -> Iterator[Tuple[int, int, int]]:
        """Live base rows under a prefix, yielded in permutation order.

        ``perm`` names the column order so tombstones (stored as SPO
        tuples) can be checked.
        """
        lo, hi = self._prefix_range(cols, a, b)
        if lo >= hi:
            return
        c0, c1, c2 = cols
        tombstones = self._tombstones
        for i in range(lo, hi):
            row = (c0[i], c1[i], c2[i])
            if tombstones:
                if perm == "spo":
                    key = row
                elif perm == "pos":
                    key = (row[2], row[0], row[1])
                else:  # osp: (o, s, p) -> (s, p, o)
                    key = (row[1], row[2], row[0])
                if key in tombstones:
                    continue
            yield row

    # ------------------------------------------------------------------
    # merged row reads (what the graph's query paths consume)

    def objects(self, subject: str, predicate: str) -> Set[Value]:
        """All objects of (subject, predicate, ?)."""
        get = self._terms.get
        s = get(subject)
        p = get(predicate)
        if s is None or p is None:
            return set()
        decode = self._terms.decode
        result = {decode(row[2]) for row in self._scan("spo", self._spo, s, p)}
        by_predicate = self._delta_spo.get(s)
        if by_predicate:
            for o in by_predicate.get(p, ()):
                result.add(decode(o))
        return result

    def subjects(self, predicate: str, obj: Value) -> Set[str]:
        """All subjects of (?, predicate, object)."""
        get = self._terms.get
        p = get(predicate)
        o = get(obj)
        if p is None or o is None:
            return set()
        decode = self._terms.decode
        result = {decode(row[2]) for row in self._scan("pos", self._pos, p, o)}
        by_object = self._delta_pos.get(p)
        if by_object:
            for s in by_object.get(o, ()):
                result.add(decode(s))
        return result

    def spo_row(self, subject: str) -> Dict[str, Set[Value]]:
        """predicate -> objects for one subject (merged base + delta)."""
        s = self._terms.get(subject)
        if s is None:
            return {}
        decode = self._terms.decode
        result: Dict[str, Set[Value]] = {}
        for _, p, o in self._scan("spo", self._spo, s):
            result.setdefault(decode(p), set()).add(decode(o))
        for p, objects in self._delta_spo.get(s, {}).items():
            if objects:
                row = result.setdefault(decode(p), set())
                for o in objects:
                    row.add(decode(o))
        return result

    def pos_row(self, predicate: str) -> Dict[Value, Set[str]]:
        """object -> subjects for one predicate (merged base + delta)."""
        p = self._terms.get(predicate)
        if p is None:
            return {}
        decode = self._terms.decode
        result: Dict[Value, Set[str]] = {}
        for _, o, s in self._scan("pos", self._pos, p):
            result.setdefault(decode(o), set()).add(decode(s))
        for o, subjects in self._delta_pos.get(p, {}).items():
            if subjects:
                row = result.setdefault(decode(o), set())
                for s in subjects:
                    row.add(decode(s))
        return result

    def osp_row(self, obj: Value) -> Dict[str, Set[str]]:
        """subject -> predicates for one object (merged base + delta)."""
        o = self._terms.get(obj)
        if o is None:
            return {}
        decode = self._terms.decode
        result: Dict[str, Set[str]] = {}
        for _, s, p in self._scan("osp", self._osp, o):
            result.setdefault(decode(s), set()).add(decode(p))
        for s, predicates in self._delta_osp.get(o, {}).items():
            if predicates:
                row = result.setdefault(decode(s), set())
                for p in predicates:
                    row.add(decode(p))
        return result

    # ------------------------------------------------------------------
    # cardinalities (index row sizes without materializing triples)

    def _count(
        self,
        perm: str,
        cols: Tuple[array, array, array],
        delta: Dict[int, Dict[int, Set[int]]],
        a: Optional[int],
        b: Optional[int] = None,
    ) -> int:
        if a is None:
            return 0
        lo, hi = self._prefix_range(cols, a, b)
        count = hi - lo
        if count and self._tombstones:
            count = sum(1 for _ in self._scan(perm, cols, a, b))
        by_b = delta.get(a)
        if by_b:
            if b is None:
                count += sum(len(values) for values in by_b.values())
            else:
                count += len(by_b.get(b, ()))
        return count

    def count_sp(self, subject: str, predicate: str) -> int:
        get = self._terms.get
        s, p = get(subject), get(predicate)
        return 0 if s is None or p is None else self._count("spo", self._spo, self._delta_spo, s, p)

    def count_s(self, subject: str) -> int:
        return self._count("spo", self._spo, self._delta_spo, self._terms.get(subject))

    def count_po(self, predicate: str, obj: Value) -> int:
        get = self._terms.get
        p, o = get(predicate), get(obj)
        return 0 if p is None or o is None else self._count("pos", self._pos, self._delta_pos, p, o)

    def count_p(self, predicate: str) -> int:
        return self._count("pos", self._pos, self._delta_pos, self._terms.get(predicate))

    def count_os(self, obj: Value, subject: str) -> int:
        get = self._terms.get
        o, s = get(obj), get(subject)
        return 0 if o is None or s is None else self._count("osp", self._osp, self._delta_osp, o, s)

    def count_o(self, obj: Value) -> int:
        return self._count("osp", self._osp, self._delta_osp, self._terms.get(obj))

    # ------------------------------------------------------------------
    # bulk load / clone / accounting

    @classmethod
    def from_columns(
        cls,
        terms: List[Value],
        s_col: Iterable[int],
        p_col: Iterable[int],
        o_col: Iterable[int],
    ) -> "ColumnarTripleStore":
        """Rebuild a store from a snapshot's dictionary and SPO columns.

        The term list is trusted to be in id order; rows are re-sorted, so
        column order in the file does not matter.
        """
        return _build_from_rows(TermDict._from_terms(terms), zip(s_col, p_col, o_col))

    def columns(self) -> Tuple[List[Value], array, array, array]:
        """(terms, s, p, o) with every live row folded in (for snapshots)."""
        self.compact()
        return (self._terms.terms(), self._spo[0], self._spo[1], self._spo[2])

    def sorted_columns(
        self,
    ) -> Tuple[
        List[Value],
        Tuple[array, array, array],
        Tuple[array, array, array],
        Tuple[array, array, array],
    ]:
        """(terms, spo, pos, osp) fully compacted — all nine base columns.

        Snapshots persist every permutation so loading is a straight
        ``array.frombytes`` with no re-sorting or re-indexing.
        """
        self.compact()
        return (self._terms.terms(), self._spo, self._pos, self._osp)

    @classmethod
    def from_sorted_columns(
        cls,
        terms: List[Value],
        spo: Tuple[array, array, array],
        pos: Tuple[array, array, array],
        osp: Tuple[array, array, array],
    ) -> "ColumnarTripleStore":
        """Install snapshot columns directly, trusting their sort order.

        The columns come from :meth:`sorted_columns` via the checksummed
        snapshot codec, so they are sorted, unique, and untombstoned by
        construction; only cheap shape invariants are re-checked here.
        """
        term_dict = TermDict._from_terms(terms)
        n_rows = len(spo[0])
        for perm in (spo, pos, osp):
            if len(perm) != 3 or any(len(col) != n_rows for col in perm):
                raise ValueError("permutation columns disagree on row count")
        store = cls()
        store._terms = term_dict
        store._spo = spo
        store._pos = pos
        store._osp = osp
        store._n_base = n_rows
        return store

    @classmethod
    def _from_id_rows(
        cls, terms: TermDict, rows: Iterable[Tuple[int, int, int]]
    ) -> "ColumnarTripleStore":
        """Build a store from already-encoded id rows (codec save path)."""
        return _build_from_rows(terms, rows)

    def clone(self) -> "ColumnarTripleStore":
        clone = ColumnarTripleStore()
        clone._terms = self._terms.clone()
        clone._spo = tuple(array("q", col) for col in self._spo)  # type: ignore[assignment]
        clone._pos = tuple(array("q", col) for col in self._pos)  # type: ignore[assignment]
        clone._osp = tuple(array("q", col) for col in self._osp)  # type: ignore[assignment]
        clone._n_base = self._n_base
        clone._delta_spo = {
            a: {b: set(c) for b, c in row.items()} for a, row in self._delta_spo.items()
        }
        clone._delta_pos = {
            a: {b: set(c) for b, c in row.items()} for a, row in self._delta_pos.items()
        }
        clone._delta_osp = {
            a: {b: set(c) for b, c in row.items()} for a, row in self._delta_osp.items()
        }
        clone._n_delta = self._n_delta
        clone._tombstones = set(self._tombstones)
        return clone

    def memory_bytes(self) -> int:
        """Approximate heap bytes of the triple storage (columns + delta +
        tombstones + term dictionary) — what ``bench.bytes_per_triple``
        compares against the dict backend's sets and nested indexes."""
        total = self._terms.memory_bytes()
        for perm in (self._spo, self._pos, self._osp):
            for col in perm:
                total += sys.getsizeof(col)
        for delta in (self._delta_spo, self._delta_pos, self._delta_osp):
            total += sys.getsizeof(delta)
            for by_b in delta.values():
                total += sys.getsizeof(by_b)
                for values in by_b.values():
                    total += sys.getsizeof(values)
        total += sys.getsizeof(self._tombstones) + 64 * len(self._tombstones)
        return total

    def stats(self) -> Dict[str, int]:
        """Operational counters (surfaced through ``kg.stats()`` and obs)."""
        return {
            "n_terms": self.n_terms,
            "n_base_rows": self._n_base,
            "n_delta_rows": self._n_delta,
            "n_tombstones": len(self._tombstones),
            "n_compactions": self.n_compactions,
        }
