"""The innovation-to-practice cycle (Sec. 1.2).

The paper frames every technique by the stage it unlocked:

    feasibility -> quality -> repeatability -> scalability -> ubiquity

This module encodes the cycle so techniques across the library can be
annotated and the Sec. 5 production-readiness matrix can be computed rather
than asserted (see ``benchmarks/test_production_readiness.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class CycleStage(enum.IntEnum):
    """Ordered stages; later stages imply larger business impact."""

    FEASIBILITY = 1
    QUALITY = 2
    REPEATABILITY = 3
    SCALABILITY = 4
    UBIQUITY = 5

    def describe(self) -> str:
        """The paper's one-line characterization of the stage."""
        return _DESCRIPTIONS[self]


_DESCRIPTIONS = {
    CycleStage.FEASIBILITY: "a prototype shows the feasibility of a crazy idea",
    CycleStage.QUALITY: "the solution reaches production quality",
    CycleStage.REPEATABILITY: "pipelines repeat the success across domains",
    CycleStage.SCALABILITY: "new solutions remove manual work from the loop",
    CycleStage.UBIQUITY: "long-tail cases are covered; assumptions removed",
}

#: Quality bar for knowledge correctness in production, "normally 90% to
#: 99%" (Sec. 5).  We adopt the lower bound as the gate.
PRODUCTION_QUALITY_BAR = 0.90


@dataclass
class TechniqueProfile:
    """A technique with its measured quality and productivity leverage.

    Sec. 5 names two necessary conditions for industry success:
    *ready* (production quality) and *essential* (significant productivity
    scale-up).  ``leverage`` is the multiplicative reduction in manual work
    the technique enables (1.0 = none).
    """

    name: str
    stage: CycleStage
    quality: Optional[float] = None
    leverage: float = 1.0
    notes: str = ""

    @property
    def is_ready(self) -> bool:
        """Quality condition: measured accuracy at or above the bar."""
        return self.quality is not None and self.quality >= PRODUCTION_QUALITY_BAR

    @property
    def is_essential(self) -> bool:
        """Productivity condition: at least an order-of-magnitude leverage."""
        return self.leverage >= 10.0

    @property
    def production_ready(self) -> bool:
        """Both Sec. 5 conditions hold."""
        return self.is_ready and self.is_essential


@dataclass
class TechniqueRegistry:
    """Collects :class:`TechniqueProfile` rows for the Sec. 5 matrix."""

    profiles: Dict[str, TechniqueProfile] = field(default_factory=dict)

    def register(self, profile: TechniqueProfile) -> None:
        """Add or replace a technique row."""
        self.profiles[profile.name] = profile

    def record_quality(self, name: str, quality: float) -> None:
        """Update the measured quality of a registered technique."""
        if name not in self.profiles:
            raise KeyError(f"unknown technique: {name!r}")
        self.profiles[name].quality = quality

    def matrix(self) -> List[Dict[str, object]]:
        """Rows of the production-readiness matrix, sorted by name."""
        rows = []
        for profile in sorted(self.profiles.values(), key=lambda p: p.name):
            rows.append(
                {
                    "technique": profile.name,
                    "stage": profile.stage.name.lower(),
                    "quality": profile.quality,
                    "leverage": profile.leverage,
                    "ready": profile.is_ready,
                    "essential": profile.is_essential,
                    "production_ready": profile.production_ready,
                }
            )
        return rows

    def successes(self) -> List[str]:
        """Techniques satisfying both conditions (Sec. 5 'industry successes')."""
        return [name for name, profile in sorted(self.profiles.items()) if profile.production_ready]

    def not_yet(self) -> List[str]:
        """Techniques missing at least one condition ('not-yet successful')."""
        return [
            name for name, profile in sorted(self.profiles.items()) if not profile.production_ready
        ]
