"""Knowledge panels — the application that launched industrial KGs.

"The industry deployment started about a decade ago, when Google launched
*Knowledge Panels* in web search in 2012" (Sec. 1).  A panel is the
human-facing rendering of one entity: name, type, attribute-value pairs,
and related entities — "display information for human understanding (in
attribute-value pairs)" (Sec. 1).

:func:`render_panel` builds the panel from any entity-based KG; sources
are credited from provenance, mirroring the attribution real panels carry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.graph import KnowledgeGraph


@dataclass(frozen=True)
class PanelRow:
    """One attribute line of a panel."""

    label: str
    value: str
    sources: Tuple[str, ...] = ()


@dataclass
class KnowledgePanel:
    """The structured panel, renderable as text."""

    title: str
    subtitle: str
    rows: List[PanelRow] = field(default_factory=list)
    related: List[Tuple[str, str]] = field(default_factory=list)  # (relation, name)

    def render(self, width: int = 48) -> str:
        """Plain-text rendering (the terminal stand-in for the search UI)."""
        lines = ["+" + "-" * width + "+"]

        def emit(text: str) -> None:
            lines.append("| " + text[: width - 2].ljust(width - 2) + " |")

        emit(self.title)
        emit(self.subtitle)
        emit("-" * (width - 2))
        for row in self.rows:
            source_note = f"  [{', '.join(row.sources)}]" if row.sources else ""
            emit(f"{row.label}: {row.value}{source_note}")
        if self.related:
            emit("-" * (width - 2))
            emit("People also search for:")
            for relation, name in self.related:
                emit(f"  {name} ({relation})")
        lines.append("+" + "-" * width + "+")
        return "\n".join(lines)


def _prettify(predicate: str) -> str:
    return predicate.replace("_", " ").capitalize()


def render_panel(
    graph: KnowledgeGraph,
    entity_id: str,
    max_rows: int = 8,
    max_related: int = 4,
) -> KnowledgePanel:
    """Build the knowledge panel for one entity.

    Literal attributes become rows (with their provenance sources);
    entity-valued relations become rows with the target's display name;
    inverse neighbors populate the "people also search for" strip.
    """
    entity = graph.entity(entity_id)
    panel = KnowledgePanel(title=entity.name, subtitle=entity.entity_class)
    for triple in graph.query(subject=entity_id):
        if len(panel.rows) >= max_rows:
            break
        value = triple.object
        if isinstance(value, str) and graph.has_entity(value):
            display = graph.entity(value).name
        else:
            display = str(value)
        sources = tuple(
            sorted({record.source for record in graph.provenance(triple)})
        )
        panel.rows.append(
            PanelRow(label=_prettify(triple.predicate), value=display, sources=sources)
        )
    seen = set()
    for relation, neighbor, outgoing in graph.neighbors(entity_id):
        if outgoing or neighbor in seen:
            continue
        seen.add(neighbor)
        panel.related.append((_prettify(relation), graph.entity(neighbor).name))
        if len(panel.related) >= max_related:
            break
    return panel
