"""Binary snapshot codec + append-only WAL for knowledge graphs.

Two durability surfaces on top of :mod:`repro.core.store`:

**Snapshots** (``.rkgs``) — a versioned binary format holding the term
dictionary, all three sorted SPO/POS/OSP permutation columns (stored
raw, so loading is ``array.frombytes`` — no re-sort, no re-index),
entities, ontology, provenance, and optionally the lineage ledger.
Every section is crc32-checksummed, and every failure mode (bad magic,
newer version, truncation, checksum mismatch) raises :class:`CodecError`
with a one-line actionable message.  ``repro serve --snapshot`` boots
from one of these instead of re-running construction.

Provenance is *thawed lazily*: the section is checksum-verified at load,
but decoding its records into ``Triple``-keyed lists is deferred until
the first provenance-touching operation — the same deferred-work idiom
as the graph's ``_pending_index``.  Serving never touches provenance,
so a snapshot boot pays only for what it reads.

**WAL** (:class:`TripleWAL`) — an append-only log of graph mutations
(entity/alias/add/add_batch/remove/merge records, length+crc32-framed
JSON; batch ingests commit as one ``add_batch`` record) in
size-rotated segments, with :meth:`TripleWAL.compact` folding replayed
segments into a ``base.rkgs`` snapshot.  A truncated final record in the
*last* segment is tolerated (a crash mid-append is the normal case); any
other corruption raises :class:`CodecError` unless ``allow_partial``.

A :class:`~repro.core.graph.KnowledgeGraph` with an attached WAL
(:meth:`~repro.core.graph.KnowledgeGraph.attach_wal`) logs every
mutation; :meth:`TripleWAL.recover` replays base + segments through the
public graph API, so recovery reproduces state, provenance, and (when
observability is on) lineage events exactly.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import threading
import zlib
from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.graph import Entity, KnowledgeGraph
from repro.core.ontology import Ontology
from repro.core.store import ColumnarTripleStore, TermDict
from repro.core.triple import Provenance, Triple, Value
from repro.obs import lineage as obs_lineage
from repro.obs import metrics as obs_metrics

SNAPSHOT_MAGIC = b"RKGS"
WAL_MAGIC = b"RKGW"
FORMAT_VERSION = 1

#: File header: magic, format version, reserved flags.
_HEADER = struct.Struct("<4sHH")
#: Section frame: section id, payload length, payload crc32.
_SECTION = struct.Struct("<BQI")
#: WAL record frame: payload length, payload crc32.
_WAL_FRAME = struct.Struct("<II")

# Section ids.
SEC_META = 1
SEC_ONTOLOGY = 2
SEC_ENTITIES = 3
SEC_TERMS = 4
SEC_COLUMNS = 5
SEC_PROVENANCE = 6
SEC_LINEAGE = 7

_SECTION_NAMES = {
    SEC_META: "meta",
    SEC_ONTOLOGY: "ontology",
    SEC_ENTITIES: "entities",
    SEC_TERMS: "terms",
    SEC_COLUMNS: "columns",
    SEC_PROVENANCE: "provenance",
    SEC_LINEAGE: "lineage",
}

# Term tags in the TERMS section.
_TAG_STR = 0
_TAG_INT = 1
_TAG_FLOAT = 2
_TAG_BOOL = 3
_TAG_BIGINT = 4  # ints outside i64, as a decimal string

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class CodecError(ValueError):
    """A snapshot or WAL file could not be read; the message says why
    and what to do about it (always one line)."""


# ---------------------------------------------------------------------------
# term encoding


def _encode_terms(terms: List[Value]) -> bytes:
    chunks = [struct.pack("<I", len(terms))]
    append = chunks.append
    for term in terms:
        kind = type(term)
        if kind is str:
            payload = term.encode("utf-8", "surrogatepass")
            append(struct.pack("<BI", _TAG_STR, len(payload)))
            append(payload)
        elif kind is bool:
            # Checked before int: bool is an int subclass.
            append(struct.pack("<BB", _TAG_BOOL, 1 if term else 0))
        elif kind is int:
            if _I64_MIN <= term <= _I64_MAX:
                append(struct.pack("<Bq", _TAG_INT, term))
            else:
                payload = str(term).encode("ascii")
                append(struct.pack("<BI", _TAG_BIGINT, len(payload)))
                append(payload)
        elif kind is float:
            append(struct.pack("<Bd", _TAG_FLOAT, term))
        else:  # pragma: no cover - Value is closed over these four types
            raise CodecError(f"cannot encode term of type {kind.__name__}")
    return b"".join(chunks)


def _decode_terms(payload: bytes, path: str) -> List[Value]:
    view = memoryview(payload)
    offset = 4
    try:
        (count,) = struct.unpack_from("<I", view, 0)
        terms: List[Value] = []
        for _ in range(count):
            (tag,) = struct.unpack_from("<B", view, offset)
            offset += 1
            if tag == _TAG_STR:
                (length,) = struct.unpack_from("<I", view, offset)
                offset += 4
                terms.append(
                    bytes(view[offset : offset + length]).decode("utf-8", "surrogatepass")
                )
                offset += length
            elif tag == _TAG_INT:
                (value,) = struct.unpack_from("<q", view, offset)
                offset += 8
                terms.append(value)
            elif tag == _TAG_FLOAT:
                (value,) = struct.unpack_from("<d", view, offset)
                offset += 8
                terms.append(value)
            elif tag == _TAG_BOOL:
                (value,) = struct.unpack_from("<B", view, offset)
                offset += 1
                terms.append(bool(value))
            elif tag == _TAG_BIGINT:
                (length,) = struct.unpack_from("<I", view, offset)
                offset += 4
                terms.append(int(bytes(view[offset : offset + length]).decode("ascii")))
                offset += length
            else:
                raise CodecError(
                    f"{path}: unknown term tag {tag} in the terms section; "
                    f"file is corrupt — re-create it with `repro save`"
                )
    except struct.error as exc:
        raise CodecError(
            f"{path}: terms section ended mid-term; file is corrupt — "
            f"re-create it with `repro save`"
        ) from exc
    if len(terms) != count:  # pragma: no cover - loop guarantees this
        raise CodecError(f"{path}: terms section count mismatch")
    return terms


# ---------------------------------------------------------------------------
# section plumbing


def _json_section(document: object) -> bytes:
    return zlib.compress(json.dumps(document, sort_keys=True).encode("utf-8"), 6)


def _load_json_section(payload: bytes, name: str, path: str) -> object:
    try:
        return json.loads(zlib.decompress(payload).decode("utf-8"))
    except (zlib.error, ValueError) as exc:
        raise CodecError(
            f"{path}: {name} section does not decode (passed its checksum but "
            f"not its parser); re-create the file with `repro save`"
        ) from exc


def _pack_section(section_id: int, payload: bytes) -> bytes:
    return _SECTION.pack(section_id, len(payload), zlib.crc32(payload)) + payload


def _ontology_document(ontology: Ontology) -> Dict[str, object]:
    # Classes parents-first so one load pass can re-add them.
    classes: List[List[Optional[str]]] = []
    emitted = set()
    pending = list(ontology.classes())
    while pending:
        remaining = []
        for class_name in pending:
            parent = ontology.parent(class_name)
            if parent is None or parent in emitted:
                classes.append([class_name, parent])
                emitted.add(class_name)
            else:
                remaining.append(class_name)
        if len(remaining) == len(pending):  # pragma: no cover - defensive
            raise CodecError("cycle detected while serializing the ontology")
        pending = remaining
    return {
        "name": ontology.name,
        "classes": classes,
        "relations": [
            [r.name, r.domain, r.range_class, r.functional] for r in ontology.relations()
        ],
    }


def _load_ontology(document: Dict[str, object]) -> Ontology:
    ontology = Ontology(name=str(document.get("name", "ontology")))
    for class_name, parent in document.get("classes", []):  # type: ignore[union-attr]
        ontology.add_class(class_name, parent)
    for name, domain, range_class, functional in document.get("relations", []):  # type: ignore[union-attr]
        ontology.add_relation(name, domain, range_class, functional=functional)
    return ontology


def _provenance_document(graph: KnowledgeGraph) -> List[List[object]]:
    rows: List[List[object]] = []
    for triple, records in graph._provenance.items():
        if not records:
            continue
        rows.append(
            [
                triple.subject,
                triple.predicate,
                triple.object,
                [[p.source, p.extractor, p.confidence] for p in records],
            ]
        )
    rows.sort(key=lambda row: (row[0], row[1], type(row[2]).__name__, str(row[2])))
    return rows


def _thaw_provenance(payload: bytes, path: str):
    """A thaw hook decoding the raw provenance section into a graph's
    ``_provenance``.

    Installed on loaded graphs as ``_provenance_thaw`` and invoked by the
    first provenance-touching operation (see ``KnowledgeGraph
    ._materialize_provenance``).  The closure holds the *checksummed but
    unparsed* section bytes — decompression, JSON parsing, and object
    construction are all deferred, so snapshot boots that never read
    provenance pay nothing for it (the JSON parse is the single largest
    cost of an eager load).
    """

    def thaw(graph: KnowledgeGraph) -> None:
        rows = _load_json_section(payload, "provenance", path)
        provenance = graph._provenance
        try:
            for subject, predicate, obj, records in rows:  # type: ignore[union-attr]
                provenance[Triple(subject, predicate, obj)] = [
                    Provenance(
                        source=source, extractor=extractor, confidence=confidence
                    )
                    for source, extractor, confidence in records
                ]
        except (AttributeError, TypeError, ValueError) as exc:
            provenance.clear()
            raise CodecError(
                f"{path}: malformed provenance section ({exc!r}); file is "
                f"corrupt — re-create it with `repro save`"
            ) from exc

    return thaw


# ---------------------------------------------------------------------------
# snapshot save


def save_graph(
    graph: KnowledgeGraph, path: str, include_lineage: Optional[bool] = None
) -> int:
    """Write ``graph`` to ``path`` in the binary snapshot format.

    Works for both backends: a columnar graph's store is compacted and
    its columns written as-is; a dict-backed graph is dictionary-encoded
    on the way out.  ``include_lineage=None`` snapshots the global
    lineage ledger exactly when lineage recording is enabled.  The write
    is atomic (temp file + rename).  Returns bytes written.
    """
    if include_lineage is None:
        include_lineage = obs_lineage.lineage_enabled()
    graph._materialize_provenance()

    if graph._store is not None:
        terms, spo, pos, osp = graph._store.sorted_columns()
    else:
        # Dictionary-encode with one id per *typed* term, iterating the
        # triple set in sorted order.  Python conflates 0 == 0.0 == False
        # as dict keys, but the dict backend's triple set stores
        # heterogeneous object types that a load must reproduce exactly —
        # and set iteration order is hash-seed-dependent, which would
        # otherwise leak into which representative the snapshot keeps.
        typed_id: Dict[Tuple[type, Value], int] = {}
        typed_terms: List[Value] = []

        def encode(term: Value) -> int:
            key = (term.__class__, term)
            term_id = typed_id.get(key)
            if term_id is None:
                term_id = len(typed_terms)
                typed_id[key] = term_id
                typed_terms.append(term)
            return term_id

        rows = [
            (encode(t.subject), encode(t.predicate), encode(t.object))
            for t in sorted(graph._triples, key=Triple._sort_key)
        ]
        store = ColumnarTripleStore._from_id_rows(
            TermDict._from_terms(typed_terms), rows
        )
        terms, spo, pos, osp = store.sorted_columns()

    n_rows = len(spo[0])
    columns_payload = struct.pack("<Q", n_rows) + b"".join(
        col.tobytes() for perm in (spo, pos, osp) for col in perm
    )

    entities_document = [
        [e.entity_id, e.name, e.entity_class, sorted(e.aliases)]
        for e in sorted(graph._entities.values(), key=lambda e: e.entity_id)
    ]
    meta = {
        "graph_name": graph.name,
        "backend": graph.backend,
        "n_triples": len(graph),
        "n_entities": len(graph._entities),
        "n_terms": len(terms),
    }

    sections = [
        _pack_section(SEC_META, _json_section(meta)),
        _pack_section(SEC_ONTOLOGY, _json_section(_ontology_document(graph.ontology))),
        _pack_section(SEC_ENTITIES, _json_section(entities_document)),
        _pack_section(SEC_TERMS, _encode_terms(terms)),
        _pack_section(SEC_COLUMNS, columns_payload),
        _pack_section(SEC_PROVENANCE, _json_section(_provenance_document(graph))),
    ]
    if include_lineage:
        ledger_state = obs_lineage.get_ledger().export_state()
        sections.append(_pack_section(SEC_LINEAGE, _json_section(ledger_state)))

    blob = _HEADER.pack(SNAPSHOT_MAGIC, FORMAT_VERSION, 0) + b"".join(sections)
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(blob)
    os.replace(tmp_path, path)
    obs_metrics.count("store.snapshot.saves")
    obs_metrics.gauge("store.snapshot.bytes", len(blob))
    return len(blob)


# ---------------------------------------------------------------------------
# snapshot load


def _read_blob(path: str) -> Tuple[object, Optional[mmap.mmap]]:
    """Open a snapshot as a buffer: ``(buffer, mapping)``.

    Prefers a read-only ``mmap`` so section parsing and column loads run
    zero-copy over the page cache (``memoryview`` slices of the mapping
    feed ``zlib.crc32``/``array.frombytes`` directly, no intermediate
    ``bytes`` blob of the whole file).  Falls back to ``handle.read()``
    when the file cannot be mapped (empty file, exotic filesystem), in
    which case ``mapping`` is ``None`` and the buffer is plain bytes.
    """
    try:
        handle = open(path, "rb")
    except FileNotFoundError:
        raise CodecError(
            f"{path}: snapshot file not found; create it with `repro save`"
        ) from None
    with handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            return handle.read(), None
    return mapping, mapping


def _read_sections(blob, path: str) -> Dict[int, memoryview]:
    blob = memoryview(blob)  # zero-copy slicing whether bytes or mmap
    if len(blob) < _HEADER.size:
        raise CodecError(
            f"{path}: truncated at byte {len(blob)} (needed an {_HEADER.size}-byte "
            f"header); re-create the file with `repro save`"
        )
    magic, version, _flags = _HEADER.unpack_from(blob, 0)
    if magic != SNAPSHOT_MAGIC:
        raise CodecError(
            f"{path}: not a repro snapshot (magic {magic!r}, expected "
            f"{SNAPSHOT_MAGIC!r}); point --snapshot at a file written by `repro save`"
        )
    if version != FORMAT_VERSION:
        raise CodecError(
            f"{path}: snapshot format v{version} is not the supported v"
            f"{FORMAT_VERSION}; re-save it with this checkout's `repro save`"
        )
    sections: Dict[int, bytes] = {}
    offset = _HEADER.size
    total = len(blob)
    while offset < total:
        if offset + _SECTION.size > total:
            raise CodecError(
                f"{path}: truncated at byte {offset} (needed a {_SECTION.size}-byte "
                f"section frame); re-create the file with `repro save`"
            )
        section_id, length, crc = _SECTION.unpack_from(blob, offset)
        offset += _SECTION.size
        if offset + length > total:
            name = _SECTION_NAMES.get(section_id, f"#{section_id}")
            raise CodecError(
                f"{path}: truncated at byte {offset} (the {name} section claims "
                f"{length} bytes, {total - offset} remain); re-create the file "
                f"with `repro save`"
            )
        payload = blob[offset : offset + length]
        offset += length
        actual = zlib.crc32(payload)
        if actual != crc:
            name = _SECTION_NAMES.get(section_id, f"#{section_id}")
            raise CodecError(
                f"{path}: {name} section checksum mismatch (stored {crc:#010x}, "
                f"computed {actual:#010x}); file is corrupt — re-create it with "
                f"`repro save`"
            )
        if section_id not in _SECTION_NAMES:
            raise CodecError(
                f"{path}: unknown section id {section_id}; file is corrupt — "
                f"re-create it with `repro save`"
            )
        sections[section_id] = payload
    return sections


def _require(
    sections: Dict[int, memoryview], section_id: int, path: str
) -> memoryview:
    payload = sections.get(section_id)
    if payload is None:
        raise CodecError(
            f"{path}: missing {_SECTION_NAMES[section_id]} section; "
            f"re-create the file with `repro save`"
        )
    return payload


def load_graph(
    path: str, backend: str = "columnar", restore_lineage: bool = False
) -> KnowledgeGraph:
    """Read a snapshot written by :func:`save_graph` into a fresh graph.

    ``backend`` picks the loaded graph's storage layer (columnar installs
    the file's sorted columns directly; dict replays the rows through
    batch ingestion).  ``restore_lineage=True`` merges the snapshot's
    lineage section (if present) into the process-global ledger.
    Provenance decoding is deferred to the first provenance-touching
    operation on the returned graph.

    The file is read through a read-only ``mmap`` when possible: column
    bytes flow straight from the page cache into the ``array('q')``
    columns via ``memoryview`` slices, with no intermediate whole-file
    ``bytes`` copy (``store.snapshot.mmap_loads`` counts the mapped
    boots).  The mapping is closed before returning — the only section
    that outlives the load (the lazy provenance thaw) is copied out.
    """
    blob, mapping = _read_blob(path)
    try:
        graph = _load_snapshot(blob, path, backend, restore_lineage)
    except CodecError:
        raise
    except (
        AttributeError,
        IndexError,
        KeyError,
        TypeError,
        ValueError,
        struct.error,
        zlib.error,
        UnicodeDecodeError,
    ) as exc:
        # Checksums catch bit flips inside a section payload, but a flip
        # in a section-id byte can hand structurally wrong (yet valid)
        # JSON to a parser — surface that as corruption, never as a
        # bare crash or a wrong graph.
        raise CodecError(
            f"{path}: malformed snapshot content ({exc!r}); file is "
            f"corrupt — re-create it with `repro save`"
        ) from exc
    finally:
        if mapping is not None:
            try:
                mapping.close()
            except BufferError:  # pragma: no cover - exception path only
                # A raised traceback still references a view of the
                # mapping; dropping the close lets GC unmap it instead.
                pass
    obs_metrics.count("store.snapshot.loads")
    if mapping is not None:
        obs_metrics.count("store.snapshot.mmap_loads")
    return graph


def _load_snapshot(
    blob, path: str, backend: str, restore_lineage: bool
) -> KnowledgeGraph:
    """Parse one snapshot buffer (bytes or mmap) into a fresh graph.

    Split out of :func:`load_graph` so every ``memoryview`` of the buffer
    is a local that dies when this frame returns, letting the caller
    close the mapping immediately afterwards.
    """
    sections = _read_sections(blob, path)

    meta = _load_json_section(_require(sections, SEC_META, path), "meta", path)
    ontology = _load_ontology(
        _load_json_section(_require(sections, SEC_ONTOLOGY, path), "ontology", path)  # type: ignore[arg-type]
    )
    graph = KnowledgeGraph(
        ontology=ontology, name=str(meta.get("graph_name", "kg")), backend=backend  # type: ignore[union-attr]
    )

    # Entities: constructed directly (the snapshot was validated at save
    # time), so a boot does not re-pay per-entity ontology checks.
    entities_document = _load_json_section(
        _require(sections, SEC_ENTITIES, path), "entities", path
    )
    graph_entities = graph._entities
    name_index = graph._name_index
    for entity_id, name, entity_class, aliases in entities_document:  # type: ignore[union-attr]
        if not ontology.has_class(entity_class):
            raise CodecError(
                f"{path}: entity {entity_id!r} names unknown class "
                f"{entity_class!r}; file is corrupt — re-create it with `repro save`"
            )
        entity = Entity(
            entity_id=entity_id,
            name=name,
            entity_class=entity_class,
            aliases=set(aliases),
        )
        graph_entities[entity_id] = entity
        for alias in entity.all_names():
            name_index[alias.lower()].add(entity_id)

    terms = _decode_terms(_require(sections, SEC_TERMS, path), path)
    columns_payload = _require(sections, SEC_COLUMNS, path)
    if len(columns_payload) < 8:
        raise CodecError(
            f"{path}: columns section shorter than its row-count header; "
            f"file is corrupt — re-create it with `repro save`"
        )
    (n_rows,) = struct.unpack_from("<Q", columns_payload, 0)
    expected = 8 + 9 * 8 * n_rows
    if len(columns_payload) != expected:
        raise CodecError(
            f"{path}: columns section holds {len(columns_payload)} bytes but "
            f"{n_rows} rows need {expected}; file is corrupt — re-create it "
            f"with `repro save`"
        )
    columns: List[array] = []
    columns_view = memoryview(columns_payload)
    offset = 8
    for _ in range(9):
        col = array("q")
        col.frombytes(columns_view[offset : offset + 8 * n_rows])
        columns.append(col)
        offset += 8 * n_rows
    for term_id in (
        max(columns[0], default=-1),
        max(columns[1], default=-1),
        max(columns[2], default=-1),
    ):
        if term_id >= len(terms):
            raise CodecError(
                f"{path}: columns reference term id {term_id} but the dictionary "
                f"holds {len(terms)} terms; file is corrupt — re-create it with "
                f"`repro save`"
            )

    if backend == "columnar":
        graph._store = ColumnarTripleStore.from_sorted_columns(
            terms, tuple(columns[0:3]), tuple(columns[3:6]), tuple(columns[6:9])
        )
        if n_rows:
            graph._generation += 1
    else:
        spo_s, spo_p, spo_o = columns[0], columns[1], columns[2]
        graph.add_triples_batch(
            Triple(terms[spo_s[i]], terms[spo_p[i]], terms[spo_o[i]])
            for i in range(n_rows)
        )

    # The thaw closure outlives this frame (and the mmap), so it gets its
    # own copy of the still-compressed section — small next to the columns.
    graph._provenance_thaw = _thaw_provenance(
        bytes(_require(sections, SEC_PROVENANCE, path)), path
    )

    if restore_lineage and SEC_LINEAGE in sections:
        state = _load_json_section(sections[SEC_LINEAGE], "lineage", path)
        obs_lineage.get_ledger().merge_state(state)  # type: ignore[arg-type]

    return graph


# ---------------------------------------------------------------------------
# the append-only WAL


class TripleWAL:
    """Append-only triple log: size-rotated segments + base compaction.

    A directory of ``wal-<n>.log`` segments (length+crc32-framed JSON
    records behind a magic header) plus an optional ``base.rkgs``
    snapshot that :meth:`compact` folds replayed segments into.  Attach
    to a graph with :meth:`KnowledgeGraph.attach_wal`; recover with
    :meth:`recover`.
    """

    BASE_BASENAME = "base.rkgs"
    _SEGMENT_FORMAT = "wal-{:08d}.log"

    def __init__(self, directory: str, segment_bytes: int = 1 << 20):
        if segment_bytes < 4096:
            raise ValueError(f"segment_bytes must be >= 4096, got {segment_bytes}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        os.makedirs(directory, exist_ok=True)
        self._handle = None
        # One reentrant lock serializes appends, rotation, recovery, and
        # compaction/checkpointing: a compact that deletes segments while
        # another thread appends (or replays) would otherwise race the
        # segment list against the files on disk.
        self._lock = threading.RLock()
        existing = self.segment_paths()
        if existing:
            self._segment_index = self._index_of(existing[-1])
            self._open_segment(existing[-1], create=False)
        else:
            self._segment_index = 1
            self._open_segment(self._segment_path(1), create=True)

    # ------------------------------------------------------------------
    # paths

    @property
    def base_path(self) -> str:
        return os.path.join(self.directory, self.BASE_BASENAME)

    def _segment_path(self, index: int) -> str:
        return os.path.join(self.directory, self._SEGMENT_FORMAT.format(index))

    @staticmethod
    def _index_of(path: str) -> int:
        basename = os.path.basename(path)
        return int(basename[len("wal-") : -len(".log")])

    def segment_paths(self) -> List[str]:
        """Existing segment files, oldest first."""
        try:
            names = os.listdir(self.directory)
        except FileNotFoundError:
            return []
        segments = [
            name
            for name in names
            if name.startswith("wal-") and name.endswith(".log")
        ]
        return [os.path.join(self.directory, name) for name in sorted(segments)]

    # ------------------------------------------------------------------
    # writing

    def _open_segment(self, path: str, create: bool) -> None:
        if create:
            with open(path, "wb") as handle:
                handle.write(_HEADER.pack(WAL_MAGIC, FORMAT_VERSION, 0))
        self._handle = open(path, "ab")

    def append(self, record: Dict[str, object]) -> None:
        """Append one mutation record (flushed before returning)."""
        self.append_many([record])

    def append_many(self, records: List[Dict[str, object]]) -> None:
        """Append a batch of records under one write + flush."""
        if not records:
            return
        chunks = []
        for record in records:
            payload = json.dumps(record, sort_keys=True).encode("utf-8")
            chunks.append(_WAL_FRAME.pack(len(payload), zlib.crc32(payload)))
            chunks.append(payload)
        with self._lock:
            if self._handle is None:
                raise ValueError("WAL is closed")
            self._handle.write(b"".join(chunks))
            self._handle.flush()
            obs_metrics.count("store.wal.records", len(records))
            if self._handle.tell() >= self.segment_bytes:
                self._rotate()

    def _rotate(self) -> None:
        self._handle.close()
        self._segment_index += 1
        self._open_segment(self._segment_path(self._segment_index), create=True)
        obs_metrics.count("store.wal.rotations")
        obs_metrics.gauge("store.wal.segments", len(self.segment_paths()))

    def close(self) -> None:
        """Close the write handle (the WAL can be reopened by constructing
        a new :class:`TripleWAL` on the same directory)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    # ------------------------------------------------------------------
    # reading

    def _iter_segment(
        self, path: str, is_last: bool, allow_partial: bool
    ) -> Iterator[Dict[str, object]]:
        with open(path, "rb") as handle:
            blob = handle.read()
        if len(blob) < _HEADER.size:
            raise CodecError(
                f"{path}: WAL segment shorter than its header; delete the "
                f"segment or run `repro compact` with --allow-partial"
            )
        magic, version, _flags = _HEADER.unpack_from(blob, 0)
        if magic != WAL_MAGIC:
            raise CodecError(
                f"{path}: not a repro WAL segment (magic {magic!r}, expected "
                f"{WAL_MAGIC!r}); remove foreign files from the WAL directory"
            )
        if version != FORMAT_VERSION:
            raise CodecError(
                f"{path}: WAL format v{version} is not the supported "
                f"v{FORMAT_VERSION}; compact it with the checkout that wrote it"
            )
        offset = _HEADER.size
        total = len(blob)
        while offset < total:
            tail = total - offset
            if tail < _WAL_FRAME.size:
                if is_last or allow_partial:
                    obs_metrics.count("store.wal.truncated_tail")
                    return
                raise CodecError(
                    f"{path}: truncated record frame at byte {offset} in a "
                    f"non-final segment; restore the segment or replay with "
                    f"allow_partial=True"
                )
            length, crc = _WAL_FRAME.unpack_from(blob, offset)
            if offset + _WAL_FRAME.size + length > total:
                if is_last or allow_partial:
                    obs_metrics.count("store.wal.truncated_tail")
                    return
                raise CodecError(
                    f"{path}: truncated record payload at byte {offset} in a "
                    f"non-final segment; restore the segment or replay with "
                    f"allow_partial=True"
                )
            payload = blob[
                offset + _WAL_FRAME.size : offset + _WAL_FRAME.size + length
            ]
            actual = zlib.crc32(payload)
            if actual != crc:
                if allow_partial:
                    obs_metrics.count("store.wal.corrupt_records")
                    return
                raise CodecError(
                    f"{path}: record checksum mismatch at byte {offset} (stored "
                    f"{crc:#010x}, computed {actual:#010x}); the WAL is corrupt "
                    f"— replay with allow_partial=True to keep the prefix"
                )
            offset += _WAL_FRAME.size + length
            try:
                yield json.loads(payload.decode("utf-8"))
            except ValueError as exc:
                raise CodecError(
                    f"{path}: record at byte {offset - length} passed its "
                    f"checksum but is not JSON; the WAL is corrupt"
                ) from exc

    # ------------------------------------------------------------------
    # recovery

    def recover(
        self, backend: str = "columnar", allow_partial: bool = False
    ) -> KnowledgeGraph:
        """Rebuild the graph: load ``base.rkgs`` (if any), replay segments.

        Replay goes through the public graph API, so provenance — and,
        when observability is enabled, lineage events — are reproduced
        exactly as the original mutations recorded them.  Consecutive
        ``add``/``add_batch`` records coalesce into one
        ``add_triples_batch`` call, which on an empty columnar graph hits
        the store's bulk-load path.
        """
        with self._lock:
            if os.path.exists(self.base_path):
                graph = load_graph(self.base_path, backend=backend)
            else:
                ontology = Ontology()
                graph = KnowledgeGraph(ontology=ontology, name="wal", backend=backend)
            segments = self.segment_paths()
            n_records = 0
            for position, path in enumerate(segments):
                is_last = position == len(segments) - 1
                n_records += apply_wal_records(
                    graph, self._iter_segment(path, is_last, allow_partial), path
                )
        obs_metrics.count("store.wal.replayed_records", n_records)
        return graph

    # ------------------------------------------------------------------
    # compaction

    def compact(
        self, backend: str = "columnar", allow_partial: bool = False
    ) -> Tuple[KnowledgeGraph, Dict[str, object]]:
        """Fold all segments into ``base.rkgs``; returns (graph, stats).

        Recovery runs first; the new base is written atomically; only
        then are the folded segments deleted (a crash in between replays
        idempotently).  A fresh empty segment is opened for new appends.
        The whole fold happens under the WAL lock, so concurrent appends
        and in-process replays serialize against it instead of racing the
        segment deletions.
        """
        with self._lock:
            self.close()
            segments = self.segment_paths()
            graph = self.recover(backend=backend, allow_partial=allow_partial)
            stats = self._install_base(graph, segments)
        return graph, stats

    def checkpoint(self, graph: KnowledgeGraph) -> Dict[str, object]:
        """Install ``graph`` as the new ``base.rkgs`` and drop all segments.

        Like :meth:`compact`, but the caller supplies the authoritative
        graph instead of replaying the log — the streaming finalize path
        uses this to persist the canonical (batch-equivalent) graph after
        a drain, discarding the incremental mutation history the segments
        hold.  Only correct when ``graph`` already reflects (or
        supersedes) every logged mutation.
        """
        with self._lock:
            self.close()
            segments = self.segment_paths()
            stats = self._install_base(graph, segments)
        return stats

    def _install_base(
        self, graph: KnowledgeGraph, segments: List[str]
    ) -> Dict[str, object]:
        """Write ``base.rkgs`` atomically, drop ``segments``, reopen fresh."""
        n_bytes = save_graph(graph, self.base_path)
        for path in segments:
            os.remove(path)
        self._segment_index += 1
        self._open_segment(self._segment_path(self._segment_index), create=True)
        obs_metrics.count("store.wal.compactions")
        obs_metrics.gauge("store.wal.segments", 1)
        return {
            "n_segments_folded": len(segments),
            "base_path": self.base_path,
            "base_bytes": n_bytes,
            "n_triples": len(graph),
            "n_entities": len(graph._entities),
        }

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Operational counters (sizes in bytes, segment count, base)."""
        segments = self.segment_paths()
        return {
            "n_segments": len(segments),
            "segment_bytes_limit": self.segment_bytes,
            "wal_bytes": sum(os.path.getsize(path) for path in segments),
            "base_exists": os.path.exists(self.base_path),
            "base_bytes": (
                os.path.getsize(self.base_path) if os.path.exists(self.base_path) else 0
            ),
        }


# ---------------------------------------------------------------------------
# shared WAL replay (recovery + live followers)


def apply_wal_records(
    graph: KnowledgeGraph,
    records: Iterable[Dict[str, object]],
    path: str = "<wal>",
) -> int:
    """Apply decoded WAL records to ``graph`` via the public API.

    Consecutive ``add``/``add_batch`` records coalesce into one
    ``add_triples_batch`` call (the bulk-load fast path on an empty
    columnar graph).  Entity/merge application is idempotent, so
    re-replaying a prefix after a partially-complete compaction — or a
    follower restarting mid-stream — converges on the same state.
    Returns the number of records applied.  Shared by
    :meth:`TripleWAL.recover` and the live :class:`repro.stream.publish.
    WALFollower`.
    """
    n_records = 0
    pending_adds: List[Tuple[Triple, Optional[Provenance]]] = []

    def flush_adds() -> None:
        if pending_adds:
            graph.add_triples_batch(pending_adds)
            pending_adds.clear()

    for record in records:
        n_records += 1
        op = record.get("op")
        if op == "add":
            prov = record.get("prov")
            pending_adds.append(
                (
                    Triple(record["s"], record["p"], record["o"]),
                    None
                    if prov is None
                    else Provenance(
                        source=prov[0], extractor=prov[1], confidence=prov[2]
                    ),
                )
            )
            continue
        if op == "add_batch":
            pending_adds.extend(
                (
                    Triple(s, p, o),
                    None
                    if prov is None
                    else Provenance(
                        source=prov[0], extractor=prov[1], confidence=prov[2]
                    ),
                )
                for s, p, o, prov in record["rows"]
            )
            continue
        flush_adds()
        if op == "entity":
            entity_class = record["class"]
            if not graph.ontology.has_class(entity_class):
                graph.ontology.add_class(entity_class)
            # Idempotent: re-replay after a partially-complete
            # compaction may revisit entities already in the base.
            if not graph.has_entity(record["id"]):
                graph.add_entity(
                    record["id"],
                    record["name"],
                    entity_class,
                    aliases=record.get("aliases", ()),
                )
        elif op == "alias":
            if graph.has_entity(record["id"]):
                graph.add_alias(record["id"], record["alias"])
        elif op == "remove":
            graph.remove_triple(Triple(record["s"], record["p"], record["o"]))
        elif op == "merge":
            if graph.has_entity(record["drop"]):
                graph.merge_entities(record["keep"], record["drop"])
        else:
            raise CodecError(
                f"{path}: unknown WAL op {op!r}; the log was written by "
                f"a newer layout — compact with the checkout that wrote it"
            )
    flush_adds()
    return n_records


def read_segment_records(
    path: str, offset: int = 0
) -> Tuple[List[Dict[str, object]], int]:
    """Incrementally read complete records from one WAL segment.

    Returns ``(records, next_offset)``: every fully-framed record found
    at or after ``offset`` (0 means "start of records", just past the
    header) plus the offset where the *next* read should resume.  A torn
    tail — a frame or payload the writer has not finished flushing — is
    not an error; the read simply stops before it, and a later call with
    the returned offset picks it up once complete.  A checksum mismatch
    on a complete frame is real corruption and raises :class:`CodecError`.
    This is the tail-read primitive for live WAL followers; unlike
    :meth:`TripleWAL._iter_segment` it never buffers more than the new
    suffix and never treats incompleteness as damage.
    """
    with open(path, "rb") as handle:
        if offset <= _HEADER.size:
            header = handle.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return [], 0
            magic, version, _flags = _HEADER.unpack(header)
            if magic != WAL_MAGIC:
                raise CodecError(
                    f"{path}: not a repro WAL segment (magic {magic!r}, expected "
                    f"{WAL_MAGIC!r}); remove foreign files from the WAL directory"
                )
            if version != FORMAT_VERSION:
                raise CodecError(
                    f"{path}: WAL format v{version} is not the supported "
                    f"v{FORMAT_VERSION}; compact it with the checkout that wrote it"
                )
            offset = _HEADER.size
        else:
            handle.seek(offset)
        blob = handle.read()
    records: List[Dict[str, object]] = []
    position = 0
    total = len(blob)
    while position < total:
        if total - position < _WAL_FRAME.size:
            break  # torn frame header — wait for the writer
        length, crc = _WAL_FRAME.unpack_from(blob, position)
        if position + _WAL_FRAME.size + length > total:
            break  # torn payload — wait for the writer
        payload = blob[position + _WAL_FRAME.size : position + _WAL_FRAME.size + length]
        actual = zlib.crc32(payload)
        if actual != crc:
            raise CodecError(
                f"{path}: record checksum mismatch at byte {offset + position} "
                f"(stored {crc:#010x}, computed {actual:#010x}); the WAL is "
                f"corrupt — replay with allow_partial=True to keep the prefix"
            )
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except ValueError as exc:
            raise CodecError(
                f"{path}: record at byte {offset + position} passed its "
                f"checksum but is not JSON; the WAL is corrupt"
            ) from exc
        position += _WAL_FRAME.size + length
    return records, offset + position
