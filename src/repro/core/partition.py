"""Partition-parallel KG construction — shard the build, not just the reads.

The paper's business lesson is that construction is the cost center: every
generation scaled by industrializing the build loop over ever-larger source
sets.  This module shards that loop.  Source records are routed to
partitions by their cheapest blocking key (the same key domain
:mod:`repro.integrate.blocking` uses for candidate generation), each
partition runs a full pipeline — transform → extract → block → link →
clean — as one :func:`repro.core.parallel.pmap` item in ``mode="process"``,
and a deterministic cross-partition exchange
(:mod:`repro.integrate.exchange`) re-blocks boundary candidates, merges
source-trust EM sufficient statistics, and stitches the per-partition
columnar fragments into one :class:`~repro.core.graph.KnowledgeGraph`.

The contract is **equality by construction**: ``partitions=1`` and
``partitions=N`` run the identical code path, every cross-record decision
(linkage, fusion, lineage, final assembly) is made in the exchange phase
from merged global data in globally sorted order, and partition workers are
pure functions that record no observability state — so the resulting graph
state, provenance, lineage ledger, and ``.rkgs`` snapshot bytes are
partition-count-invariant (pinned by ``tests/test_perf_equivalence.py``
and the Hypothesis property in ``tests/test_core_partition_property.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.core.parallel import pmap
from repro.core.pipeline import (
    ConstructionPipeline,
    PipelineContext,
    PipelineStage,
)
from repro.core.store import ColumnarTripleStore
from repro.core.triple import Value
from repro.datagen.sources import SourceRecord, StructuredSource
from repro.datagen.world import WorldConfig, build_world
from repro.integrate.blocking import BlockingStrategy
from repro.integrate.fusion import ValueClaim
from repro.ml.similarity import (
    monge_elkan,
    numeric_similarity,
    token_sort_similarity,
)

#: Canonical year-like attributes (used by cleaning and pair scoring).
_YEAR_ATTRIBUTES = ("release_year", "birth_year")


# ---------------------------------------------------------------------------
# transform: source schema -> canonical record


@dataclass
class CanonicalRecord:
    """A source record normalized to the canonical attribute schema.

    ``fields`` includes ``"name"``; the remaining attributes are the claim
    candidates.  Plain data — it crosses the process boundary in both
    directions (task in, result out).
    """

    record_id: str
    source: str
    entity_class: str
    fields: Dict[str, Value]

    @property
    def name(self) -> str:
        """The canonical display name (empty when the source lacked one)."""
        return str(self.fields.get("name", ""))


def transform_record(
    record: SourceRecord, field_map: Dict[str, str]
) -> CanonicalRecord:
    """Undo one source's schema heterogeneity.

    Reverses the source's field-name map and re-joins split person names
    (``first_name``/``last_name`` → ``name``), producing a record over the
    canonical attribute vocabulary.
    """
    inverse = {mapped: canonical for canonical, mapped in field_map.items()}
    fields: Dict[str, Value] = {}
    for source_field, value in record.fields.items():
        fields[inverse.get(source_field, source_field)] = value
    first = fields.pop("first_name", None)
    last = fields.pop("last_name", None)
    if "name" not in fields and (first is not None or last is not None):
        parts = [str(part) for part in (first, last) if part is not None]
        # Single-token names arrive duplicated into both halves.
        if len(parts) == 2 and parts[0] == parts[1]:
            parts = parts[:1]
        fields["name"] = " ".join(parts)
    return CanonicalRecord(
        record_id=record.record_id,
        source=record.source,
        entity_class=record.entity_class,
        fields=fields,
    )


# ---------------------------------------------------------------------------
# clean: per-claim validation (pure, so partitions and tests share it)


def clean_reason(attribute: str, value: Value) -> Optional[str]:
    """Why a claim should be rejected, or ``None`` when it is clean."""
    if value is None or (isinstance(value, str) and not value.strip()):
        return "empty value"
    if attribute in _YEAR_ATTRIBUTES:
        try:
            year = int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return "non-numeric year"
        if not 1500 <= year <= 2100:
            return "implausible year"
    if attribute == "runtime":
        try:
            runtime = float(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return "non-numeric runtime"
        if not 1 <= runtime <= 600:
            return "implausible runtime"
    return None


# ---------------------------------------------------------------------------
# link: deterministic pair scoring (pure, shared by partitions and exchange)


def pair_score(left: CanonicalRecord, right: CanonicalRecord) -> float:
    """Similarity of a candidate record pair, in [0, 1].

    A fixed blend of token-sort and Monge-Elkan name similarity, weighted
    with year agreement when both records carry a year.  Pure function of
    the two records — the same pair scores identically whether it is
    scored inside a partition or in the exchange phase, which is what
    makes the match set partition-count-invariant.
    """
    if left.entity_class != right.entity_class:
        return 0.0
    left_name, right_name = left.name, right.name
    name_sim = 0.5 * token_sort_similarity(left_name, right_name) + 0.5 * monge_elkan(
        left_name, right_name
    )
    for attribute in _YEAR_ATTRIBUTES:
        left_year = left.fields.get(attribute)
        right_year = right.fields.get(attribute)
        if left_year is not None and right_year is not None:
            return 0.75 * name_sim + 0.25 * numeric_similarity(
                float(left_year), float(right_year)  # type: ignore[arg-type]
            )
    return name_sim


def ordered_pair(left_id: str, right_id: str) -> Tuple[str, str]:
    """The canonical (smaller, larger) orientation of a record pair."""
    return (left_id, right_id) if left_id < right_id else (right_id, left_id)


def _score_pair(pair: Tuple[CanonicalRecord, CanonicalRecord]) -> float:
    """Module-level pair scorer so process-mode :func:`pmap` can pickle it."""
    return pair_score(pair[0], pair[1])


# ---------------------------------------------------------------------------
# routing: blocking keys as the hash domain


def home_partition(
    record: CanonicalRecord, strategy: BlockingStrategy, n_partitions: int
) -> int:
    """Which partition a record lives in.

    Hashes the record's smallest blocking key (falling back to the record
    id for keyless records), so records sharing that key co-locate and
    most candidate pairs are scored without crossing partitions.  Pure in
    the record — routing never depends on input order.
    """
    keys = sorted(set(strategy.keys(record.fields)))
    anchor = keys[0] if keys else record.record_id
    return crc32(anchor.encode("utf-8")) % n_partitions


# ---------------------------------------------------------------------------
# the per-partition pipeline (one pmap item, pure, picklable)


@dataclass
class PartitionTask:
    """Everything one partition worker needs — plain picklable data."""

    index: int
    n_partitions: int
    records: List[SourceRecord]
    field_maps: Dict[str, Dict[str, str]]
    strategy: BlockingStrategy


@dataclass
class PartitionResult:
    """What one partition produced; consumed by the exchange phase.

    ``fragment_terms``/``fragment_columns`` are the partition's local
    :class:`~repro.core.store.TermDict` terms and sorted SPO id columns —
    the columnar fragment the exchange stitches via id remapping.
    """

    index: int
    records: List[CanonicalRecord]
    keys: Dict[str, Tuple[str, ...]]
    scores: Dict[Tuple[str, str], float]
    claims: List[ValueClaim]
    rejections: List[Tuple[str, str, Value, str]]
    fragment_terms: List[Value]
    fragment_columns: Tuple


def run_partition(task: PartitionTask) -> PartitionResult:
    """Run the full per-partition pipeline: transform → extract → block →
    link → clean, plus the local columnar fragment build.

    Pure function of the task (records arrive sorted by record id), and it
    records **no** lineage or metrics — every ledger event is written by
    the exchange phase in globally sorted order, which is what keeps the
    lineage ledger byte-identical across partition counts.
    """
    strategy = task.strategy
    # transform
    records = [
        transform_record(record, task.field_maps.get(record.source, {}))
        for record in task.records
    ]
    # extract + clean
    claims: List[ValueClaim] = []
    rejections: List[Tuple[str, str, Value, str]] = []
    for record in records:
        for attribute in sorted(record.fields):
            if attribute == "name":
                continue
            value = record.fields[attribute]
            if isinstance(value, (list, tuple, set, dict)):
                continue  # multi-valued extras are not claimable scalars
            reason = clean_reason(attribute, value)
            if reason is not None:
                rejections.append((record.record_id, attribute, value, reason))
            else:
                claims.append(
                    ValueClaim(
                        subject=record.record_id,
                        attribute=attribute,
                        value=value,
                        source=record.source,
                    )
                )
    # block
    keys: Dict[str, Tuple[str, ...]] = {
        record.record_id: tuple(sorted(set(strategy.keys(record.fields))))
        for record in records
    }
    blocks: Dict[str, List[int]] = {}
    for position, record in enumerate(records):
        for key in keys[record.record_id]:
            blocks.setdefault(key, []).append(position)
    # link: score every locally co-resident candidate pair.  A local block
    # larger than the cap is a subset of a global block larger than the
    # cap, so skipping it here can never drop a pair the exchange phase
    # would have kept.
    pairs = set()
    for members in blocks.values():
        if len(members) > strategy.max_block_size:
            continue
        for i, left_position in enumerate(members):
            left = records[left_position]
            for right_position in members[i + 1 :]:
                right = records[right_position]
                if left.entity_class != right.entity_class:
                    continue
                pairs.add(ordered_pair(left.record_id, right.record_id))
    by_id = {record.record_id: record for record in records}
    scores = {
        pair: pair_score(by_id[pair[0]], by_id[pair[1]]) for pair in sorted(pairs)
    }
    # local columnar fragment: claims as (record, attribute, value) rows
    store = ColumnarTripleStore()
    loader = store.bulk_loader()
    try:
        for claim in claims:
            loader.add(claim.subject, claim.attribute, claim.value)
    finally:
        loader.finish()
    terms, spo, _, _ = store.sorted_columns()
    return PartitionResult(
        index=task.index,
        records=records,
        keys=keys,
        scores=scores,
        claims=claims,
        rejections=rejections,
        fragment_terms=terms,
        fragment_columns=spo,
    )


# ---------------------------------------------------------------------------
# pipeline stages


@dataclass
class PartitionedBuild:
    """Configuration of a partition-parallel build.

    Attach to a :class:`~repro.core.pipeline.ConstructionPipeline` (the
    ``partition_build`` field) to enable ``pipeline.run(partitions=N)``.
    """

    strategy: BlockingStrategy = field(default_factory=BlockingStrategy)
    match_threshold: float = 0.85
    n_distractors: int = 10
    n_iterations: int = 10
    initial_accuracy: float = 0.8
    min_accuracy: float = 0.05
    max_accuracy: float = 0.99
    backend: str = "columnar"
    graph_name: str = "kg"
    sources_key: str = "sources"

    def stages(self, partitions: int) -> List[PipelineStage]:
        """The three partitioned-build stages for a given partition count."""
        if not isinstance(partitions, int) or partitions < 1:
            raise ValueError(
                f"partitions must be a positive integer, got {partitions!r}"
            )
        return [
            _PartitionStage(self, partitions),
            _PartitionMapStage(self),
            _ExchangeStage(self),
        ]


class _PartitionStage(PipelineStage):
    """Route source records to partitions by blocking key."""

    def __init__(self, build: PartitionedBuild, partitions: int):
        super().__init__(name="partition")
        self._build = build
        self._partitions = partitions

    def run(self, context: PipelineContext) -> None:
        build = self._build
        sources: Sequence[StructuredSource] = context.require(build.sources_key)
        field_maps = {source.name: dict(source.field_map) for source in sources}
        buckets: List[List[SourceRecord]] = [[] for _ in range(self._partitions)]
        n_records = 0
        for source in sources:
            for record in source.records:
                canonical = transform_record(record, field_maps[record.source])
                home = home_partition(canonical, build.strategy, self._partitions)
                buckets[home].append(record)
                n_records += 1
        # Sort within each partition so downstream work is canonical no
        # matter how the input sources were ordered.
        tasks = [
            PartitionTask(
                index=index,
                n_partitions=self._partitions,
                records=sorted(bucket, key=lambda record: record.record_id),
                field_maps=field_maps,
                strategy=build.strategy,
            )
            for index, bucket in enumerate(buckets)
        ]
        context.artifacts["partition_tasks"] = tasks
        self.record("n_records", n_records)
        self.record("n_partitions", self._partitions)
        if tasks:
            self.record(
                "max_partition_records", max(len(task.records) for task in tasks)
            )


class _PartitionMapStage(PipelineStage):
    """Run every partition's pipeline under ``pmap(mode="process")``."""

    def __init__(self, build: PartitionedBuild):
        super().__init__(name="build_partitions")
        self._build = build

    def run(self, context: PipelineContext) -> None:
        tasks: List[PartitionTask] = context.require("partition_tasks")
        results = pmap(run_partition, tasks, mode="process", chunk_size=1)
        context.artifacts["partition_results"] = results
        self.record("n_partitions", len(results))
        self.record("n_claims", sum(len(result.claims) for result in results))
        self.record(
            "n_local_pairs", sum(len(result.scores) for result in results)
        )
        self.record(
            "n_rejections", sum(len(result.rejections) for result in results)
        )


class _ExchangeStage(PipelineStage):
    """Cross-partition exchange: boundary linkage, fusion, stitch."""

    def __init__(self, build: PartitionedBuild):
        super().__init__(name="exchange")
        self._build = build

    def run(self, context: PipelineContext) -> None:
        from repro.integrate.exchange import exchange

        build = self._build
        results = context.require("partition_results")
        outcome = exchange(
            results,
            strategy=build.strategy,
            match_threshold=build.match_threshold,
            backend=build.backend,
            graph_name=build.graph_name,
            n_distractors=build.n_distractors,
            n_iterations=build.n_iterations,
            initial_accuracy=build.initial_accuracy,
            min_accuracy=build.min_accuracy,
            max_accuracy=build.max_accuracy,
        )
        context.artifacts["kg"] = outcome.graph
        context.artifacts["exchange"] = outcome
        for metric, value in sorted(outcome.stats.items()):
            self.record(metric, value)


# ---------------------------------------------------------------------------
# factory + fixture sources


def partitioned_pipeline(
    sources: Sequence[StructuredSource],
    *,
    name: str = "partitioned_build",
    strategy: Optional[BlockingStrategy] = None,
    match_threshold: float = 0.85,
    backend: str = "columnar",
) -> Tuple[ConstructionPipeline, PipelineContext]:
    """A ready-to-run partition-parallel construction pipeline.

    Returns the pipeline (its default stages are the ``partitions=1``
    build, so ``pipeline.run()`` and ``pipeline.run(partitions=1)`` are
    the same thing) and a fresh context holding the sources artifact.
    Build a new context per run — stages add artifacts as they go.
    """
    build = PartitionedBuild(
        strategy=strategy or BlockingStrategy(),
        match_threshold=match_threshold,
        backend=backend,
    )
    pipeline = ConstructionPipeline(
        name=name, stages=build.stages(1), partition_build=build
    )
    return pipeline, build_context(sources, build)


def build_context(
    sources: Sequence[StructuredSource], build: PartitionedBuild
) -> PipelineContext:
    """A fresh context for one run of a partitioned pipeline."""
    return PipelineContext(artifacts={build.sources_key: list(sources)})


def fixture_sources(
    n_people: int = 120, n_movies: int = 80, seed: int = 11
) -> List[StructuredSource]:
    """The standard partitioned-build fixture: three overlapping sources.

    A Freebase-like and an IMDb-like source (schema + entity
    heterogeneity) plus a noisier wiki-like source (value heterogeneity),
    all derived from one synthetic ground-truth world — enough source
    overlap that linkage, fusion, and the cross-partition exchange all
    have real work to do.
    """
    from repro.datagen.sources import SourceConfig, default_source_pair, derive_source

    world = build_world(
        WorldConfig(n_people=n_people, n_movies=n_movies, n_songs=0, seed=seed)
    )
    freebase_like, imdb_like = default_source_pair(world, seed=seed)
    wiki_like = derive_source(
        world,
        SourceConfig(
            name="wiki",
            entity_classes=("Movie", "Person"),
            coverage_base=0.85,
            coverage_floor=0.4,
            name_variation_rate=0.25,
            value_noise_rate=0.18,
            missing_rate=0.15,
            seed=seed + 7,
        ),
    )
    return [freebase_like, imdb_like, wiki_like]
