"""Pattern and path queries over a :class:`KnowledgeGraph`.

The paper motivates KGs as "suitable to facilitate understanding in search,
question answering, and dialogs, to power recommendation through the graph
structure, and to display ... explanation (in paths in the graph)" (Sec. 1).
This module supplies the query layer those applications sit on: conjunctive
triple-pattern matching with variables, and bounded path search between
entities.  The Sec. 2.4 Path Ranking Algorithm also reuses the path
enumeration implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.graph import KnowledgeGraph
from repro.core.triple import Value

Binding = Dict[str, Value]


def is_variable(term: object) -> bool:
    """Variables are strings starting with ``?`` (e.g. ``"?movie"``)."""
    return isinstance(term, str) and term.startswith("?")


@dataclass(frozen=True)
class TriplePattern:
    """One pattern in a conjunctive query; any term may be a ``?variable``."""

    subject: str
    predicate: str
    object: Value

    def variables(self) -> List[str]:
        """Variables appearing in this pattern."""
        return [term for term in (self.subject, self.predicate, self.object) if is_variable(term)]

    def bind(self, binding: Binding) -> "TriplePattern":
        """Substitute bound variables with their values."""

        def resolve(term):
            if is_variable(term) and term in binding:
                return binding[term]
            return term

        return TriplePattern(resolve(self.subject), resolve(self.predicate), resolve(self.object))


def match_pattern(graph: KnowledgeGraph, pattern: TriplePattern) -> Iterator[Binding]:
    """Yield one binding per graph triple matching the pattern."""
    subject = None if is_variable(pattern.subject) else pattern.subject
    predicate = None if is_variable(pattern.predicate) else pattern.predicate
    obj = None if is_variable(pattern.object) else pattern.object
    for triple in graph.query(subject=subject, predicate=predicate, obj=obj):
        binding: Binding = {}
        if subject is None:
            binding[pattern.subject] = triple.subject
        if predicate is None:
            binding[pattern.predicate] = triple.predicate
        if obj is None:
            binding[pattern.object] = triple.object
        yield binding


def pattern_selectivity(graph: KnowledgeGraph, pattern: TriplePattern) -> int:
    """Estimated matches for one pattern (variables as wildcards).

    Exact for the pattern in isolation — it reads index row sizes via
    :meth:`KnowledgeGraph.pattern_cardinality` without materializing
    triples — and an upper bound once earlier join steps bind variables.
    """
    return graph.pattern_cardinality(
        subject=None if is_variable(pattern.subject) else pattern.subject,
        predicate=None if is_variable(pattern.predicate) else pattern.predicate,
        obj=None if is_variable(pattern.object) else pattern.object,
    )


def conjunctive_query(
    graph: KnowledgeGraph, patterns: Sequence[TriplePattern], reorder: bool = True
) -> List[Binding]:
    """Join a sequence of patterns; returns all consistent variable bindings.

    Patterns are evaluated left-to-right with bindings threaded through.
    By default they are first reordered most-selective-first (smallest
    index-estimated match count leads, ties keeping caller order), so the
    join frontier stays small regardless of how the caller wrote the
    query; ``reorder=False`` restores strict caller ordering.  The
    solution *set* is order-independent either way.
    """
    ordered = list(patterns)
    if reorder and len(ordered) > 1 and hasattr(graph, "pattern_cardinality"):
        ordered.sort(key=lambda pattern: pattern_selectivity(graph, pattern))
    solutions: List[Binding] = [{}]
    for pattern in ordered:
        next_solutions: List[Binding] = []
        for binding in solutions:
            bound = pattern.bind(binding)
            for new_binding in match_pattern(graph, bound):
                merged = dict(binding)
                conflict = False
                for variable, value in new_binding.items():
                    if variable in merged and merged[variable] != value:
                        conflict = True
                        break
                    merged[variable] = value
                if not conflict:
                    next_solutions.append(merged)
        solutions = next_solutions
        if not solutions:
            break
    return solutions


@dataclass
class PathQuery:
    """Bounded-length path search between two entities.

    A path is a sequence of ``(relation, direction, node)`` steps;
    ``direction`` is ``+1`` for an outgoing edge and ``-1`` for incoming.
    """

    graph: KnowledgeGraph
    max_length: int = 3

    def paths(
        self, start: str, goal: str, max_paths: int = 100
    ) -> List[List[Tuple[str, int, str]]]:
        """All simple paths from ``start`` to ``goal`` up to ``max_length``."""
        if not self.graph.has_entity(start) or not self.graph.has_entity(goal):
            return []
        results: List[List[Tuple[str, int, str]]] = []
        # Each frame carries its own visited set (start + path nodes), so
        # it is extended incrementally on push instead of being rebuilt
        # from the path on every pop; neighbor lists are fetched from the
        # graph once per node within one search.
        stack: List[Tuple[str, List[Tuple[str, int, str]], frozenset]] = [
            (start, [], frozenset((start,)))
        ]
        neighbor_cache: Dict[str, List[Tuple[str, str, bool]]] = {}
        while stack and len(results) < max_paths:
            node, path, visited = stack.pop()
            if node == goal and path:
                results.append(path)
                continue
            if len(path) >= self.max_length:
                continue
            neighbors = neighbor_cache.get(node)
            if neighbors is None:
                neighbors = neighbor_cache[node] = self.graph.neighbors(node)
            for relation, neighbor, outgoing in neighbors:
                if neighbor in visited and neighbor != goal:
                    continue
                direction = 1 if outgoing else -1
                stack.append(
                    (
                        neighbor,
                        path + [(relation, direction, neighbor)],
                        visited | {neighbor},
                    )
                )
        return results

    def relation_paths(self, start: str, goal: str, max_paths: int = 100) -> List[Tuple]:
        """Paths reduced to their relation signatures, e.g.
        ``(("acted_in", 1), ("acted_in", -1))`` — the feature space of PRA."""
        signatures = []
        for path in self.paths(start, goal, max_paths=max_paths):
            signatures.append(tuple((relation, direction) for relation, direction, _ in path))
        return signatures

    def reachable(self, start: str, max_hops: int = 2) -> Dict[str, int]:
        """Entities reachable from ``start`` with their hop distance."""
        if not self.graph.has_entity(start):
            return {}
        distances = {start: 0}
        frontier = [start]
        for hop in range(1, max_hops + 1):
            next_frontier = []
            for node in frontier:
                for _relation, neighbor, _outgoing in self.graph.neighbors(node):
                    if neighbor not in distances:
                        distances[neighbor] = hop
                        next_frontier.append(neighbor)
            frontier = next_frontier
        distances.pop(start)
        return distances
